//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the tiny slice of the `rand 0.8` API surface the
//! FedLPS crates actually use: [`StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is SplitMix64-seeded xoshiro256++ — deterministic for a
//! given seed on every platform, which is exactly what the simulator's
//! reproducibility story needs. It is *not* cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core RNG abstraction: a stream of uniformly distributed `u64`s.
pub trait RngCore {
    /// Return the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// The standard generator: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A type that can be sampled uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleUniform` just closely enough for
/// `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty inclusive range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty inclusive range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform draw in `[0, n)` without modulo bias (rejection sampling).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that `Rng::gen_range` accepts, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// A type `Rng::gen` can produce, mirroring the `Standard` distribution.
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the "standard" distribution
    /// (`[0, 1)` for floats, the full range for integers, fair for bools).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Mirror of `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4u64);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
