//! Minimal stand-in for `criterion`, vendored because the build environment
//! has no crates.io access.
//!
//! Implements the benchmark-group API surface this workspace's benches use
//! (`benchmark_group`, `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_function`, `finish`) plus the `criterion_group!`/`criterion_main!`
//! macros. Timing is a plain wall-clock median over the configured samples —
//! no statistics, plots or regression analysis — which is enough for the
//! relative comparisons the ROADMAP cares about.
//!
//! `cargo bench -- --test` (and `cargo test --benches`) runs each benchmark
//! body exactly once, mirroring real criterion's smoke-test mode.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark appends one JSON line `{"group":…,"bench":…,"median_ns":…,
//! "mode":"measure"|"smoke"}` to it — CI uploads that file as a workflow
//! artifact so the perf trajectory is queryable across commits. In smoke
//! mode the recorded time is the single executed iteration's wall clock:
//! noisy, but enough to flag order-of-magnitude regressions.

// The workspace's clippy.toml bans Instant::now (determinism rule D2), but
// measuring wall-clock time is this shim's entire purpose; timings flow to
// the bench report, never into simulation state.
#![allow(clippy::disallowed_methods)]

use std::io::Write;
use std::time::{Duration, Instant};

/// Measurement strategies; only wall-clock time exists in this shim.
pub mod measurement {
    /// Wall-clock time measurement (the criterion default).
    pub struct WallTime;
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: self.test_mode,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    _criterion: std::marker::PhantomData<&'a mut M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            median_ns: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{}/{}: ok (test mode)", self.name, id);
        } else {
            println!(
                "{}/{}: median {}",
                self.name,
                id,
                format_ns(bencher.median_ns)
            );
        }
        append_json_record(&self.name, id, bencher.median_ns, self.test_mode);
        self
    }

    pub fn finish(&mut self) {}
}

/// Runs one benchmark body repeatedly and records the median iteration time.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
    median_ns: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(f());
            self.median_ns = start.elapsed().as_secs_f64() * 1e9;
            return;
        }

        // Warm-up: run until the warm-up budget is spent, measuring a rough
        // per-iteration cost so each sample can batch enough iterations.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let budget = self.measurement_time.as_secs_f64();
        let per_sample = (budget / self.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = per_sample.max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2] * 1e9;
    }
}

/// Opaque value sink, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Appends one benchmark record to the file named by `CRITERION_JSON`, if
/// set. Failures are silently ignored — timings are telemetry, not results.
fn append_json_record(group: &str, id: &str, median_ns: f64, smoke: bool) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let record = format!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"mode\":\"{}\"}}\n",
        group.replace('"', "'"),
        id.replace('"', "'"),
        median_ns,
        if smoke { "smoke" } else { "measure" }
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = file.write_all(record.as_bytes());
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.sample_size(10).warm_up_time(Duration::from_millis(1));
        group.bench_function("body", |b| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }
}
