//! Minimal stand-in for `proptest`, vendored because the build environment
//! has no crates.io access.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, numeric range
//! strategies, `prop::collection::vec`, and the `prop_assert*` macros.
//! Inputs are generated from a deterministic per-case RNG (no shrinking);
//! failures therefore reproduce exactly across runs and machines.

use rand::{RngCore, SeedableRng, StdRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

/// `PROPTEST_CASES` overrides every test's case count (mirrors the real
/// crate's env knob), which lets CI or a bug hunt crank up coverage without
/// touching source.
fn env_cases() -> Option<u32> {
    // Unparseable or zero values are ignored rather than silently running
    // zero cases (which would make every property test vacuously pass).
    std::env::var("PROPTEST_CASES")
        .ok()?
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

/// The RNG handed to strategies: a seeded `StdRng` per test case.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic stream for a given test case index.
    pub fn deterministic(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x5eed_c0de ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::deterministic(__case as u64);
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds, including with `mut` bindings.
        #[test]
        fn ranges_respect_bounds(a in 1usize..6, mut b in 0.5f64..2.0, c in 0u64..=3) {
            b += 0.0;
            prop_assert!((1..6).contains(&a));
            prop_assert!((0.5..2.0).contains(&b));
            prop_assert!(c <= 3);
        }

        /// Vec strategies honour the length range.
        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(-1.0f32..1.0, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            for x in &v {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }
    }

    proptest! {
        /// The default configuration (no `proptest_config` header) also works.
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }
}
