//! Derive macros for the vendored `serde` shim.
//!
//! Implemented with no dependencies (no `syn`/`quote`): the macro walks the
//! `proc_macro::TokenTree` stream of the type definition, extracts the shape
//! (named / tuple / unit struct, or enum with unit / tuple / named variants),
//! and emits the `Serialize` / `Deserialize` impls as source text. Generic
//! types are rejected with a `compile_error!` — nothing in this workspace
//! derives serde on a generic type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, which).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Skip `#[...]` attribute pairs and a leading `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected struct/enum, found {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected type name, found {other:?}"
            ))
        }
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("serde_derive shim does not support generic types".into());
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(tuple_arity(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!(
                "serde_derive shim: unexpected struct body {other:?}"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(variants(g.stream())?)))
            }
            other => Err(format!("serde_derive shim: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde_derive shim: cannot derive for `{other}`")),
    }
}

/// Field names of a named-field body: the ident right before each top-level `:`.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde_derive shim: expected `:`, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple body (top-level comma count, trailing-comma aware).
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut arity = 1;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 && idx + 1 < tokens.len() => arity += 1,
                _ => {}
            }
        }
    }
    arity
}

fn variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let payload = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Payload::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Payload::Named(named_fields(g.stream())?)
            }
            _ => Payload::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        out.push(Variant { name, payload });
    }
    Ok(out)
}

fn render(name: &str, shape: &Shape, which: Which) -> String {
    match which {
        Which::Serialize => render_serialize(name, shape),
        Which::Deserialize => render_deserialize(name, shape),
    }
}

fn str_lit(s: &str) -> String {
    format!("::std::string::String::from({s:?})")
}

fn render_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::to_value(&self.{f}))", str_lit(f)))
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({}),", str_lit(vn))
                        }
                        Payload::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(::std::vec![({}, \
                                 ::serde::Value::Arr(::std::vec![{}]))]),",
                                binds.join(", "),
                                str_lit(vn),
                                items.join(", ")
                            )
                        }
                        Payload::Named(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({}, ::serde::Serialize::to_value({f}))", str_lit(f))
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Obj(::std::vec![({}, \
                                 ::serde::Value::Obj(::std::vec![{}]))]),",
                                fields.join(", "),
                                str_lit(vn),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn render_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__value.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(__value.item({i}usize)?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => {
            format!("{{ let _ = __value; ::std::result::Result::Ok({name}) }}")
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.payload, Payload::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.payload {
                        Payload::Unit => None,
                        Payload::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__payload.item({i}usize)?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn}({})),",
                                inits.join(", ")
                            ))
                        }
                        Payload::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(__payload.field({f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{ {} __other => \
                     ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                     \"unknown variant `{{}}` for {name}\", __other))) }},",
                    unit_arms.join(" ")
                ));
            }
            if !data_arms.is_empty() {
                arms.push(format!(
                    "::serde::Value::Obj(__pairs) if __pairs.len() == 1usize => {{ \
                       let (__key, __payload) = &__pairs[0usize]; \
                       match __key.as_str() {{ {} __other => \
                       ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                       \"unknown variant `{{}}` for {name}\", __other))) }} \
                     }},",
                    data_arms.join(" ")
                ));
            }
            arms.push(format!(
                "__other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unexpected value for {name}: {{:?}}\", __other))),"
            ));
            format!("match __value {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{ \
           fn from_value(__value: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
