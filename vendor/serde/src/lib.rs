//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! tiny serde look-alike: a JSON-ish [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits expressed in terms of it, and derive macros
//! (re-exported from `serde_derive`) for plain structs and enums. The
//! companion `serde_json` shim turns [`Value`] into JSON text and back.
//!
//! The data model intentionally supports exactly what the FedLPS crates
//! derive: non-generic structs (named, tuple and unit) and enums whose
//! variants carry no data, tuple data or named fields.

// The workspace's clippy.toml bans HashMap (determinism rule D1), but this
// shim mirrors the real serde's public API surface, which includes the
// HashMap impls; callers in the deterministic crates still cannot *use*
// HashMap without tripping the lint themselves.
#![allow(clippy::disallowed_types)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A number: integers keep full 64-bit precision instead of going through
/// `f64`, so `u64` seeds round-trip exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    U(u64),
    I(i64),
    F(f64),
}

impl Num {
    pub fn as_f64(self) -> f64 {
        match self {
            Num::U(v) => v as f64,
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Num::U(v) => Some(v),
            Num::I(v) if v >= 0 => Some(v as u64),
            Num::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Num::I(v) => Some(v),
            Num::U(v) if v <= i64::MAX as u64 => Some(v as i64),
            Num::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }
}

/// The self-describing data model every `Serialize` impl targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(Num),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl Value {
    /// Look up a field of an object value; used by derived `Deserialize`.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Look up a positional element of an array value; used by derived
    /// `Deserialize` for tuple structs and tuple enum variants.
    pub fn item(&self, index: usize) -> Result<&Value, Error> {
        match self {
            Value::Arr(items) => items
                .get(index)
                .ok_or_else(|| Error::msg(format!("missing array element {index}"))),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model. The
/// lifetime parameter exists only for signature compatibility with real
/// serde (`Deserialize<'de>`); this shim always copies out of the `Value`.
pub trait Deserialize<'de>: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::U(*self as u64)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => n
                        .as_u64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::I(*self as i64)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => n
                        .as_i64()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| Error::msg(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Num::F(*self as f64)) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), other))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(value.item($idx)?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_through_value() {
        assert_eq!(
            u64::from_value(&18_446_744_073_709_551_615u64.to_value()).unwrap(),
            u64::MAX
        );
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::Num(Num::U(3)));
    }
}
