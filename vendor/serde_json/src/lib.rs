//! Minimal stand-in for `serde_json`, targeting the vendored `serde` shim.
//!
//! Provides exactly what the workspace uses: [`to_string`] and [`from_str`].
//! Floats are written with Rust's shortest-round-trip formatting, so every
//! finite `f64` survives `to_string` → `from_str` bit-exactly.

use serde::{Deserialize, Error, Num, Serialize, Value};

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Num::U(v)) => out.push_str(&v.to_string()),
        Value::Num(Num::I(v)) => out.push_str(&v.to_string()),
        Value::Num(Num::F(v)) => {
            if v.is_finite() {
                // `{}` is shortest-round-trip for floats; force a `.0` so the
                // parser can tell floats from integers.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| Error::msg("bad codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected number at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    // Preserve i64 range; fall through to f64 for huge magnitudes.
                    if v <= i64::MAX as u64 + 1 {
                        return Ok(Value::Num(Num::I((v as i128).wrapping_neg() as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Num(Num::U(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Num(Num::F(v)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let s = to_string(&1.25f64).unwrap();
        assert_eq!(s, "1.25");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.25);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, std::f64::consts::PI, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let json = to_string(&String::from(s)).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
