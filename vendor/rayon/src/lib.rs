//! Minimal stand-in for `rayon`, vendored because the build environment has
//! no crates.io access.
//!
//! Implements the one shape the workspace uses — `collection.into_par_iter()
//! .map(f).collect()` — with genuine data parallelism: the input is chunked
//! across `std::thread::available_parallelism()` scoped threads and results
//! are reassembled in order, so the output is identical to the sequential
//! equivalent. [`ThreadPoolBuilder`] mirrors real rayon's API for bounding
//! the worker count: `collect` calls issued inside `pool.install(..)` use the
//! pool's thread budget instead of the machine default.

use std::cell::Cell;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

std::thread_local! {
    /// Thread budget installed by the innermost enclosing `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Builder for a bounded worker pool, mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-sized) thread budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means "use every core",
    /// matching real rayon's convention.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. The shim spawns scoped threads per `collect` rather
    /// than keeping workers alive, so building can never fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type kept for API parity with real rayon; the shim never produces it.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rayon shim thread pools cannot fail to build")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A bounded worker pool: parallel `collect`s executed inside
/// [`ThreadPool::install`] are chunked over at most `num_threads` threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread budget (0 = machine default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }

    /// Runs `op` with this pool's thread budget installed: any parallel
    /// iterator collected inside uses at most `num_threads` workers. Nested
    /// installs restore the previous budget on exit (panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let previous = INSTALLED_THREADS.with(|t| t.replace(Some(self.current_num_threads())));
        let _restore = Restore(previous);
        op()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn effective_threads() -> usize {
    INSTALLED_THREADS
        .with(|t| t.get())
        .unwrap_or_else(default_threads)
        .max(1)
}

/// Conversion into a (shim) parallel iterator. Blanket-implemented for every
/// ordinary `IntoIterator`, mirroring how rayon covers ranges and `Vec`s.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialised parallel iterator: the items, waiting for a `map`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParIter<T> {
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of `ParIter::map`: executes on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let threads = effective_threads();
        let n = self.items.len();
        if threads <= 1 || n <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }

        let chunk_len = n.div_ceil(threads.min(n));
        let mut items = self.items;
        let mut chunks: Vec<Vec<T>> = Vec::new();
        while !items.is_empty() {
            let rest = items.split_off(items.len().saturating_sub(chunk_len));
            chunks.push(rest);
        }
        chunks.reverse();

        let f = &self.f;
        let results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<usize> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn works_on_vecs_and_tiny_inputs() {
        let out: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x).collect();
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn installed_pool_bounds_threads_and_preserves_order() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let out: Vec<usize> =
            pool.install(|| (0..100usize).into_par_iter().map(|x| x + 1).collect());
        let expected: Vec<usize> = (1..=100).collect();
        assert_eq!(out, expected);
        // The budget is restored after install returns.
        assert_eq!(crate::effective_threads(), crate::default_threads());
    }

    #[test]
    fn nested_installs_restore_outer_budget() {
        let outer = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let inner = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(crate::effective_threads(), 3);
            inner.install(|| assert_eq!(crate::effective_threads(), 1));
            assert_eq!(crate::effective_threads(), 3);
        });
    }

    #[test]
    fn zero_threads_means_machine_default() {
        let pool = crate::ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), crate::default_threads());
    }
}
