//! Minimal stand-in for `rayon`, vendored because the build environment has
//! no crates.io access.
//!
//! Implements the one shape the workspace uses — `collection.into_par_iter()
//! .map(f).collect()` — with genuine data parallelism: the input is chunked
//! across `std::thread::available_parallelism()` scoped threads and results
//! are reassembled in order, so the output is identical to the sequential
//! equivalent.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter};
}

/// Conversion into a (shim) parallel iterator. Blanket-implemented for every
/// ordinary `IntoIterator`, mirroring how rayon covers ranges and `Vec`s.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    fn into_par_iter(self) -> ParIter<C::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A materialised parallel iterator: the items, waiting for a `map`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParIter<T> {
    pub fn map<R, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of `ParIter::map`: executes on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let n = self.items.len();
        if threads <= 1 || n <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }

        let chunk_len = n.div_ceil(threads.min(n));
        let mut items = self.items;
        let mut chunks: Vec<Vec<T>> = Vec::new();
        while !items.is_empty() {
            let rest = items.split_off(items.len().saturating_sub(chunk_len));
            chunks.push(rest);
        }
        chunks.reverse();

        let f = &self.f;
        let results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<usize> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn works_on_vecs_and_tiny_inputs() {
        let out: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
        let empty: Vec<i32> = Vec::<i32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].into_par_iter().map(|x| x).collect();
        assert_eq!(one, vec![7]);
    }
}
