//! Smoke test mirroring `examples/straggler_rounds.rs` at reduced scale, so
//! the example's code path (three round modes over the same fleet →
//! time-to-accuracy comparison) is exercised by `cargo test` and cannot
//! silently rot.

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(mode: RoundMode) -> RunResult {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(6);
    let fl_config = FlConfig {
        rounds: 4,
        clients_per_round: 3,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_round_mode(mode);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

#[test]
fn straggler_rounds_code_path_runs_end_to_end() {
    let sync = run_once(RoundMode::Synchronous);
    let worst_round = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
    let deadline = run_once(RoundMode::deadline(worst_round * 0.5, 3));
    let async_run = run_once(RoundMode::asynchronous(4, 0.6));

    // Every mode runs the full horizon and reports sane headline metrics —
    // the fields the example prints.
    for (name, result) in [
        ("sync", &sync),
        ("deadline", &deadline),
        ("async", &async_run),
    ] {
        assert_eq!(result.rounds.len(), 4, "{name}");
        assert_eq!(result.algorithm, "FedLPS", "{name}");
        assert!((0.0..=1.0).contains(&result.final_accuracy), "{name}");
        assert!(result.total_time > 0.0, "{name}");
        assert!(result.total_flops > 0.0, "{name}");
        assert!(
            result.rounds.last().unwrap().mean_accuracy.is_some(),
            "{name}"
        );
    }

    // The example's headline: straggler tolerance compresses virtual time.
    assert!(sync.total_straggler_drops() == 0);
    assert!(deadline.total_time < sync.total_time);
    assert!(async_run.total_time < sync.total_time);
    // The half-worst-round budget must actually cut someone on a High fleet.
    assert!(deadline.total_straggler_drops() > 0);
    // Async absorbed updates carry staleness accounting.
    assert!(async_run.staleness_histogram().iter().sum::<u64>() > 0);

    // The table's time-to-accuracy column: a target below every mode's best
    // accuracy is reached by all three.
    let target = 0.95
        * sync
            .best_accuracy
            .min(deadline.best_accuracy)
            .min(async_run.best_accuracy);
    for result in [&sync, &deadline, &async_run] {
        assert!(result.time_to_accuracy(target).is_some());
    }
}
