//! Smoke test mirroring `examples/hierarchical_fleet.rs` at reduced scale,
//! so the example's code path (flat vs patient vs strict two-tier topology
//! over the same fleet) is exercised by `cargo test` and cannot silently rot.

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(topology: Topology) -> RunResult {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(8);
    let fl_config = FlConfig {
        rounds: 4,
        clients_per_round: 6,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_topology(topology);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

#[test]
fn hierarchical_fleet_code_path_runs_end_to_end() {
    let flat = run_once(Topology::Flat);
    let worst_round = flat.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
    let tiered = run_once(Topology::two_tier().with_zones(2).with_zone_uplink(4.0));
    let strict = run_once(
        Topology::two_tier()
            .with_zones(2)
            .with_zone_uplink(4.0)
            .with_zone_deadline(worst_round * 0.6),
    );

    for (name, result) in [("flat", &flat), ("two-tier", &tiered), ("strict", &strict)] {
        assert_eq!(result.rounds.len(), 4, "{name}");
        assert_eq!(result.algorithm, "FedLPS", "{name}");
        assert!((0.0..=1.0).contains(&result.final_accuracy), "{name}");
        assert!(result.total_time > 0.0, "{name}");
    }

    // The example's first headline: the patient zone tier changes the bytes'
    // journey, never the math.
    assert_eq!(flat.final_accuracy, tiered.final_accuracy);
    assert_eq!(flat.total_zone_upload_bytes(), 0.0);
    assert!(tiered.total_zone_upload_bytes() > 0.0);
    assert_eq!(tiered.total_zone_straggler_drops(), 0);
    assert!(tiered.total_time >= flat.total_time);

    // The second headline: zone pre-merging caps the server ingress at
    // zones × dense-model per round, however many clients upload. (The
    // *saving* over client traffic needs example-scale cohorts; at this
    // reduced scale only the cap is guaranteed.)
    let dense_model_bytes = 4.0
        * FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(8),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        )
        .arch
        .param_count() as f64;
    for r in &tiered.rounds {
        assert!(r.zone_upload_bytes <= 2.0 * dense_model_bytes + 1e-9);
        assert!(r.zone_upload_bytes > 0.0);
    }

    // The third headline: a sub-worst-round zone deadline on a High fleet
    // must actually cut someone, at the zone, and save virtual time.
    assert!(strict.total_zone_straggler_drops() > 0);
    assert!(strict.total_time < tiered.total_time);
    // Zone drops are zone accounting, not server-deadline accounting.
    assert_eq!(strict.total_straggler_drops(), 0);
}
