//! The topology subsystem's determinism contract, at integration scale:
//!
//! * two-tier traces are **parallelism-invariant** in every round mode (the
//!   topology overlays timing/traffic/drops on the same absorbed arithmetic,
//!   so the shard count must not leak into a single byte);
//! * without a zone deadline, the two-tier synchronous run carries exactly
//!   the flat run's *learning* trace — the zone tier only re-times the
//!   uploads and adds the combined zone → server forwards.

use fedlps::prelude::*;

fn env(round_mode: RoundMode, parallelism: usize, topology: Topology) -> FlEnv {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike);
    let fl_config = FlConfig::tiny()
        .with_round_mode(round_mode)
        .with_parallelism(parallelism)
        .with_topology(topology);
    FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config)
}

fn run(round_mode: RoundMode, parallelism: usize, topology: Topology) -> RunResult {
    let sim = Simulator::new(env(round_mode, parallelism, topology));
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    sim.run(&mut fedlps)
}

#[test]
fn two_tier_traces_are_parallelism_invariant_in_every_round_mode() {
    let topology = Topology::two_tier().with_zone_deadline(0.002);
    for (name, mode) in [
        ("sync", RoundMode::Synchronous),
        ("deadline", RoundMode::deadline(0.004, 2)),
        ("async", RoundMode::asynchronous(4, 0.6)),
    ] {
        // Async ignores zone deadlines (no round-relative timeline), so the
        // same topology value exercises both semantics.
        let serial = run(mode, 1, topology);
        let sharded = run(mode, 4, topology);
        let a = serde_json::to_string(&serial).unwrap();
        let b = serde_json::to_string(&sharded).unwrap();
        assert_eq!(a, b, "{name}: two-tier trace depends on parallelism");
    }
}

#[test]
fn two_tier_without_zone_deadline_keeps_the_flat_learning_trace_in_sync() {
    let flat = run(RoundMode::Synchronous, 1, Topology::Flat);
    let tiered = run(RoundMode::Synchronous, 1, Topology::two_tier());

    // The learning trajectory is untouched: same absorbed arithmetic.
    assert_eq!(flat.final_accuracy, tiered.final_accuracy);
    for (f, t) in flat.rounds.iter().zip(tiered.rounds.iter()) {
        assert_eq!(f.mean_accuracy, t.mean_accuracy);
        assert_eq!(f.train_loss.to_bits(), t.train_loss.to_bits());
        assert_eq!(f.round_flops.to_bits(), t.round_flops.to_bits());
        assert_eq!(
            f.round_upload_bytes.to_bits(),
            t.round_upload_bytes.to_bits()
        );
        assert_eq!(f.straggler_drops, t.straggler_drops);
    }

    // What changes is the physical journey: every round pays the combined
    // zone → server forwards, so the zone tier carries traffic and the
    // simulated clock runs at least as long.
    assert_eq!(flat.total_zone_upload_bytes(), 0.0);
    assert!(tiered.total_zone_upload_bytes() > 0.0);
    assert_eq!(
        tiered.total_zone_straggler_drops(),
        0,
        "no zone deadline set"
    );
    assert!(tiered.total_time >= flat.total_time);
    assert!(tiered
        .rounds
        .iter()
        .all(|r| r.zone_upload_bytes > 0.0 && r.zone_straggler_drops == 0));
}

#[test]
fn async_two_tier_forwards_every_landed_upload_individually() {
    let result = run(RoundMode::asynchronous(4, 0.6), 1, Topology::two_tier());
    // Store-and-forward: the zone tier re-carries exactly the bytes that
    // landed at the server (no barrier to pre-merge behind).
    for r in &result.rounds {
        assert_eq!(
            r.zone_upload_bytes.to_bits(),
            r.round_upload_bytes.to_bits()
        );
        assert_eq!(r.zone_straggler_drops, 0, "async has no zone deadlines");
    }
    assert!(result.total_zone_upload_bytes() > 0.0);
}
