//! Cross-crate integration tests: full federations driven end-to-end through
//! the facade crate, checking the qualitative claims the paper's evaluation
//! rests on.

use fedlps::baselines::registry::{baseline_by_name, baseline_names};
use fedlps::core::{FedLps, FedLpsConfig};
use fedlps::prelude::*;

fn tiny_env(kind: DatasetKind, level: HeterogeneityLevel, rounds: usize) -> FlEnv {
    let scenario = ScenarioConfig::tiny(kind);
    let config = FlConfig {
        rounds,
        clients_per_round: 3,
        local_iterations: 3,
        batch_size: 10,
        eval_every: 2,
        ..FlConfig::default()
    };
    FlEnv::from_scenario(&scenario, level, config)
}

#[test]
fn fedlps_trains_on_every_dataset_scenario() {
    for kind in DatasetKind::all() {
        let env = tiny_env(kind, HeterogeneityLevel::High, 4);
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let result = sim.run(&mut algo);
        assert_eq!(result.rounds.len(), 4, "{}", kind.name());
        assert!(result.final_accuracy.is_finite());
        assert!(result.total_flops > 0.0);
    }
}

#[test]
fn fedlps_beats_fedavg_under_pathological_noniid() {
    // cifar10-like is the scenario whose label skew hurts a shared global
    // model the most; the accuracy gap is decisive there even at tiny scale.
    let env = tiny_env(DatasetKind::Cifar10Like, HeterogeneityLevel::High, 10);
    let sim = Simulator::new(env);
    let mut fedlps = FedLps::for_env(sim.env());
    let fedlps_result = sim.run(&mut fedlps);

    let env2 = tiny_env(DatasetKind::Cifar10Like, HeterogeneityLevel::High, 10);
    let sim2 = Simulator::new(env2);
    let mut fedavg = baseline_by_name("FedAvg").unwrap();
    let fedavg_result = sim2.run(&mut *fedavg);

    assert!(
        fedlps_result.final_accuracy > fedavg_result.final_accuracy,
        "FedLPS {} should beat FedAvg {} on pathological non-IID data",
        fedlps_result.final_accuracy,
        fedavg_result.final_accuracy
    );
    assert!(
        fedlps_result.total_flops < fedavg_result.total_flops,
        "sparse training must cost fewer FLOPs than dense training"
    );
}

#[test]
fn every_registered_baseline_completes_a_federation() {
    for name in baseline_names() {
        let env = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::High, 3);
        let sim = Simulator::new(env);
        let mut algo = baseline_by_name(name).unwrap();
        let result = sim.run(&mut *algo);
        assert_eq!(result.rounds.len(), 3, "{name}");
        assert!(
            result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0,
            "{name}"
        );
        assert!(result.total_time > 0.0, "{name}");
    }
}

#[test]
fn sparse_ratios_never_exceed_client_capability() {
    let env = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::High, 6);
    let caps = env.capabilities();
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    let _ = sim.run(&mut algo);
    for (k, ratio) in algo.proposed_ratios().iter().enumerate() {
        assert!(
            *ratio <= caps[k] + 1e-9,
            "client {k}: ratio {ratio} > capability {}",
            caps[k]
        );
    }
}

#[test]
fn run_results_serialize_and_round_trip() {
    let env = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::Low, 3);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    let result = sim.run(&mut algo);
    let json = serde_json::to_string(&result).expect("serialize");
    let back: RunResult = serde_json::from_str(&json).expect("deserialize");
    // serde_json's default float parsing may be off by one ULP, so compare
    // structurally with a tolerance instead of bit-for-bit.
    assert_eq!(back.algorithm, result.algorithm);
    assert_eq!(back.dataset, result.dataset);
    assert_eq!(back.rounds.len(), result.rounds.len());
    assert!((back.final_accuracy - result.final_accuracy).abs() < 1e-9);
    assert!((back.total_flops - result.total_flops).abs() < 1.0);
    for (a, b) in back.rounds.iter().zip(result.rounds.iter()) {
        assert_eq!(a.round, b.round);
        assert!((a.cumulative_time - b.cumulative_time).abs() < 1e-9);
        assert_eq!(a.mean_accuracy.is_some(), b.mean_accuracy.is_some());
    }
}

#[test]
fn ablation_variants_run_and_differ_in_cost_profile() {
    // FLST at a small fixed ratio must spend fewer FLOPs than the RCR rule on
    // a strong fleet (where RCR trains near-dense submodels).
    let env = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::Low, 6);
    let sim = Simulator::new(env);
    let mut flst = FedLps::new(FedLpsConfig::flst(0.25));
    let flst_result = sim.run(&mut flst);

    let env2 = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::Low, 6);
    let sim2 = Simulator::new(env2);
    let mut rcr = FedLps::new(FedLpsConfig::rcr());
    let rcr_result = sim2.run(&mut rcr);

    assert!(flst_result.total_flops < rcr_result.total_flops);
}

#[test]
fn higher_heterogeneity_slows_dense_fl_more_than_fedlps() {
    let run_time = |name: &str, level: HeterogeneityLevel| -> f64 {
        let env = tiny_env(DatasetKind::MnistLike, level, 5);
        let sim = Simulator::new(env);
        if name == "FedLPS" {
            let mut algo = FedLps::for_env(sim.env());
            sim.run(&mut algo).total_time
        } else {
            let mut algo = baseline_by_name(name).unwrap();
            sim.run(&mut *algo).total_time
        }
    };
    let fedavg_growth = run_time("FedAvg", HeterogeneityLevel::High)
        / run_time("FedAvg", HeterogeneityLevel::Low).max(1e-9);
    let fedlps_growth = run_time("FedLPS", HeterogeneityLevel::High)
        / run_time("FedLPS", HeterogeneityLevel::Low).max(1e-9);
    assert!(
        fedlps_growth < fedavg_growth,
        "FedLPS time growth {fedlps_growth:.2}x should be smaller than FedAvg's {fedavg_growth:.2}x"
    );
}

#[test]
fn personalized_models_specialise_to_their_clients() {
    // A personalized FedLPS model evaluated on its own client's test data
    // should on average beat the same model evaluated on another client's data
    // (since the data distributions differ pathologically).
    let env = tiny_env(DatasetKind::MnistLike, HeterogeneityLevel::Low, 10);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    let _ = sim.run(&mut algo);
    let env = sim.env();
    let mut own = Vec::new();
    let mut other = Vec::new();
    for k in 0..env.num_clients() {
        if let Some(personal) = &algo.client_state(k).personal_model {
            own.push(env.arch.evaluate(personal, env.test_data(k)).accuracy);
            let next = (k + 1) % env.num_clients();
            other.push(env.arch.evaluate(personal, env.test_data(next)).accuracy);
        }
    }
    assert!(!own.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&own) > mean(&other),
        "own-client accuracy {:.3} should exceed cross-client accuracy {:.3}",
        mean(&own),
        mean(&other)
    );
}
