//! Smoke test mirroring `examples/diurnal_fleet.rs` at reduced scale, so the
//! example's code path (i.i.d. vs diurnal availability, transient upload
//! faults, quorum-based early closes) is exercised by `cargo test` and
//! cannot silently rot.

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(availability: AvailabilityModel, quorum: f64) -> RunResult {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(6);
    let fl_config = FlConfig {
        rounds: 4,
        clients_per_round: 3,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_availability(availability)
    .with_quorum(quorum)
    .with_faults(FaultConfig {
        upload_failure_prob: 0.3,
        max_retries: 2,
        ..FaultConfig::default()
    });
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

#[test]
fn diurnal_fleet_code_path_runs_end_to_end() {
    // Probe the always-on run to size a wave that the fleet must hit.
    let iid = run_once(AvailabilityModel::Iid, 1.0);
    let diurnal = AvailabilityModel::Diurnal {
        period: iid.total_time / 3.0,
        phase_spread: 1.0,
        night_offline: 0.5,
    };
    let wavy = run_once(diurnal, 1.0);
    let quorum = run_once(diurnal, 0.5);

    // Every run covers the full horizon with sane headline metrics.
    for (name, result) in [("iid", &iid), ("diurnal", &wavy), ("quorum", &quorum)] {
        assert_eq!(result.rounds.len(), 4, "{name}");
        assert_eq!(result.algorithm, "FedLPS", "{name}");
        assert!((0.0..=1.0).contains(&result.final_accuracy), "{name}");
        assert!(result.total_time > 0.0, "{name}");
    }

    // The example's headline effects, at miniature scale:
    // i.i.d. availability never waits; a half-night wave must catch someone.
    assert_eq!(iid.total_unavailable_dispatches(), 0);
    assert!(wavy.total_unavailable_dispatches() > 0);
    assert!(wavy.total_unavailable_wait_seconds() > 0.0);
    assert!(wavy.total_time > iid.total_time);

    // The quorum closes synchronous rounds early instead of waiting the
    // night out, dropping the tail of each cohort.
    assert!(quorum.total_quorum_closes() > 0);
    assert!(quorum.total_time < wavy.total_time);
    assert!(quorum.total_straggler_drops() > 0);

    // p=0.3 transient faults over the run must retry at least once, and the
    // drop histogram's causes add up to the totals the metrics report.
    assert!(iid.total_retry_attempts() > 0);
    let causes = iid.drop_causes();
    let histogram_total: u64 = causes.iter().map(|(_, n)| n).sum();
    assert_eq!(
        histogram_total,
        iid.total_straggler_drops()
            + iid.total_zone_straggler_drops()
            + iid.total_stale_discards()
            + iid.total_upload_failure_drops()
    );

    // Determinism across parallelism holds on the faulted paths too (the
    // full matrix lives in proptest_modes.rs and CI's availability gate).
    assert_eq!(run_once(diurnal, 0.5), quorum);
}
