//! Smoke test mirroring `examples/utility_selection.rs` at reduced scale, so
//! the example's code path (three selection policies over the same
//! heterogeneous fleet → per-tier participation shares) is exercised by
//! `cargo test` and cannot silently rot.

use fedlps::core::FedLps;
use fedlps::device::CapabilityTier;
use fedlps::prelude::*;

fn run_once(selection: SelectionKind) -> (RunResult, Vec<f64>) {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(10);
    let fl_config = FlConfig {
        rounds: 5,
        clients_per_round: 3,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_selection(selection);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let capabilities = env.capabilities();
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    (sim.run(&mut algo), capabilities)
}

#[test]
fn selection_policies_run_end_to_end_and_report_participation() {
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let (result, capabilities) = run_once(kind);
        assert_eq!(result.rounds.len(), 5, "{}", kind.name());
        assert!(
            (0.0..=1.0).contains(&result.final_accuracy),
            "{}",
            kind.name()
        );

        // The participation census covers the fleet and adds up to the
        // dispatch count (synchronous rounds dispatch exactly the cohort).
        assert_eq!(result.client_participations.len(), capabilities.len());
        let dispatches: u64 = result.client_participations.iter().sum();
        assert_eq!(dispatches, 5 * 3, "{}", kind.name());
        let shares = result.participation_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Selection-layer observability reaches the per-round metrics.
        assert!(
            result.total_first_time_participants() > 0,
            "{}: somebody participated for the first time",
            kind.name()
        );
        assert!(
            result
                .rounds
                .iter()
                .skip(1)
                .any(|r| r.mean_selection_utility > 0.0),
            "{}: utilities become observable after the first absorbed round",
            kind.name()
        );
    }
}

#[test]
fn utility_selection_shifts_share_toward_fast_tiers() {
    let fast_share = |result: &RunResult, capabilities: &[f64]| {
        result
            .participation_shares()
            .iter()
            .zip(capabilities)
            .filter(|(_, &z)| {
                matches!(
                    CapabilityTier::from_fraction(z),
                    CapabilityTier::Full | CapabilityTier::Half
                )
            })
            .map(|(s, _)| s)
            .sum::<f64>()
    };
    let (uniform, caps_u) = run_once(SelectionKind::Uniform);
    let (utility, caps_t) = run_once(SelectionKind::utility());
    assert!(
        fast_share(&utility, &caps_t) > fast_share(&uniform, &caps_u),
        "the Eq. 14 speed term must shift participation toward fast tiers \
         ({:.3} vs {:.3})",
        fast_share(&utility, &caps_t),
        fast_share(&uniform, &caps_u)
    );
}

#[test]
fn policies_are_deterministic_and_parallelism_independent() {
    for kind in [SelectionKind::utility(), SelectionKind::power_of_choice()] {
        let run = |parallelism: usize| {
            let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(8);
            let config = FlConfig::tiny()
                .with_selection(kind)
                .with_parallelism(parallelism);
            let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, config);
            let sim = Simulator::new(env);
            let mut algo = FedLps::for_env(sim.env());
            sim.run(&mut algo)
        };
        assert_eq!(run(1), run(1), "{}: same seed, same trace", kind.name());
        assert_eq!(
            run(1),
            run(4),
            "{}: bit-identical at parallelism 1 vs 4",
            kind.name()
        );
    }
}
