//! Pre-refactor golden traces for the quickstart configuration at 64 clients.
//!
//! The lazy-fleet refactor (ISSUE 7) promises that small-population runs are
//! bit-identical to the historical dense representation, and the topology
//! subsystem (ISSUE 8) promises that `Topology::Flat` — spelled explicitly
//! below — reproduces the same traces byte for byte. These tests pin both
//! promises: the metrics JSON of a quickstart-shaped run at 64 clients, in
//! each of the three round modes, must stay byte-equal to the goldens
//! captured before either change landed (`tests/goldens/quickstart64_*.json`).
//!
//! To regenerate after an *intentional* trace change (which must be called out
//! in the PR description), run:
//!
//! ```text
//! FEDLPS_UPDATE_GOLDENS=1 cargo test --test quickstart_goldens
//! ```

use fedlps::prelude::*;

/// The quickstart example's configuration, scaled to 64 clients.
fn quickstart64_env(round_mode: RoundMode) -> FlEnv {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(64);
    let fl_config = FlConfig {
        rounds: 20,
        clients_per_round: 5,
        local_iterations: 5,
        batch_size: 20,
        eval_every: 2,
        round_mode,
        // Explicit, not defaulted: these goldens are the byte-identity proof
        // for the flat topology.
        topology: Topology::Flat,
        ..FlConfig::default()
    };
    FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config)
}

fn check_golden(name: &str, round_mode: RoundMode) {
    let sim = Simulator::new(quickstart64_env(round_mode));
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);
    let json = serde_json::to_string(&result).expect("RunResult serializes");

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"));
    if std::env::var("FEDLPS_UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().expect("goldens dir")).expect("mkdir goldens");
        std::fs::write(&path, &json).expect("golden is writable");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        json, golden,
        "metrics JSON for {name} diverged from the pre-refactor golden; if the \
         trace change is intentional, regenerate with FEDLPS_UPDATE_GOLDENS=1"
    );
}

#[test]
fn quickstart64_sync_matches_pre_refactor_golden() {
    check_golden("quickstart64_sync", RoundMode::Synchronous);
}

#[test]
fn quickstart64_deadline_matches_pre_refactor_golden() {
    check_golden("quickstart64_deadline", RoundMode::deadline(0.004, 2));
}

#[test]
fn quickstart64_async_matches_pre_refactor_golden() {
    check_golden("quickstart64_async", RoundMode::asynchronous(4, 0.6));
}
