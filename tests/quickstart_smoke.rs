//! Smoke test mirroring `examples/quickstart.rs` at reduced scale, so the
//! example's code path (scenario → env → simulator → FedLPS → metrics →
//! P-UCBV ratio report) is exercised by `cargo test` and cannot silently rot.

use fedlps::prelude::*;

#[test]
fn quickstart_code_path_runs_end_to_end() {
    // Tiny version of the quickstart federation: fewer clients, 2 rounds.
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike).with_clients(4);
    let fl_config = FlConfig {
        rounds: 2,
        clients_per_round: 2,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 1,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    assert_eq!(env.num_clients(), 4);
    assert!(env.arch.param_count() > 0);
    assert!(!env.arch.name().is_empty());

    let sim = Simulator::new(env);
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);

    // The quickstart prints these fields; assert they are all populated and
    // within their domains.
    assert_eq!(result.algorithm, "FedLPS");
    assert!(!result.dataset.is_empty());
    assert!((0.0..=1.0).contains(&result.final_accuracy));
    assert!((0.0..=1.0).contains(&result.best_accuracy));
    assert!(result.best_accuracy >= result.final_accuracy * 0.999);
    assert!(result.total_flops > 0.0);
    assert!(result.total_time > 0.0);
    assert!(result.mean_sparse_ratio() > 0.0 && result.mean_sparse_ratio() <= 1.0);

    // P-UCBV proposes one feasible ratio per client, as the example reports.
    let ratios = fedlps.proposed_ratios();
    assert_eq!(ratios.len(), sim.env().num_clients());
    assert_eq!(sim.env().capabilities().len(), ratios.len());
    for &r in &ratios {
        assert!((0.0..=1.0).contains(&r), "infeasible proposed ratio {r}");
    }
}
