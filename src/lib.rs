//! # fedlps — facade crate
//!
//! This crate re-exports every sub-crate of the FedLPS reproduction so that
//! downstream users (and this repository's examples and integration tests)
//! can depend on a single package:
//!
//! ```
//! use fedlps::prelude::*;
//! ```
//!
//! The workspace reproduces *"Learnable Sparse Customization in Heterogeneous
//! Edge Computing"* (FedLPS, ICDE 2025): a personalized-federated-learning
//! framework that learns per-client structured sparse patterns through a
//! trainable importance indicator and chooses per-client sparse ratios online
//! with the P-UCBV multi-armed bandit.
//!
//! See the individual crates for details:
//!
//! * [`tensor`] — dense math, RNG, statistics.
//! * [`nn`] — from-scratch MLP / CNN / LSTM models with unit-level
//!   structured masking and analytic FLOP counting.
//! * [`data`] — synthetic federated datasets and non-IID
//!   partitioners.
//! * [`sparse`] — masks and sparse-pattern strategies.
//! * [`device`] — system-heterogeneity and cost model, including the lazy
//!   population-scale [`DeviceFleet`](fedlps_device::DeviceFleet).
//! * [`bandit`] — P-UCBV and baseline ratio policies.
//! * [`runtime`] — the event-driven federation runtime:
//!   virtual clock, deterministic scheduling, round modes.
//! * [`faults`] — the fault-injection subsystem: correlated availability
//!   models (diurnal waves, zone-correlated bursts) and seeded transient
//!   upload faults with retry/backoff.
//! * [`select`] — pluggable client-selection policies
//!   (uniform / Oort-style utility / power-of-choice) and participation
//!   statistics.
//! * [`topo`] — aggregation topologies: the deterministic merge tree and
//!   the flat / two-tier (zone-aggregator) upload paths.
//! * [`sim`] — the federation simulator and metrics.
//! * [`core`] — the FedLPS algorithm itself.
//! * [`baselines`] — the 19 comparison FL frameworks.

pub use fedlps_bandit as bandit;
pub use fedlps_baselines as baselines;
pub use fedlps_core as core;
pub use fedlps_data as data;
pub use fedlps_device as device;
pub use fedlps_faults as faults;
pub use fedlps_nn as nn;
pub use fedlps_runtime as runtime;
pub use fedlps_select as select;
pub use fedlps_sim as sim;
pub use fedlps_sparse as sparse;
pub use fedlps_tensor as tensor;
pub use fedlps_topo as topo;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use fedlps_bandit::{pucbv::PUcbv, ratio_policy::RatioPolicy};
    pub use fedlps_baselines::registry::{baseline_by_name, baseline_names};
    pub use fedlps_core::{config::FedLpsConfig, FedLps};
    pub use fedlps_data::{
        dataset::{Dataset, FederatedDataset},
        scenario::{DatasetKind, ScenarioConfig},
    };
    pub use fedlps_device::{
        cost::CostModel,
        fleet::{DeviceFleet, HeterogeneityLevel},
    };
    pub use fedlps_faults::{AvailabilityModel, FaultConfig};
    pub use fedlps_nn::model::{ModelArch, ModelKind};
    pub use fedlps_select::{SelectionKind, SelectionPolicy, SelectionTracker};
    pub use fedlps_sim::{
        algorithm::FlAlgorithm,
        backend::{BackendKind, ExecutionBackend},
        config::{FlConfig, RoundMode},
        env::FlEnv,
        metrics::RunResult,
        runner::Simulator,
    };
    pub use fedlps_sparse::{mask::UnitMask, pattern::PatternStrategy};
    pub use fedlps_topo::Topology;
}
