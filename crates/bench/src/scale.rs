//! Experiment scales: how much compute each harness binary spends.

use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_sim::config::FlConfig;

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few rounds on a small federation — seconds per method, used by the
    /// Criterion benches and for smoke-testing the harness.
    Quick,
    /// The default for regenerating the qualitative results in
    /// `EXPERIMENTS.md` — tens of seconds per method.
    Small,
    /// The closest configuration to the paper's (still CPU-friendly).
    Full,
}

impl Scale {
    /// Parses a scale from a command-line argument.
    pub fn parse(value: &str) -> Option<Scale> {
        match value.to_ascii_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Reads the scale from the process arguments (`--scale <value>`),
    /// defaulting to [`Scale::Quick`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            if a == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|v| Scale::parse(v)) {
                    return v;
                }
            }
            if let Some(v) = a.strip_prefix("--scale=").and_then(Scale::parse) {
                return v;
            }
        }
        Scale::Quick
    }

    /// Federation hyper-parameters at this scale.
    pub fn fl_config(&self) -> FlConfig {
        match self {
            Scale::Quick => FlConfig {
                rounds: 12,
                clients_per_round: 5,
                local_iterations: 4,
                batch_size: 16,
                eval_every: 3,
                ..FlConfig::default()
            },
            Scale::Small => FlConfig {
                rounds: 20,
                clients_per_round: 5,
                local_iterations: 5,
                batch_size: 20,
                eval_every: 2,
                ..FlConfig::default()
            },
            Scale::Full => FlConfig {
                rounds: 60,
                clients_per_round: 8,
                local_iterations: 5,
                batch_size: 20,
                eval_every: 5,
                ..FlConfig::default()
            },
        }
    }

    /// Dataset scenario for a given benchmark at this scale.
    pub fn scenario(&self, kind: DatasetKind) -> ScenarioConfig {
        match self {
            Scale::Quick => ScenarioConfig {
                num_clients: 10,
                samples_per_client: 60,
                test_per_client: 24,
                ..ScenarioConfig::small(kind)
            },
            Scale::Small => ScenarioConfig {
                num_clients: 16,
                samples_per_client: 100,
                test_per_client: 40,
                ..ScenarioConfig::small(kind)
            },
            Scale::Full => ScenarioConfig::small(kind).with_clients(kind.default_num_clients()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scales() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("SMALL"), Some(Scale::Small));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn configs_grow_with_scale() {
        assert!(Scale::Quick.fl_config().rounds < Scale::Small.fl_config().rounds);
        assert!(Scale::Small.fl_config().rounds < Scale::Full.fl_config().rounds);
        assert!(
            Scale::Quick.scenario(DatasetKind::MnistLike).num_clients
                <= Scale::Full.scenario(DatasetKind::MnistLike).num_clients
        );
    }
}
