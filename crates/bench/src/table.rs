//! Plain-text table formatting for the harness binaries.

/// A simple fixed-width table builder that prints results in the same
/// row/column structure as the paper's tables.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableBuilder {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a data row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats an accuracy fraction as a percentage with two decimals.
pub fn pct(accuracy: f64) -> String {
    format!("{:.2}", accuracy * 100.0)
}

/// Formats a FLOP count in units of 1e9 (the paper uses 1e12 at full scale;
/// the scaled-down models land in the 1e9 range).
pub fn gflops(flops: f64) -> String {
    format!("{:.2}", flops / 1e9)
}

/// Formats seconds with two decimals.
pub fn secs(seconds: f64) -> String {
    format!("{seconds:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableBuilder::new("Demo", &["Method", "Acc"]);
        t.row(vec!["FedAvg".into(), "12.34".into()]);
        t.row(vec!["FedLPS".into(), "99.99".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("FedAvg"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TableBuilder::new("Demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.8765), "87.65");
        assert_eq!(gflops(2.5e9), "2.50");
        assert_eq!(secs(1.234), "1.23");
    }
}
