//! Figure 3: test accuracy versus cumulative FLOPs for the convergence
//! comparison methods.

use fedlps_bench::harness::{
    datasets_from_args, figure_methods, methods_from_args, run_method, ExperimentEnv,
};
use fedlps_bench::table::{gflops, pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let datasets = datasets_from_args(vec![DatasetKind::MnistLike]);
    let methods = methods_from_args(figure_methods());
    for dataset in datasets {
        let env = ExperimentEnv::paper_default(scale, dataset);
        let mut table = TableBuilder::new(
            &format!("Figure 3 — accuracy vs FLOPs on {}", dataset.name()),
            &["Method", "FLOPs (1e9)", "Acc (%)"],
        );
        for method in &methods {
            let result = run_method(method, &env);
            for (flops, acc) in result.accuracy_vs_flops() {
                table.row(vec![result.algorithm.clone(), gflops(flops), pct(acc)]);
            }
        }
        table.print();
    }
}
