//! Figure 7: accuracy under low / median / high system heterogeneity.

use fedlps_bench::harness::{run_method, ExperimentEnv};
use fedlps_bench::table::{pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;
use fedlps_device::HeterogeneityLevel;

fn main() {
    let scale = Scale::from_args();
    let methods = ["FedAvg", "FedMP", "FedSpa", "FedLPS"];
    let mut table = TableBuilder::new(
        "Figure 7 — accuracy vs system heterogeneity",
        &["Dataset", "Level", "Method", "Acc (%)"],
    );
    for dataset in [DatasetKind::Cifar10Like, DatasetKind::TinyImagenetLike] {
        for level in HeterogeneityLevel::swept() {
            let mut env = ExperimentEnv::paper_default(scale, dataset);
            env.heterogeneity = level;
            for method in methods {
                let result = run_method(method, &env);
                table.row(vec![
                    dataset.name().to_string(),
                    level.name().to_string(),
                    result.algorithm.clone(),
                    pct(result.final_accuracy),
                ]);
            }
        }
    }
    table.print();
}
