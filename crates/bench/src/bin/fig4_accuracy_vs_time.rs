//! Figure 4: test accuracy versus simulated running time.

use fedlps_bench::harness::{
    datasets_from_args, figure_methods, methods_from_args, run_method, ExperimentEnv,
};
use fedlps_bench::table::{pct, secs, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let datasets = datasets_from_args(vec![DatasetKind::MnistLike]);
    let methods = methods_from_args(figure_methods());
    for dataset in datasets {
        let env = ExperimentEnv::paper_default(scale, dataset);
        let mut table = TableBuilder::new(
            &format!("Figure 4 — accuracy vs running time on {}", dataset.name()),
            &["Method", "Time (s)", "Acc (%)"],
        );
        for method in &methods {
            let result = run_method(method, &env);
            for (time, acc) in result.accuracy_vs_time() {
                table.row(vec![result.algorithm.clone(), secs(time), pct(acc)]);
            }
        }
        table.print();
    }
}
