//! Figure 9a: accuracy of the different sparse-pattern strategies (random,
//! ordered, magnitude, learnable) across fixed sparse ratios.

use fedlps_bench::harness::{run_fedlps_with, ExperimentEnv};
use fedlps_bench::table::{pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_core::FedLpsConfig;
use fedlps_data::scenario::DatasetKind;
use fedlps_sparse::pattern::PatternStrategy;

fn main() {
    let scale = Scale::from_args();
    let strategies = [
        PatternStrategy::Random,
        PatternStrategy::Ordered,
        PatternStrategy::Magnitude,
        PatternStrategy::Importance,
    ];
    for dataset in [DatasetKind::MnistLike, DatasetKind::RedditLike] {
        let env = ExperimentEnv::paper_default(scale, dataset);
        let mut table = TableBuilder::new(
            &format!("Figure 9a — pattern strategies on {}", dataset.name()),
            &["Sparse ratio", "Pattern", "Acc (%)"],
        );
        for ratio in [0.2, 0.4, 0.6, 0.8] {
            for strategy in strategies {
                let cfg = FedLpsConfig::with_pattern(strategy, ratio);
                let result = run_fedlps_with(&env, cfg);
                table.row(vec![
                    format!("{ratio:.1}"),
                    strategy.name().to_string(),
                    pct(result.final_accuracy),
                ]);
            }
        }
        table.print();
    }
}
