//! Table I: mean personalized accuracy and total training FLOPs for every
//! method on every dataset scenario.
//!
//! ```text
//! cargo run --release -p fedlps-bench --bin table1 -- \
//!     --scale quick --datasets mnist-like,cifar10-like --methods FedAvg,Hermes,FedLPS
//! ```

use fedlps_bench::harness::{datasets_from_args, methods_from_args, run_method, ExperimentEnv};
use fedlps_bench::table::{gflops, pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let datasets = datasets_from_args(vec![DatasetKind::MnistLike, DatasetKind::Cifar10Like]);
    let default_methods = vec![
        "FedAvg",
        "FedProx",
        "REFL",
        "CS",
        "HeteroFL",
        "FedRolex",
        "FedMP",
        "Ditto",
        "FedPer",
        "Per-FedAvg",
        "LotteryFL",
        "Hermes",
        "FedSpa",
        "FedP3",
        "FedLPS",
    ];
    let methods = methods_from_args(default_methods);

    for dataset in datasets {
        let env = ExperimentEnv::paper_default(scale, dataset);
        let mut table = TableBuilder::new(
            &format!("Table I — {} ({:?} scale)", dataset.name(), scale),
            &["Method", "Acc (%)", "FLOPs (1e9)", "Time (s)"],
        );
        for method in &methods {
            let result = run_method(method, &env);
            table.row(vec![
                result.algorithm.clone(),
                pct(result.final_accuracy),
                gflops(result.total_flops),
                format!("{:.2}", result.total_time),
            ]);
        }
        table.print();
    }
}
