//! Figure 8: total simulated running time under low / median / high system
//! heterogeneity.

use fedlps_bench::harness::{run_method, ExperimentEnv};
use fedlps_bench::table::{secs, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;
use fedlps_device::HeterogeneityLevel;

fn main() {
    let scale = Scale::from_args();
    let methods = ["FedAvg", "FedMP", "FedSpa", "FedLPS"];
    let mut table = TableBuilder::new(
        "Figure 8 — running time vs system heterogeneity",
        &["Dataset", "Level", "Method", "Time (s)"],
    );
    for dataset in [DatasetKind::Cifar10Like, DatasetKind::TinyImagenetLike] {
        for level in HeterogeneityLevel::swept() {
            let mut env = ExperimentEnv::paper_default(scale, dataset);
            env.heterogeneity = level;
            for method in methods {
                let result = run_method(method, &env);
                table.row(vec![
                    dataset.name().to_string(),
                    level.name().to_string(),
                    result.algorithm.clone(),
                    secs(result.total_time),
                ]);
            }
        }
    }
    table.print();
}
