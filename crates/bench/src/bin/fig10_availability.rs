//! Figure 10 (repro extension): round modes × selection policies under
//! correlated (diurnal) availability vs i.i.d. churn.
//!
//! The paper's experiments assume clients are available whenever selected
//! (§IV). This harness measures what that assumption hides, by running the
//! same federation grid — {sync, sync+quorum, deadline, async} × {uniform,
//! utility} — under two availability models and comparing each cell's
//! *diurnal tax*: total virtual time under a correlated day/night wave
//! divided by total time under the i.i.d. coin flip.
//!
//! Under i.i.d. churn no dispatch ever blocks, so the waits column is zero
//! and the modes differ only in how they schedule compute. Under a diurnal
//! wave the synchronous barrier pays the full outage bill — every round
//! waits for whichever cohort member dispatched into the night — while the
//! deadline hard-caps what any outage can cost (its tax stays near 1) and
//! the quorum closes rounds at a survivor fraction. That spread *is* the
//! separation the fault subsystem exists to expose.
//!
//! Every cell also runs transient upload faults (retry + backoff), so the
//! comparison happens on the full fault model, not a clean network.

use fedlps_bench::harness::ExperimentEnv;
use fedlps_bench::table::{pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_core::FedLps;
use fedlps_data::scenario::DatasetKind;
use fedlps_device::HeterogeneityLevel;
use fedlps_sim::config::{AvailabilityModel, FaultConfig, RoundMode, SelectionKind};
use fedlps_sim::metrics::RunResult;
use fedlps_sim::runner::Simulator;

fn run_cell(
    base: &ExperimentEnv,
    availability: AvailabilityModel,
    mode: RoundMode,
    quorum: f64,
    selection: SelectionKind,
    faults: FaultConfig,
) -> RunResult {
    let mut env = base.build();
    env.config = env
        .config
        .with_round_mode(mode)
        .with_quorum(quorum)
        .with_selection(selection)
        .with_availability(availability)
        .with_faults(faults);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn main() {
    let scale = Scale::from_args();
    // Remove device heterogeneity entirely: under the paper's five-tier
    // fleet the straggler variance alone separates the round modes, masking
    // the availability axis this figure isolates. With identical devices the
    // cohort modes tie exactly under i.i.d. churn, so any separation in the
    // diurnal half of the table is attributable to correlated availability.
    let mut base = ExperimentEnv::paper_default(scale, DatasetKind::MnistLike);
    base.heterogeneity = HeterogeneityLevel::None;

    // Probe synchronous/uniform with availability and faults both off: a
    // clean baseline that sizes everything else. The deadline budget sits
    // 20% above the worst fault-free round (the standard provisioning rule —
    // with identical devices any budget below the round time drops the whole
    // cohort), the retry backoff costs a quarter round per attempt (the
    // default 10ms backoff would dwarf a quick-scale round and turn every
    // retry into the dominant effect), and the diurnal wave runs four
    // day/night cycles over the probe's horizon with half of each period
    // offline and per-client phases.
    let probe = run_cell(
        &base,
        AvailabilityModel::Iid,
        RoundMode::Synchronous,
        1.0,
        SelectionKind::Uniform,
        FaultConfig::none(),
    );
    let worst_round = probe
        .rounds
        .iter()
        .map(|r| r.round_time)
        .fold(0.0, f64::max);
    let faults = FaultConfig {
        upload_failure_prob: 0.1,
        max_retries: 2,
        retry_backoff: worst_round * 0.25,
        ..FaultConfig::default()
    };
    let diurnal = AvailabilityModel::Diurnal {
        period: probe.total_time / 4.0,
        phase_spread: 1.0,
        night_offline: 0.5,
    };
    let modes = [
        ("sync", RoundMode::Synchronous, 1.0),
        ("sync+quorum", RoundMode::Synchronous, 0.7),
        ("deadline", RoundMode::deadline(worst_round * 1.2, 3), 1.0),
        ("async", RoundMode::asynchronous(4, 0.6), 1.0),
    ];
    // A time-to-accuracy bar every cell can reach.
    let target = probe.final_accuracy * 0.8;

    let mut table = TableBuilder::new(
        "Figure 10 — Round modes × selection under correlated availability",
        &[
            "Availability",
            "Mode",
            "Selection",
            "Acc (%)",
            "Time (s)",
            "TTA (s)",
            "Waits (s)",
            "Drops",
            "Retries",
        ],
    );
    let mut cells = Vec::new();
    for (avail_name, availability) in [("iid", AvailabilityModel::Iid), ("diurnal", diurnal)] {
        for (mode_name, mode, quorum) in modes {
            for selection in [SelectionKind::Uniform, SelectionKind::utility()] {
                let result = run_cell(&base, availability, mode, quorum, selection, faults);
                table.row(vec![
                    avail_name.to_string(),
                    mode_name.to_string(),
                    selection.name().to_string(),
                    pct(result.final_accuracy),
                    format!("{:.3}", result.total_time),
                    result
                        .time_to_accuracy(target)
                        .map(|t| format!("{t:.3}"))
                        .unwrap_or_else(|| "not reached".to_string()),
                    format!("{:.3}", result.total_unavailable_wait_seconds()),
                    format!(
                        "{}",
                        result.total_straggler_drops() + result.total_upload_failure_drops()
                    ),
                    format!("{}", result.total_retry_attempts()),
                ]);
                cells.push((avail_name, mode_name, selection.name(), result.total_time));
            }
        }
    }
    table.print();

    // The headline: each configuration's diurnal tax (time under the wave
    // relative to the same configuration under i.i.d. churn).
    println!("\ndiurnal tax (total time under the wave / under i.i.d. churn):");
    for (mode_name, _, _) in modes {
        for selection in ["uniform", "utility"] {
            let time_of = |avail: &str| {
                cells
                    .iter()
                    .find(|(a, m, s, _)| *a == avail && *m == mode_name && *s == selection)
                    .map(|(_, _, _, t)| *t)
                    .expect("every grid cell ran")
            };
            println!(
                "  {:<12} {:<8} {:>5.2}x",
                mode_name,
                selection,
                time_of("diurnal") / time_of("iid")
            );
        }
    }
    println!(
        "\nExpected shape: only the diurnal half pays availability waits — \
         i.i.d. churn never blocks a dispatch. Under the wave the \
         synchronous barrier is the slowest configuration — it pays the \
         full outage bill — the deadline round degrades most \
         gracefully (a budget caps what any outage can cost, so its tax \
         stays near 1x at the price of dropped night-bound clients), the \
         quorum buys back part of the barrier's tail, and the asynchronous \
         pipeline stays fastest in absolute time even though every occupied \
         slot still sits out its wait."
    );
}
