//! Figure 6: accuracy versus the non-IID level on the MNIST analogue. The
//! x-axis is the number of classes each client *lacks* (larger = more skewed).

use fedlps_bench::harness::{run_method, ExperimentEnv};
use fedlps_bench::table::{pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::partition::PartitionStrategy;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let methods = ["FedPer", "Hermes", "FedSpa", "Per-FedAvg", "FedLPS"];
    let num_classes = DatasetKind::MnistLike.num_classes();
    let mut table = TableBuilder::new(
        "Figure 6 — accuracy vs non-IID level (mnist-like)",
        &["Missing classes", "Method", "Acc (%)"],
    );
    for missing in [2usize, 4, 6, 8] {
        let mut env = ExperimentEnv::paper_default(scale, DatasetKind::MnistLike);
        env.partition_override = Some(PartitionStrategy::Pathological {
            classes_per_client: num_classes - missing,
        });
        for method in methods {
            let result = run_method(method, &env);
            table.row(vec![
                missing.to_string(),
                result.algorithm.clone(),
                pct(result.final_accuracy),
            ]);
        }
    }
    table.print();
}
