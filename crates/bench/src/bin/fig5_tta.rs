//! Figure 5: Time-To-Accuracy on the CIFAR-10 / CIFAR-100 / Tiny-ImageNet
//! analogues. The accuracy targets are set to 80% of FedLPS's own final
//! accuracy per dataset so the same relative bar applies across methods.

use fedlps_bench::harness::{run_method, ExperimentEnv};
use fedlps_bench::table::{pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    let methods = ["FedPer", "Hermes", "FedSpa", "Per-FedAvg", "FedLPS"];
    let mut table = TableBuilder::new(
        "Figure 5 — Time-To-Accuracy",
        &["Dataset", "Target (%)", "Method", "TTA (s)"],
    );
    for dataset in [
        DatasetKind::Cifar10Like,
        DatasetKind::Cifar100Like,
        DatasetKind::TinyImagenetLike,
    ] {
        let env = ExperimentEnv::paper_default(scale, dataset);
        let fedlps = run_method("FedLPS", &env);
        let target = fedlps.final_accuracy * 0.8;
        for method in methods {
            let result = if method == "FedLPS" {
                fedlps.clone()
            } else {
                run_method(method, &env)
            };
            let tta = result
                .time_to_accuracy(target)
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "not reached".to_string());
            table.row(vec![
                dataset.name().to_string(),
                pct(target),
                result.algorithm.clone(),
                tta,
            ]);
        }
    }
    table.print();
}
