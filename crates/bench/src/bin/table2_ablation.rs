//! Table II: the ablation of FedLPS's two learnable components.
//!
//! * FLST — learnable pattern, fixed ratio 0.5 (no P-UCBV);
//! * RCR-Fix / P-UCBV-Fix — static device capabilities;
//! * RCR-Dyn / P-UCBV-Dyn — per-round dynamic available capability.

use fedlps_bench::harness::{run_fedlps_with, ExperimentEnv};
use fedlps_bench::table::{gflops, pct, TableBuilder};
use fedlps_bench::Scale;
use fedlps_core::FedLpsConfig;
use fedlps_data::scenario::DatasetKind;

fn main() {
    let scale = Scale::from_args();
    for dataset in [DatasetKind::MnistLike, DatasetKind::Cifar10Like] {
        let static_env = ExperimentEnv::paper_default(scale, dataset);
        let mut dynamic_env = static_env.clone();
        dynamic_env.dynamic_capability = true;

        let fl_cfg = scale.fl_config();
        let pucbv =
            |rounds: usize| FedLpsConfig::for_federation(rounds, 0, fl_cfg.clients_per_round);

        let mut table = TableBuilder::new(
            &format!(
                "Table II — ablation on {} ({:?} scale)",
                dataset.name(),
                scale
            ),
            &["Variant", "Acc (%)", "FLOPs (1e9)"],
        );
        let cases: Vec<(&str, FedLpsConfig, &ExperimentEnv)> = vec![
            ("FLST (fixed 0.5)", FedLpsConfig::flst(0.5), &static_env),
            ("RCR-Fix", FedLpsConfig::rcr(), &static_env),
            ("P-UCBV-Fix", pucbv(fl_cfg.rounds), &static_env),
            ("RCR-Dyn", FedLpsConfig::rcr(), &dynamic_env),
            ("P-UCBV-Dyn", pucbv(fl_cfg.rounds), &dynamic_env),
        ];
        for (label, cfg, env) in cases {
            let result = run_fedlps_with(env, cfg);
            table.row(vec![
                label.to_string(),
                pct(result.final_accuracy),
                gflops(result.total_flops),
            ]);
        }
        table.print();
    }
}
