//! Figure 9b: training / communication / total time of FedLPS's learnable
//! sparsification as the (fixed) sparse ratio grows.

use fedlps_bench::harness::ExperimentEnv;
use fedlps_bench::table::{secs, TableBuilder};
use fedlps_bench::Scale;
use fedlps_core::{FedLps, FedLpsConfig};
use fedlps_data::scenario::DatasetKind;
use fedlps_sim::algorithm::FlAlgorithm;
use fedlps_sim::runner::Simulator;
use fedlps_tensor::rng_from_seed;

fn main() {
    let scale = Scale::from_args();
    for dataset in [DatasetKind::MnistLike, DatasetKind::RedditLike] {
        let env_spec = ExperimentEnv::paper_default(scale, dataset);
        let mut table = TableBuilder::new(
            &format!("Figure 9b — per-round time breakdown on {}", dataset.name()),
            &["Sparse ratio", "Train (s)", "Comm (s)", "Total (s)"],
        );
        for ratio in [0.2, 0.4, 0.6, 0.8] {
            // One representative client round at this ratio: run the client
            // work directly to split compute vs communication time.
            let env = env_spec.build();
            let mut algo = FedLps::new(FedLpsConfig::flst(ratio));
            algo.setup(&env);
            let mut rng = rng_from_seed(7);
            let _ = &mut rng;
            let mut compute = 0.0;
            let mut comm = 0.0;
            let sim = Simulator::new(env);
            let result = sim.run(&mut algo);
            // Recover the split from the recorded per-round totals: compute
            // time scales with FLOPs, communication with uploaded bytes.
            for r in &result.rounds {
                compute += r.round_flops;
                comm += r.round_upload_bytes;
            }
            let total_time = result.total_time;
            // Convert the aggregate FLOPs/bytes back into seconds using the
            // same reference capacities as the cost model (top-tier device).
            let train_s = compute / fedlps_device::capability::REFERENCE_GFLOPS;
            let comm_s = comm / fedlps_device::capability::REFERENCE_BANDWIDTH;
            table.row(vec![
                format!("{ratio:.1}"),
                secs(train_s),
                secs(comm_s),
                secs(total_time.max(train_s + comm_s)),
            ]);
        }
        table.print();
    }
}
