//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Every table and figure of the evaluation section has a corresponding
//! binary under `src/bin/` (run them with `cargo run --release -p fedlps-bench
//! --bin <name>`), and `benches/paper_experiments.rs` exposes reduced versions
//! of the same experiments as Criterion benchmarks so `cargo bench` exercises
//! them end-to-end. `EXPERIMENTS.md` records the paper-reported numbers next
//! to the numbers measured with this harness.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Table I (accuracy & FLOPs, 20 methods × 5 datasets) | `table1` |
//! | Table II (ablation: FLST / RCR / P-UCBV, fixed & dynamic) | `table2_ablation` |
//! | Figure 3 (accuracy vs FLOPs) | `fig3_accuracy_vs_flops` |
//! | Figure 4 (accuracy vs running time) | `fig4_accuracy_vs_time` |
//! | Figure 5 (time-to-accuracy) | `fig5_tta` |
//! | Figure 6 (accuracy vs non-IID level) | `fig6_noniid_levels` |
//! | Figure 7 (accuracy vs heterogeneity level) | `fig7_heterogeneity_accuracy` |
//! | Figure 8 (time vs heterogeneity level) | `fig8_heterogeneity_time` |
//! | Figure 9a (pattern strategies vs sparse ratio) | `fig9a_pattern_sweep` |
//! | Figure 9b (time breakdown vs sparse ratio) | `fig9b_time_breakdown` |
//!
//! All binaries accept `--scale quick|small|full` (default `quick`) so the
//! full sweep can be reproduced when more compute time is available; the
//! qualitative orderings already emerge at the `quick` scale.

pub mod harness;
pub mod scale;
pub mod table;

pub use harness::{run_fedlps, run_method, ExperimentEnv};
pub use scale::Scale;
pub use table::TableBuilder;
