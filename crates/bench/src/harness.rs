//! Experiment execution helpers shared by all harness binaries and benches.

use fedlps_baselines::registry::baseline_by_name;
use fedlps_core::{FedLps, FedLpsConfig};
use fedlps_data::partition::PartitionStrategy;
use fedlps_data::scenario::DatasetKind;
use fedlps_device::fleet::DynamicsConfig;
use fedlps_device::HeterogeneityLevel;
use fedlps_sim::env::FlEnv;
use fedlps_sim::metrics::RunResult;
use fedlps_sim::runner::Simulator;

use crate::scale::Scale;

/// A fully specified experiment environment: scale + dataset + heterogeneity
/// (+ optional non-IID override for the Figure 6 sweep).
#[derive(Debug, Clone)]
pub struct ExperimentEnv {
    pub scale: Scale,
    pub dataset: DatasetKind,
    pub heterogeneity: HeterogeneityLevel,
    pub partition_override: Option<PartitionStrategy>,
    /// Enables per-round availability fluctuations (the "Dyn" rows of
    /// Table II).
    pub dynamic_capability: bool,
    pub seed: u64,
}

impl ExperimentEnv {
    /// The paper's default setting for a dataset: pathological non-IID with
    /// the high heterogeneity fleet.
    pub fn paper_default(scale: Scale, dataset: DatasetKind) -> Self {
        Self {
            scale,
            dataset,
            heterogeneity: HeterogeneityLevel::High,
            partition_override: None,
            dynamic_capability: false,
            seed: 42,
        }
    }

    /// Builds the simulator environment.
    pub fn build(&self) -> FlEnv {
        let mut scenario = self.scale.scenario(self.dataset).with_seed(self.seed);
        if let Some(p) = self.partition_override {
            scenario = scenario.with_partition(p);
        }
        let config = self.scale.fl_config().with_seed(self.seed);
        let mut env = FlEnv::from_scenario(&scenario, self.heterogeneity, config);
        if self.dynamic_capability {
            env.fleet = env.fleet.clone().with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            });
        }
        env
    }
}

/// Runs FedLPS (default configuration sized for the environment) and returns
/// its metric trace.
pub fn run_fedlps(env: &ExperimentEnv) -> RunResult {
    let sim = Simulator::new(env.build());
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

/// Runs FedLPS with an explicit configuration (ablations).
pub fn run_fedlps_with(env: &ExperimentEnv, config: FedLpsConfig) -> RunResult {
    let sim = Simulator::new(env.build());
    let mut algo = FedLps::new(config);
    sim.run(&mut algo)
}

/// Runs a method by name: `"FedLPS"` or any baseline registered in
/// [`fedlps_baselines::registry`].
pub fn run_method(name: &str, env: &ExperimentEnv) -> RunResult {
    if name.eq_ignore_ascii_case("fedlps") {
        return run_fedlps(env);
    }
    let mut algo = baseline_by_name(name)
        .unwrap_or_else(|| panic!("unknown method '{name}'; see baseline_names()"));
    let sim = Simulator::new(env.build());
    sim.run(&mut *algo)
}

/// The method subset used by the paper's Figure 3/4 convergence plots.
pub fn figure_methods() -> Vec<&'static str> {
    vec![
        "FedAvg",
        "REFL",
        "FedMP",
        "Per-FedAvg",
        "Hermes",
        "FedSpa",
        "FedLPS",
    ]
}

/// Parses a `--methods a,b,c` style argument list, falling back to `default`.
pub fn methods_from_args(default: Vec<&'static str>) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--methods" {
            if let Some(v) = args.get(i + 1) {
                return v.split(',').map(|s| s.trim().to_string()).collect();
            }
        }
        if let Some(v) = a.strip_prefix("--methods=") {
            return v.split(',').map(|s| s.trim().to_string()).collect();
        }
    }
    default.into_iter().map(|s| s.to_string()).collect()
}

/// Parses a `--datasets mnist-like,...` argument, falling back to `default`.
pub fn datasets_from_args(default: Vec<DatasetKind>) -> Vec<DatasetKind> {
    let args: Vec<String> = std::env::args().collect();
    let parse = |v: &str| -> Vec<DatasetKind> {
        v.split(',')
            .filter_map(|name| {
                DatasetKind::all()
                    .into_iter()
                    .find(|k| k.name() == name.trim())
            })
            .collect()
    };
    for (i, a) in args.iter().enumerate() {
        if a == "--datasets" {
            if let Some(v) = args.get(i + 1) {
                let parsed = parse(v);
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
        if let Some(v) = a.strip_prefix("--datasets=") {
            let parsed = parse(v);
            if !parsed.is_empty() {
                return parsed;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedlps_and_a_baseline_run_at_quick_scale() {
        // The headline qualitative claim at the heart of the paper: on a
        // pathological non-IID, highly heterogeneous federation, FedLPS's
        // personalized sparse models beat the shared dense FedAvg model while
        // spending far fewer FLOPs. The cifar10-like scenario is where the
        // label-skew gap is decisive even at quick scale.
        let env = ExperimentEnv::paper_default(Scale::Quick, DatasetKind::Cifar10Like);
        let fedlps = run_fedlps(&env);
        assert_eq!(fedlps.algorithm, "FedLPS");
        assert!(fedlps.final_accuracy > 0.0);
        let fedavg = run_method("FedAvg", &env);
        assert_eq!(fedavg.algorithm, "FedAvg");
        assert!(fedlps.final_accuracy > fedavg.final_accuracy);
        assert!(fedlps.total_flops < fedavg.total_flops);
        // And it clearly beats the width-scaling heterogeneous baseline that
        // shares a single inference model across non-IID clients.
        let heterofl = run_method("HeteroFL", &env);
        assert!(fedlps.final_accuracy > heterofl.final_accuracy);
    }

    #[test]
    #[should_panic]
    fn unknown_method_panics() {
        let env = ExperimentEnv::paper_default(Scale::Quick, DatasetKind::MnistLike);
        let _ = run_method("NotAMethod", &env);
    }

    #[test]
    fn figure_method_list_contains_fedlps_and_is_runnable_by_name() {
        let methods = figure_methods();
        assert!(methods.contains(&"FedLPS"));
        for m in &methods {
            if *m != "FedLPS" {
                assert!(
                    fedlps_baselines::registry::baseline_by_name(m).is_some(),
                    "{m}"
                );
            }
        }
    }
}
