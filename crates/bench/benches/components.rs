//! Component-level micro-benchmarks: the building blocks whose cost dominates
//! a FedLPS round (local sparse training, mask construction, the P-UCBV
//! update, the residual aggregation), plus the tensor-kernel axes that track
//! the blocked matmul rewrite against the retained reference kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_bandit::pucbv::{PUcbv, PUcbvConfig, PUcbvFeedback};
use fedlps_core::client::{client_update, ClientState, ClientUpdateOptions};
use fedlps_core::server::{aggregate_residuals, StagedUpdate};
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_nn::model::ModelKind;
use fedlps_nn::pack::KeptUnits;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_tensor::{rng_from_seed, Arena, Density, Matrix};
use rand::Rng;
use std::time::Duration;

/// Dense square size of the kernel speedup gate.
const DENSE_N: usize = 128;

fn dense_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = rng_from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0f32..1.0))
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let fed = ScenarioConfig::tiny(DatasetKind::MnistLike).build();
    let arch = ModelKind::for_dataset(DatasetKind::MnistLike).build(fed.input, fed.num_classes);
    let mut rng = rng_from_seed(1);
    let global = arch.init_params(&mut rng);
    let data = &fed.clients[0].train;

    group.bench_function("client_update_importance_pattern", |b| {
        b.iter(|| {
            let mut state = ClientState::default();
            let mut rng = rng_from_seed(2);
            client_update(
                &*arch,
                &global,
                &mut state,
                data,
                &ClientUpdateOptions {
                    iterations: 3,
                    batch_size: 16,
                    sgd: SgdConfig::vision(),
                    importance_lr: 0.1,
                    mu: 1.0,
                    lambda: 1.0,
                    pattern: PatternStrategy::Importance,
                    ratio: 0.5,
                    round: 0,
                },
                &mut rng,
            )
            .uploaded_params
        })
    });

    group.bench_function("pattern_magnitude_mask_build", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| {
            PatternStrategy::Magnitude
                .build_mask(arch.unit_layout(), &global, None, 0.5, 0, &mut rng)
                .retained_units()
        })
    });

    group.bench_function("pucbv_update", |b| {
        b.iter(|| {
            let mut agent = PUcbv::new(PUcbvConfig::default(), 1.0, 0.1);
            let mut rng = rng_from_seed(4);
            let mut ratio = agent.initial_ratio(&mut rng);
            for i in 0..20 {
                ratio = agent.update(
                    PUcbvFeedback {
                        ratio,
                        local_cost: 1.0 + ratio,
                        accuracy: 0.1 + 0.01 * i as f64,
                    },
                    &mut rng,
                );
            }
            ratio
        })
    });

    group.bench_function("aggregate_residuals_8_clients", |b| {
        let staged: Vec<StagedUpdate> = (0..8)
            .map(|i| StagedUpdate {
                weight: 1.0 + i as f64,
                residual: fedlps_core::server::Residual::Dense(vec![0.01; global.len()]),
            })
            .collect();
        b.iter(|| {
            let mut g = global.clone();
            aggregate_residuals(&mut g, &staged);
            g[0]
        })
    });

    // ---- Tensor-kernel axes: the blocked kernels against the retained
    // reference scalar kernels, so BENCH_smoke.json captures the kernel
    // trajectory alongside the round-level numbers. ----

    let a = dense_matrix(DENSE_N, DENSE_N, 10);
    let b = dense_matrix(DENSE_N, DENSE_N, 11);
    group.bench_function("matmul_dense_128", |bch| {
        let mut out = Matrix::zeros(DENSE_N, DENSE_N);
        bch.iter(|| {
            out.as_mut_slice().fill(0.0);
            a.matmul_into_with(&b, &mut out, Density::Dense);
            out.get(0, 0)
        })
    });
    group.bench_function("matmul_dense_128_reference", |bch| {
        let mut out = Matrix::zeros(DENSE_N, DENSE_N);
        bch.iter(|| {
            out.as_mut_slice().fill(0.0);
            a.matmul_into_reference(&b, &mut out);
            out.get(0, 0)
        })
    });

    // The packed forward's workhorse: activations × packed-weightsᵀ at a
    // ratio-0.25 submodel of a 128-unit layer (32 kept rows). The packed
    // path passes `Density::Dense` — packed operands are dense by
    // construction.
    let activ = dense_matrix(16, DENSE_N, 12);
    let packed_w = dense_matrix(DENSE_N / 4, DENSE_N, 13);
    group.bench_function("matmul_nt_packed_ratio25", |bch| {
        let mut out = Matrix::zeros(16, DENSE_N / 4);
        bch.iter(|| {
            activ.matmul_nt_into_with(&packed_w, &mut out, Density::Dense);
            out.get(0, 0)
        })
    });
    group.bench_function("matmul_nt_packed_ratio25_reference", |bch| {
        let mut out = Matrix::zeros(16, DENSE_N / 4);
        bch.iter(|| {
            activ.matmul_nt_into_reference(&packed_w, &mut out);
            out.get(0, 0)
        })
    });

    // Pack/unpack round trip: gather the kept parameters of a half-width
    // MLP submodel into an arena slice and scatter a packed gradient back —
    // the allocation-free data motion every packed client step performs.
    let kept = KeptUnits::from_nested(&[(0..64).collect(), (0..32).collect()]);
    let packed_model = arch.pack(&kept).expect("packable");
    group.bench_function("pack_unpack_roundtrip", |bch| {
        let mut arena = Arena::from_pool(2 * packed_model.packed_len());
        let mut full_grad = vec![0.0f32; global.len()];
        bch.iter(|| {
            let [pp, pg] = arena.views([packed_model.packed_len(), packed_model.packed_len()]);
            packed_model.gather_params_into(&global, pp);
            pg.copy_from_slice(pp);
            packed_model.scatter_add(pg, &mut full_grad);
            pp[0]
        })
    });

    // Arena carve vs per-layer `Vec` allocations for the packed client
    // step's buffer set (masked, gradient, packed params, packed grad).
    let n = global.len();
    let p = packed_model.packed_len();
    group.bench_function("packed_step_buffers_arena", |bch| {
        let mut arena = Arena::from_pool(2 * n + 2 * p);
        bch.iter(|| {
            let [masked, grad, pp, pg] = arena.views([n, n, p, p]);
            masked[0] = 1.0;
            grad[0] + pp.len() as f32 + pg.len() as f32 + masked[0]
        })
    });
    group.bench_function("packed_step_buffers_per_layer", |bch| {
        bch.iter(|| {
            let mut masked = vec![0.0f32; n];
            let grad = vec![0.0f32; n];
            let pp = vec![0.0f32; p];
            let pg = vec![0.0f32; p];
            masked[0] = 1.0;
            grad[0] + pp.len() as f32 + pg.len() as f32 + masked[0]
        })
    });

    group.finish();

    // The kernel speedup gate: blocked vs reference on the dense 128×128
    // multiply, best of three per side. Single-threaded work on both sides,
    // so the ratio is core-count-independent and can gate in CI's smoke
    // mode (criterion's own measurements are skipped under `--test`).
    let time_dense = |blocked: bool| {
        (0..3)
            .map(|_| {
                let mut out = Matrix::zeros(DENSE_N, DENSE_N);
                #[allow(clippy::disallowed_methods)]
                // fedlps-lint: allow(D2, wall-clock kernel speedup measurement is this bench's entire job; the ratio is asserted and never fed back into simulation state)
                let start = std::time::Instant::now();
                for _ in 0..20 {
                    if blocked {
                        a.matmul_into_with(&b, &mut out, Density::Dense);
                    } else {
                        a.matmul_into_reference(&b, &mut out);
                    }
                }
                (start.elapsed(), out.get(0, 0))
            })
            .map(|(t, _)| t)
            .min()
            .expect("three runs")
    };
    let reference = time_dense(false);
    let blocked = time_dense(true);
    let kernel_speedup = reference.as_secs_f64() / blocked.as_secs_f64();
    println!(
        "components/matmul_dense_128_speedup: reference {reference:?} | blocked {blocked:?} \
         | {kernel_speedup:.2}x"
    );
    assert!(
        kernel_speedup >= 1.5,
        "blocked dense 128x128 matmul regressed below the 1.5x floor vs the \
         reference scalar kernel: {kernel_speedup:.2}x"
    );
}

criterion_group!(components, bench_components);
criterion_main!(components);
