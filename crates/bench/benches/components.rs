//! Component-level micro-benchmarks: the building blocks whose cost dominates
//! a FedLPS round (local sparse training, mask construction, the P-UCBV
//! update and the residual aggregation).

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_bandit::pucbv::{PUcbv, PUcbvConfig, PUcbvFeedback};
use fedlps_core::client::{client_update, ClientState, ClientUpdateOptions};
use fedlps_core::server::{aggregate_residuals, StagedUpdate};
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_nn::model::ModelKind;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_tensor::rng_from_seed;
use std::time::Duration;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));

    let fed = ScenarioConfig::tiny(DatasetKind::MnistLike).build();
    let arch = ModelKind::for_dataset(DatasetKind::MnistLike).build(fed.input, fed.num_classes);
    let mut rng = rng_from_seed(1);
    let global = arch.init_params(&mut rng);
    let data = &fed.clients[0].train;

    group.bench_function("client_update_importance_pattern", |b| {
        b.iter(|| {
            let mut state = ClientState::default();
            let mut rng = rng_from_seed(2);
            client_update(
                &*arch,
                &global,
                &mut state,
                data,
                &ClientUpdateOptions {
                    iterations: 3,
                    batch_size: 16,
                    sgd: SgdConfig::vision(),
                    importance_lr: 0.1,
                    mu: 1.0,
                    lambda: 1.0,
                    pattern: PatternStrategy::Importance,
                    ratio: 0.5,
                    round: 0,
                },
                &mut rng,
            )
            .uploaded_params
        })
    });

    group.bench_function("pattern_magnitude_mask_build", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| {
            PatternStrategy::Magnitude
                .build_mask(arch.unit_layout(), &global, None, 0.5, 0, &mut rng)
                .retained_units()
        })
    });

    group.bench_function("pucbv_update", |b| {
        b.iter(|| {
            let mut agent = PUcbv::new(PUcbvConfig::default(), 1.0, 0.1);
            let mut rng = rng_from_seed(4);
            let mut ratio = agent.initial_ratio(&mut rng);
            for i in 0..20 {
                ratio = agent.update(
                    PUcbvFeedback {
                        ratio,
                        local_cost: 1.0 + ratio,
                        accuracy: 0.1 + 0.01 * i as f64,
                    },
                    &mut rng,
                );
            }
            ratio
        })
    });

    group.bench_function("aggregate_residuals_8_clients", |b| {
        let staged: Vec<StagedUpdate> = (0..8)
            .map(|i| StagedUpdate {
                weight: 1.0 + i as f64,
                residual: fedlps_core::server::Residual::Dense(vec![0.01; global.len()]),
            })
            .collect();
        b.iter(|| {
            let mut g = global.clone();
            aggregate_residuals(&mut g, &staged);
            g[0]
        })
    });

    group.finish();
}

criterion_group!(components, bench_components);
criterion_main!(components);
