//! Criterion benches that exercise a reduced version of every table / figure
//! experiment, so `cargo bench` regenerates the full pipeline end-to-end.
//! The printed tables themselves come from the `src/bin/*` harnesses; these
//! benches measure how long each experiment's core loop takes at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_bench::harness::{run_fedlps_with, run_method, ExperimentEnv};
use fedlps_bench::Scale;
use fedlps_core::FedLpsConfig;
use fedlps_data::partition::PartitionStrategy;
use fedlps_data::scenario::DatasetKind;
use fedlps_device::HeterogeneityLevel;
use fedlps_sparse::pattern::PatternStrategy;
use std::time::Duration;

fn tiny_env(dataset: DatasetKind) -> ExperimentEnv {
    let mut env = ExperimentEnv::paper_default(Scale::Quick, dataset);
    // Benches shrink the round budget further so each iteration stays fast.
    env.seed = 7;
    env
}

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    group
}

fn bench_table1(c: &mut Criterion) {
    let mut group = configure(c);
    let env = tiny_env(DatasetKind::MnistLike);
    group.bench_function("table1_fedlps_mnist_like", |b| {
        b.iter(|| run_method("FedLPS", &env).final_accuracy)
    });
    group.bench_function("table1_fedavg_mnist_like", |b| {
        b.iter(|| run_method("FedAvg", &env).final_accuracy)
    });
    group.finish();
}

fn bench_table2_ablation(c: &mut Criterion) {
    let mut group = configure(c);
    let env = tiny_env(DatasetKind::MnistLike);
    group.bench_function("table2_flst_fixed_ratio", |b| {
        b.iter(|| run_fedlps_with(&env, FedLpsConfig::flst(0.5)).final_accuracy)
    });
    group.bench_function("table2_rcr", |b| {
        b.iter(|| run_fedlps_with(&env, FedLpsConfig::rcr()).final_accuracy)
    });
    group.finish();
}

fn bench_fig3_fig4_convergence_traces(c: &mut Criterion) {
    let mut group = configure(c);
    let env = tiny_env(DatasetKind::MnistLike);
    group.bench_function("fig3_fig4_accuracy_vs_cost_trace", |b| {
        b.iter(|| {
            let result = run_method("FedLPS", &env);
            (
                result.accuracy_vs_flops().len(),
                result.accuracy_vs_time().len(),
            )
        })
    });
    group.finish();
}

fn bench_fig5_tta(c: &mut Criterion) {
    let mut group = configure(c);
    let env = tiny_env(DatasetKind::Cifar10Like);
    group.bench_function("fig5_time_to_accuracy", |b| {
        b.iter(|| {
            let result = run_method("FedLPS", &env);
            result.time_to_accuracy(result.final_accuracy * 0.8)
        })
    });
    group.finish();
}

fn bench_fig6_noniid(c: &mut Criterion) {
    let mut group = configure(c);
    let mut env = tiny_env(DatasetKind::MnistLike);
    env.partition_override = Some(PartitionStrategy::Pathological {
        classes_per_client: 4,
    });
    group.bench_function("fig6_noniid_level_sweep_point", |b| {
        b.iter(|| run_method("FedLPS", &env).final_accuracy)
    });
    group.finish();
}

fn bench_fig7_fig8_heterogeneity(c: &mut Criterion) {
    let mut group = configure(c);
    let mut env = tiny_env(DatasetKind::Cifar10Like);
    env.heterogeneity = HeterogeneityLevel::Median;
    group.bench_function("fig7_fig8_median_heterogeneity_point", |b| {
        b.iter(|| {
            let result = run_method("FedLPS", &env);
            (result.final_accuracy, result.total_time)
        })
    });
    group.finish();
}

fn bench_fig9_pattern_and_ratio(c: &mut Criterion) {
    let mut group = configure(c);
    let env = tiny_env(DatasetKind::MnistLike);
    group.bench_function("fig9a_learnable_pattern_ratio_0_4", |b| {
        b.iter(|| {
            run_fedlps_with(
                &env,
                FedLpsConfig::with_pattern(PatternStrategy::Importance, 0.4),
            )
            .final_accuracy
        })
    });
    group.bench_function("fig9a_magnitude_pattern_ratio_0_4", |b| {
        b.iter(|| {
            run_fedlps_with(
                &env,
                FedLpsConfig::with_pattern(PatternStrategy::Magnitude, 0.4),
            )
            .final_accuracy
        })
    });
    group.bench_function("fig9b_time_breakdown_ratio_0_4", |b| {
        b.iter(|| run_fedlps_with(&env, FedLpsConfig::flst(0.4)).total_time)
    });
    group.finish();
}

criterion_group!(
    paper_experiments,
    bench_table1,
    bench_table2_ablation,
    bench_fig3_fig4_convergence_traces,
    bench_fig5_tta,
    bench_fig6_noniid,
    bench_fig7_fig8_heterogeneity,
    bench_fig9_pattern_and_ratio
);
criterion_main!(paper_experiments);
