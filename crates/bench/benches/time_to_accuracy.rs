//! Time-to-accuracy under the three round modes on a heterogeneous
//! 64-client fleet.
//!
//! The event-driven runtime exists to answer one question the synchronous
//! loop cannot: how much *virtual* wall-clock does straggler tolerance buy at
//! a given accuracy? This bench times a short FedLPS run under each
//! [`RoundMode`] (the criterion timings land in CI's `BENCH_smoke.json`
//! artifact) and then, on a longer horizon, pins the headline property:
//! `Deadline` and `Async` rounds reach the same accuracy target in less
//! virtual time than the synchronous barrier, because the Eq. (18) straggler
//! term no longer gates every round.
//!
//! ```text
//! cargo bench --bench time_to_accuracy             # measure
//! cargo bench --bench time_to_accuracy -- --test   # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_core::FedLps;
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::HeterogeneityLevel;
use fedlps_sim::config::{AvailabilityModel, FlConfig, RoundMode, SelectionKind};
use fedlps_sim::env::FlEnv;
use fedlps_sim::metrics::RunResult;
use fedlps_sim::runner::Simulator;
use std::time::Duration;

const FLEET: usize = 64;

fn fleet_sim(
    mode: RoundMode,
    selection: SelectionKind,
    rounds: usize,
    eval_every: usize,
) -> Simulator {
    fleet_sim_under(mode, selection, AvailabilityModel::Iid, rounds, eval_every)
}

fn fleet_sim_under(
    mode: RoundMode,
    selection: SelectionKind,
    availability: AvailabilityModel,
    rounds: usize,
    eval_every: usize,
) -> Simulator {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    let config = FlConfig {
        rounds,
        clients_per_round: 8,
        local_iterations: 3,
        batch_size: 16,
        eval_every,
        ..FlConfig::default()
    }
    .with_round_mode(mode)
    .with_selection(selection)
    .with_availability(availability);
    Simulator::new(FlEnv::from_scenario(
        &scenario,
        HeterogeneityLevel::High,
        config,
    ))
}

fn run_selected(
    mode: RoundMode,
    selection: SelectionKind,
    rounds: usize,
    eval_every: usize,
) -> RunResult {
    let sim = fleet_sim(mode, selection, rounds, eval_every);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn run_mode(mode: RoundMode, rounds: usize, eval_every: usize) -> RunResult {
    run_selected(mode, SelectionKind::Uniform, rounds, eval_every)
}

fn bench_time_to_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("time_to_accuracy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    // Wall-clock cost of driving each mode (short horizon, evaluation held
    // out of the measurement): the async pipeline's event loop must stay in
    // the same cost class as the cohort barrier.
    group.bench_function("fedlps_64c_sync_4r", |b| {
        b.iter(|| run_mode(RoundMode::Synchronous, 4, 4).total_flops)
    });
    group.bench_function("fedlps_64c_deadline_4r", |b| {
        b.iter(|| run_mode(RoundMode::deadline(5.0, 8), 4, 4).total_flops)
    });
    group.bench_function("fedlps_64c_async_4r", |b| {
        b.iter(|| run_mode(RoundMode::asynchronous(4, 0.6), 4, 4).total_flops)
    });
    // The selection axis: same barrier, different cohort policy — how much
    // driver wall-clock the utility ranking itself costs.
    group.bench_function("fedlps_64c_sync_utility_4r", |b| {
        b.iter(|| run_selected(RoundMode::Synchronous, SelectionKind::utility(), 4, 4).total_flops)
    });
    group.finish();

    // The paper-facing comparison (Figure 4/5 axis): virtual time to a common
    // accuracy target on a longer horizon.
    let rounds = 12;
    let sync = run_mode(RoundMode::Synchronous, rounds, 2);
    let worst_round = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
    let deadline = run_mode(RoundMode::deadline(worst_round * 0.5, 8), rounds, 2);
    let async_run = run_mode(RoundMode::asynchronous(4, 0.6), rounds, 2);

    let target = 0.95
        * sync
            .best_accuracy
            .min(deadline.best_accuracy)
            .min(async_run.best_accuracy);
    let tta = |r: &RunResult| {
        r.time_to_accuracy(target)
            .expect("every mode reaches 95% of the weakest best accuracy")
    };
    let (t_sync, t_deadline, t_async) = (tta(&sync), tta(&deadline), tta(&async_run));
    println!(
        "time_to_accuracy/virtual_seconds_to_{target:.3}: sync {t_sync:.2}s | deadline \
         {t_deadline:.2}s (drops {}) | async {t_async:.2}s (mean staleness {:.2})",
        deadline.total_straggler_drops(),
        async_run.mean_staleness(),
    );
    assert!(
        t_deadline < t_sync,
        "deadline rounds must reach {target:.3} accuracy in less virtual time \
         ({t_deadline} vs {t_sync})"
    );
    assert!(
        t_async < t_sync,
        "async rounds must reach {target:.3} accuracy in less virtual time \
         ({t_async} vs {t_sync})"
    );
    assert!(
        deadline.total_straggler_drops() > 0,
        "a half-worst-round budget must drop stragglers on a High fleet"
    );

    // The selection axis of the same question: virtual time to the target
    // under uniform vs Oort-style utility cohorts (`sync` doubles as the
    // uniform baseline). Utility selection shortens the Eq. (18) straggler
    // term by favouring fast tiers, which the participation census pins.
    let utility = run_selected(RoundMode::Synchronous, SelectionKind::utility(), rounds, 2);
    let sel_target = 0.95 * sync.best_accuracy.min(utility.best_accuracy);
    let t_uniform = sync
        .time_to_accuracy(sel_target)
        .expect("uniform selection reaches the shared target");
    let t_utility = utility
        .time_to_accuracy(sel_target)
        .expect("utility selection reaches the shared target");
    let caps = fleet_sim(RoundMode::Synchronous, SelectionKind::Uniform, 1, 1)
        .env()
        .capabilities();
    let fast_share = |r: &RunResult| {
        r.participation_shares()
            .iter()
            .zip(&caps)
            .filter(|(_, &z)| z >= 0.5)
            .map(|(s, _)| s)
            .sum::<f64>()
    };
    println!(
        "time_to_accuracy/selection_virtual_seconds_to_{sel_target:.3}: uniform {t_uniform:.2}s \
         | utility {t_utility:.2}s (fast-tier share {:.0}% -> {:.0}%)",
        fast_share(&sync) * 100.0,
        fast_share(&utility) * 100.0,
    );
    assert!(
        fast_share(&utility) > fast_share(&sync),
        "utility selection must shift participation toward fast tiers \
         ({:.3} vs {:.3})",
        fast_share(&utility),
        fast_share(&sync)
    );

    // The availability axis of the same question (the fault subsystem's
    // headline): under a correlated day/night wave — two slow cycles over
    // the i.i.d. horizon, half of each period offline, per-client phases —
    // the synchronous barrier waits out every outage its cohort dispatches
    // into. A slow wave is *predictable*: a client observed waiting last
    // round is probably still near its night, its inflated observed latency
    // depresses the tracker's pessimistic speed term, and utility selection
    // routes the next cohort around it. Uniform selection keeps dispatching
    // into the night, so utility must finish the same horizon in less
    // virtual time.
    let diurnal = AvailabilityModel::Diurnal {
        period: sync.total_time / 2.0,
        phase_spread: 1.0,
        night_offline: 0.5,
    };
    let run_wave = |selection: SelectionKind| {
        let sim = fleet_sim_under(RoundMode::Synchronous, selection, diurnal, rounds, 2);
        let mut algo = FedLps::for_env(sim.env());
        sim.run(&mut algo)
    };
    let wave_uniform = run_wave(SelectionKind::Uniform);
    let wave_utility = run_wave(SelectionKind::utility());
    println!(
        "time_to_accuracy/diurnal_virtual_seconds: uniform {:.3}s (waits {:.3}s) | utility \
         {:.3}s (waits {:.3}s)",
        wave_uniform.total_time,
        wave_uniform.total_unavailable_wait_seconds(),
        wave_utility.total_time,
        wave_utility.total_unavailable_wait_seconds(),
    );
    for (name, run, iid) in [
        ("uniform", &wave_uniform, &sync),
        ("utility", &wave_utility, &utility),
    ] {
        assert!(
            run.total_unavailable_dispatches() > 0 && run.total_unavailable_wait_seconds() > 0.0,
            "a 40%-night wave must catch some {name} dispatches"
        );
        assert!(
            run.total_time > iid.total_time,
            "the wave must cost {name} selection virtual time"
        );
    }
    assert!(
        wave_utility.total_time < wave_uniform.total_time,
        "utility selection must beat uniform under the day/night wave \
         ({} vs {})",
        wave_utility.total_time,
        wave_uniform.total_time
    );
}

criterion_group!(benches, bench_time_to_accuracy);
criterion_main!(benches);
