//! Round-loop throughput: serial vs sharded client training on a 64-client
//! heterogeneous fleet, and packed-submodel vs masked-dense execution on a
//! sparse one.
//!
//! The round loop's client steps are pure, so
//! [`FlConfig::parallelism`](fedlps_sim::config::FlConfig) shards them across
//! threads with bit-identical results; this bench tracks the speedup that
//! sharding buys on the ROADMAP's scale path (target: ≥ 1.5× at 4 shards on
//! a 4-core runner) plus the cross-round mask-cache hit rate after round 3
//! (target: > 80% once ratios stabilise — the RCR line below; FedLPS proper
//! trails it while P-UCBV explores).
//!
//! The packed axis is the tentpole of the physical-sparsity work: with
//! `FlConfig::packed_execution` on, a ratio-`s` client trains a physically
//! small submodel instead of a masked full model, so wall-clock finally
//! scales with the sparsity the bandit buys (results stay bit-identical —
//! CI's determinism gate diffs the two). Floor asserted here: packed ≥ 1.3×
//! masked-dense on a ratio-0.25 fleet (the 0.5 fleet is reported alongside).
//!
//! ```text
//! cargo bench --bench round_throughput             # measure
//! cargo bench --bench round_throughput -- --test   # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_core::config::FedLpsConfig;
use fedlps_core::FedLps;
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::HeterogeneityLevel;
use fedlps_sim::config::FlConfig;
use fedlps_sim::env::FlEnv;
use fedlps_sim::runner::Simulator;
use std::time::Duration;

const FLEET: usize = 64;
const SHARDS: usize = 4;

fn fleet_config(parallelism: usize) -> FlConfig {
    FlConfig {
        rounds: 5,
        clients_per_round: 16,
        local_iterations: 3,
        batch_size: 16,
        // Keep periodic evaluation out of the measurement: it is already
        // parallel, while this bench isolates the client-training path.
        eval_every: 5,
        ..FlConfig::default()
    }
    .with_parallelism(parallelism)
}

fn fleet_sim(parallelism: usize) -> Simulator {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    Simulator::new(FlEnv::from_scenario(
        &scenario,
        HeterogeneityLevel::High,
        fleet_config(parallelism),
    ))
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    let serial = fleet_sim(1);
    group.bench_function("fedlps_64c_serial", |b| {
        b.iter(|| {
            let mut algo = FedLps::for_env(serial.env());
            serial.run(&mut algo).total_flops
        })
    });

    let sharded = fleet_sim(SHARDS);
    group.bench_function("fedlps_64c_sharded_4", |b| {
        b.iter(|| {
            let mut algo = FedLps::for_env(sharded.env());
            sharded.run(&mut algo).total_flops
        })
    });

    // Packed vs masked execution on a sparse fleet: a fixed learnable-pattern
    // ratio (the FLST ablation) keeps every client at the same sparsity, so
    // the pair isolates the execution path. Training dominates this config
    // (one evaluation pass, six local iterations).
    let sparse_config = |packed: bool| {
        FlConfig {
            rounds: 4,
            clients_per_round: 16,
            local_iterations: 6,
            batch_size: 16,
            eval_every: 4,
            ..FlConfig::default()
        }
        .with_packed_execution(packed)
    };
    let sparse_sim = |packed: bool| {
        let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
        Simulator::new(FlEnv::from_scenario(
            &scenario,
            HeterogeneityLevel::High,
            sparse_config(packed),
        ))
    };
    let packed_sim = sparse_sim(true);
    group.bench_function("fedlps_64c_packed_r025", |b| {
        b.iter(|| {
            let mut algo = FedLps::new(FedLpsConfig::flst(0.25));
            packed_sim.run(&mut algo).total_flops
        })
    });
    let masked_sim = sparse_sim(false);
    group.bench_function("fedlps_64c_masked_r025", |b| {
        b.iter(|| {
            let mut algo = FedLps::new(FedLpsConfig::flst(0.25));
            masked_sim.run(&mut algo).total_flops
        })
    });

    group.finish();

    // The packed ≥ 1.3× floor, measured outside criterion so the assertion
    // also runs in `--test` smoke mode: best of three runs per side, which
    // keeps CI-runner noise out of the ratio.
    let time_ratio = |ratio: f64| {
        let measure = |packed: bool| {
            let sim = sparse_sim(packed);
            (0..3)
                .map(|_| {
                    #[allow(clippy::disallowed_methods)]
                    // fedlps-lint: allow(D2, wall-clock speedup measurement is this bench's entire job; the ratio is asserted and never fed back into simulation state)
                    let start = std::time::Instant::now();
                    let mut algo = FedLps::new(FedLpsConfig::flst(ratio));
                    let _ = sim.run(&mut algo);
                    start.elapsed()
                })
                .min()
                .expect("three runs")
        };
        let masked = measure(false);
        let packed = measure(true);
        masked.as_secs_f64() / packed.as_secs_f64()
    };
    let speedup_025 = time_ratio(0.25);
    let speedup_05 = time_ratio(0.5);
    println!(
        "round_throughput/packed_vs_masked_speedup: ratio 0.25 -> {speedup_025:.2}x | \
         ratio 0.5 -> {speedup_05:.2}x"
    );
    assert!(
        speedup_025 >= 1.3,
        "packed execution regressed below the 1.3x floor at ratio 0.25: {speedup_025:.2}x"
    );

    // Mask-cache warm hit rates (rounds ≥ 3), printed alongside the timings
    // so the perf trajectory records both dimensions of the optimisation.
    // A longer horizon than the timed runs, so the cache actually warms up.
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    let sim = Simulator::new(FlEnv::from_scenario(
        &scenario,
        HeterogeneityLevel::High,
        fleet_config(SHARDS).with_rounds(20),
    ));
    let mut pucbv = FedLps::for_env(sim.env());
    let pucbv_rate = sim.run(&mut pucbv).mask_cache_hit_rate_from(3);
    // Identical federation-sized bandit configuration with only the
    // quantization switch flipped, so the asserted lift isolates the
    // arm-space effect from the exploration schedule.
    let mut continuous = FedLps::new(
        FedLpsConfig::for_federation(
            sim.env().config.rounds,
            sim.env().num_clients(),
            sim.env().config.clients_per_round,
        )
        .with_quantize_arm_space(false),
    );
    let continuous_rate = sim.run(&mut continuous).mask_cache_hit_rate_from(3);
    let mut rcr = FedLps::new(FedLpsConfig::rcr());
    let rcr_rate = sim.run(&mut rcr).mask_cache_hit_rate_from(3);
    println!(
        "round_throughput/mask_cache_hit_rate_after_round_3: rcr {:.1}% | p-ucbv quantized \
         {:.1}% | p-ucbv continuous {:.1}%",
        rcr_rate * 100.0,
        pucbv_rate * 100.0,
        continuous_rate * 100.0
    );
    assert!(
        rcr_rate > 0.8,
        "stable-ratio mask-cache hit rate regressed below 80%: {rcr_rate}"
    );
    // Arm-space quantization at the model's shape resolution: P-UCBV proper
    // sat near ~30% while sampling ratios continuously; collapsing
    // equal-shape ratios to one arm lifts its warm hit rate toward the
    // stable-policy level (what remains is genuine cross-partition
    // exploration, which fades with the horizon).
    assert!(
        pucbv_rate > continuous_rate,
        "quantized arms must out-hit continuous sampling ({pucbv_rate} vs {continuous_rate})"
    );
    assert!(
        pucbv_rate > 0.4,
        "quantized P-UCBV warm hit rate regressed below 40%: {pucbv_rate}"
    );
}

criterion_group!(benches, bench_round_throughput);
criterion_main!(benches);
