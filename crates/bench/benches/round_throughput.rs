//! Round-loop throughput: serial vs sharded client training on a 64-client
//! heterogeneous fleet, and packed-submodel vs masked-dense execution on a
//! sparse one.
//!
//! The round loop's client steps are pure, so
//! [`FlConfig::parallelism`](fedlps_sim::config::FlConfig) shards them across
//! threads with bit-identical results; this bench tracks the speedup that
//! sharding buys on the ROADMAP's scale path (target: ≥ 1.5× at 4 shards on
//! a 4-core runner) plus the cross-round mask-cache hit rate after round 3
//! (target: > 80% once ratios stabilise — the RCR line below; FedLPS proper
//! trails it while P-UCBV explores).
//!
//! The packed axis is the tentpole of the physical-sparsity work: with
//! `FlConfig::packed_execution` on, a ratio-`s` client trains a physically
//! small submodel instead of a masked full model, so wall-clock finally
//! scales with the sparsity the bandit buys (results stay bit-identical —
//! CI's determinism gate diffs the two). Floors asserted here: packed is
//! never a pessimisation on a ratio-0.25 fleet and keeps a ≥ 1.1× win on
//! the 0.5 fleet (see the comment at the assertions for why 0.25 is parity).
//!
//! The population axis is the O(active) tentpole: one million registered
//! clients behind a [`DeviceFleet::lazy`] fleet and an
//! [`FlEnv::new_tiled`] environment, with a 64-participant footprint. The
//! memory contract is asserted by *counting materialized entries* (fleet
//! profiles, bandit arms, client states, mask-cache entries) rather than by
//! wall-clock, so the gate is deterministic on any runner.
//!
//! The aggregation axis is the merge-tree tentpole: Eq. (13) over a
//! 4096-client staged cohort, as the serial ascending walk versus the
//! coordinate-sharded merge tree at 4 shards. The tree is bit-identical by
//! construction (coordinates shard, clients never reassociate), so the only
//! question is wall-clock; floor asserted here: tree ≥ 1.3× serial.
//!
//! ```text
//! cargo bench --bench round_throughput             # measure
//! cargo bench --bench round_throughput -- --test   # CI smoke mode
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use fedlps_core::config::FedLpsConfig;
use fedlps_core::server::{aggregate_residuals_tree, Residual, StagedUpdate};
use fedlps_core::FedLps;
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::{DeviceFleet, HeterogeneityLevel};
use fedlps_nn::model::{ModelArch, ModelKind};
use fedlps_sim::config::FlConfig;
use fedlps_sim::env::FlEnv;
use fedlps_sim::runner::Simulator;
use fedlps_tensor::rng_from_seed;
use rand::Rng;
use std::sync::Arc;
use std::time::Duration;

const FLEET: usize = 64;
const SHARDS: usize = 4;
/// Registered population of the O(active) axis.
const POPULATION: usize = 1_000_000;
/// Staged cohort size of the aggregation axis.
const AGG_COHORT: usize = 4096;
/// Parameter count of the aggregation axis (coordinates are what shard).
const AGG_PARAMS: usize = 16 * 1024;

/// A 4096-client staged cohort over a 16k-parameter model: packed residuals
/// on one shared gather map (every 4th coordinate — a ratio-0.25 compiled
/// submodel's upload), the worst case for the merge walk's scatter cursor.
fn staged_cohort() -> (Vec<f32>, Vec<StagedUpdate>) {
    let mut rng = rng_from_seed(0xA66);
    let global: Vec<f32> = (0..AGG_PARAMS)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let coords: Arc<Vec<u32>> = Arc::new((0..AGG_PARAMS as u32).step_by(4).collect());
    let staged = (0..AGG_COHORT)
        .map(|_| StagedUpdate {
            weight: rng.gen_range(1..64) as f64,
            residual: Residual::Packed {
                coords: Arc::clone(&coords),
                values: coords.iter().map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
                len: AGG_PARAMS,
            },
        })
        .collect();
    (global, staged)
}

/// One million registered clients, 64 data shards tiled over them, a
/// 16-client cohort over 4 rounds (≤ 64 distinct participants). Evaluation is
/// off (`eval_every: 0`): a whole-federation sweep is the one intrinsically
/// `O(population)` operation, so population-scale runs disable it.
fn population_sim() -> Simulator {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    let data = scenario.build();
    let fleet = DeviceFleet::lazy(POPULATION, HeterogeneityLevel::High, 7);
    let arch: Arc<dyn ModelArch> = ModelKind::for_dataset(scenario.kind)
        .build(data.input, data.num_classes)
        .into();
    let config = FlConfig {
        rounds: 4,
        clients_per_round: 16,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 0,
        ..FlConfig::default()
    };
    Simulator::new(FlEnv::new_tiled(data, fleet, arch, config))
}

fn fleet_config(parallelism: usize) -> FlConfig {
    FlConfig {
        rounds: 5,
        clients_per_round: 16,
        local_iterations: 3,
        batch_size: 16,
        // Keep periodic evaluation out of the measurement: it is already
        // parallel, while this bench isolates the client-training path.
        eval_every: 5,
        ..FlConfig::default()
    }
    .with_parallelism(parallelism)
}

fn fleet_sim(parallelism: usize) -> Simulator {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    Simulator::new(FlEnv::from_scenario(
        &scenario,
        HeterogeneityLevel::High,
        fleet_config(parallelism),
    ))
}

fn bench_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));

    let serial = fleet_sim(1);
    group.bench_function("fedlps_64c_serial", |b| {
        b.iter(|| {
            let mut algo = FedLps::for_env(serial.env());
            serial.run(&mut algo).total_flops
        })
    });

    let sharded = fleet_sim(SHARDS);
    group.bench_function("fedlps_64c_sharded_4", |b| {
        b.iter(|| {
            let mut algo = FedLps::for_env(sharded.env());
            sharded.run(&mut algo).total_flops
        })
    });

    // Packed vs masked execution on a sparse fleet: a fixed learnable-pattern
    // ratio (the FLST ablation) keeps every client at the same sparsity, so
    // the pair isolates the execution path. Training dominates this config
    // (one evaluation pass, six local iterations).
    let sparse_config = |packed: bool| {
        FlConfig {
            rounds: 4,
            clients_per_round: 16,
            local_iterations: 6,
            batch_size: 16,
            eval_every: 4,
            ..FlConfig::default()
        }
        .with_packed_execution(packed)
    };
    let sparse_sim = |packed: bool| {
        let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
        Simulator::new(FlEnv::from_scenario(
            &scenario,
            HeterogeneityLevel::High,
            sparse_config(packed),
        ))
    };
    let packed_sim = sparse_sim(true);
    group.bench_function("fedlps_64c_packed_r025", |b| {
        b.iter(|| {
            let mut algo = FedLps::new(FedLpsConfig::flst(0.25));
            packed_sim.run(&mut algo).total_flops
        })
    });
    let masked_sim = sparse_sim(false);
    group.bench_function("fedlps_64c_masked_r025", |b| {
        b.iter(|| {
            let mut algo = FedLps::new(FedLpsConfig::flst(0.25));
            masked_sim.run(&mut algo).total_flops
        })
    });

    // Population axis: the registered population is a free variable, so a
    // round over 1M clients should cost what a round over the 64-client
    // fleet costs (modulo the cohort draw, which is O(cohort log cohort)).
    let million = population_sim();
    group.bench_function("fedlps_1m_registered_64_active", |b| {
        b.iter(|| {
            let mut algo = FedLps::for_env(million.env());
            million.run(&mut algo).total_flops
        })
    });

    // Aggregation axis: the serial Eq. (13) walk vs the coordinate-sharded
    // merge tree over the same 4096-client staged cohort.
    let (agg_global, agg_staged) = staged_cohort();
    group.bench_function("aggregate_4096c_serial", |b| {
        b.iter(|| {
            let mut g = agg_global.clone();
            aggregate_residuals_tree(&mut g, &agg_staged, 1);
            g[0]
        })
    });
    group.bench_function("aggregate_4096c_tree_4", |b| {
        b.iter(|| {
            let mut g = agg_global.clone();
            aggregate_residuals_tree(&mut g, &agg_staged, SHARDS);
            g[0]
        })
    });

    group.finish();

    // The merge tree's bit-identity and its ≥ 1.3× floor, measured outside
    // criterion so both also run in `--test` smoke mode (best of three per
    // side keeps CI-runner noise out of the ratio).
    let mut serial_out = agg_global.clone();
    aggregate_residuals_tree(&mut serial_out, &agg_staged, 1);
    let mut tree_out = agg_global.clone();
    aggregate_residuals_tree(&mut tree_out, &agg_staged, SHARDS);
    assert!(
        serial_out
            .iter()
            .zip(tree_out.iter())
            .all(|(s, t)| s.to_bits() == t.to_bits()),
        "merge tree diverged from the serial walk"
    );
    let agg_time = |shards: usize| {
        (0..3)
            .map(|_| {
                #[allow(clippy::disallowed_methods)]
                // fedlps-lint: allow(D2, wall-clock speedup measurement is this bench's entire job; the ratio is asserted and never fed back into simulation state)
                let start = std::time::Instant::now();
                let mut g = agg_global.clone();
                aggregate_residuals_tree(&mut g, &agg_staged, shards);
                start.elapsed()
            })
            .min()
            .expect("three runs")
    };
    let agg_serial = agg_time(1);
    let agg_tree = agg_time(SHARDS);
    let tree_speedup = agg_serial.as_secs_f64() / agg_tree.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "round_throughput/merge_tree_speedup: {AGG_COHORT}-client cohort, {AGG_PARAMS} params \
         -> serial {agg_serial:?} | tree({SHARDS}) {agg_tree:?} | {tree_speedup:.2}x \
         ({cores} core(s))"
    );
    if cores >= SHARDS {
        // The scale floor only binds where the workers physically exist.
        assert!(
            tree_speedup >= 1.3,
            "merge-tree aggregation regressed below the 1.3x floor at {SHARDS} shards \
             on {cores} cores: {tree_speedup:.2}x"
        );
    } else {
        // Fewer cores than shards: no speedup to demand, but the tree's
        // sharding overhead (plan, spawn, combine) must stay bounded.
        assert!(
            tree_speedup >= 0.7,
            "merge-tree sharding overhead exploded on {cores} core(s): {tree_speedup:.2}x"
        );
    }

    // The O(active) memory contract, asserted by counting materialized
    // entries — deterministic on any runner, unlike wall-clock. Four rounds
    // of 16 clients touch at most 64 distinct participants; every per-client
    // store must be bounded by that, six orders of magnitude under the
    // registered population.
    let sim = population_sim();
    let mut algo = FedLps::for_env(sim.env());
    let result = sim.run(&mut algo);
    let active_bound = sim.env().config.rounds * sim.env().config.clients_per_round;
    assert_eq!(sim.env().num_clients(), POPULATION);
    assert_eq!(result.rounds.len(), sim.env().config.rounds);
    let fleet_entries = sim.env().fleet.materialized_profiles();
    let arms = algo.materialized_arms();
    let states = algo.materialized_clients();
    let masks = algo.mask_cache().map_or(0, |c| c.len());
    println!(
        "round_throughput/population_scale: {POPULATION} registered -> materialized \
         {fleet_entries} fleet profiles | {arms} bandit arms | {states} client states | \
         {masks} cached masks (bound {active_bound})"
    );
    for (name, count) in [
        ("fleet profiles", fleet_entries),
        ("bandit arms", arms),
        ("client states", states),
        ("mask-cache entries", masks),
    ] {
        assert!(
            count <= active_bound,
            "{name} materialized {count} entries for a {active_bound}-participant run: \
             the population leaked into per-client state"
        );
        assert!(count > 0, "{name} should materialize for the participants");
    }

    // The packed ≥ 1.3× floor, measured outside criterion so the assertion
    // also runs in `--test` smoke mode: best of three runs per side, which
    // keeps CI-runner noise out of the ratio.
    let time_ratio = |ratio: f64| {
        let measure = |packed: bool| {
            let sim = sparse_sim(packed);
            (0..3)
                .map(|_| {
                    #[allow(clippy::disallowed_methods)]
                    // fedlps-lint: allow(D2, wall-clock speedup measurement is this bench's entire job; the ratio is asserted and never fed back into simulation state)
                    let start = std::time::Instant::now();
                    let mut algo = FedLps::new(FedLpsConfig::flst(ratio));
                    let _ = sim.run(&mut algo);
                    start.elapsed()
                })
                .min()
                .expect("three runs")
        };
        let masked = measure(false);
        let packed = measure(true);
        masked.as_secs_f64() / packed.as_secs_f64()
    };
    let speedup_025 = time_ratio(0.25);
    let speedup_05 = time_ratio(0.5);
    println!(
        "round_throughput/packed_vs_masked_speedup: ratio 0.25 -> {speedup_025:.2}x | \
         ratio 0.5 -> {speedup_05:.2}x"
    );
    // The size-bucketed scratch pool removed the buffer-churn cost that used
    // to dominate masked-dense training, and the zero-skipping dense kernels
    // elide most dropped-unit flops at aggressive sparsity, so at ratio 0.25
    // the two paths are wall-clock peers: the round is dominated by the
    // full-length regulariser/indicator/SGD passes both paths share, and
    // packed's remaining win there is memory, not time. The floors assert
    // packed never becomes a pessimisation at 0.25 and keeps a real
    // wall-clock win at the milder 0.5 sparsity, where the dense path can
    // skip less.
    assert!(
        speedup_025 >= 0.85,
        "packed execution became a pessimisation at ratio 0.25: {speedup_025:.2}x"
    );
    assert!(
        speedup_05 >= 1.1,
        "packed execution lost its wall-clock win at ratio 0.5: {speedup_05:.2}x"
    );

    // Mask-cache warm hit rates (rounds ≥ 3), printed alongside the timings
    // so the perf trajectory records both dimensions of the optimisation.
    // A longer horizon than the timed runs, so the cache actually warms up.
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(FLEET);
    let sim = Simulator::new(FlEnv::from_scenario(
        &scenario,
        HeterogeneityLevel::High,
        fleet_config(SHARDS).with_rounds(20),
    ));
    let mut pucbv = FedLps::for_env(sim.env());
    let pucbv_rate = sim.run(&mut pucbv).mask_cache_hit_rate_from(3);
    // Identical federation-sized bandit configuration with only the
    // quantization switch flipped, so the asserted lift isolates the
    // arm-space effect from the exploration schedule.
    let mut continuous = FedLps::new(
        FedLpsConfig::for_federation(
            sim.env().config.rounds,
            sim.env().num_clients(),
            sim.env().config.clients_per_round,
        )
        .with_quantize_arm_space(false),
    );
    let continuous_rate = sim.run(&mut continuous).mask_cache_hit_rate_from(3);
    let mut rcr = FedLps::new(FedLpsConfig::rcr());
    let rcr_rate = sim.run(&mut rcr).mask_cache_hit_rate_from(3);
    println!(
        "round_throughput/mask_cache_hit_rate_after_round_3: rcr {:.1}% | p-ucbv quantized \
         {:.1}% | p-ucbv continuous {:.1}%",
        rcr_rate * 100.0,
        pucbv_rate * 100.0,
        continuous_rate * 100.0
    );
    assert!(
        rcr_rate > 0.8,
        "stable-ratio mask-cache hit rate regressed below 80%: {rcr_rate}"
    );
    // Arm-space quantization at the model's shape resolution: P-UCBV proper
    // sat near ~30% while sampling ratios continuously; collapsing
    // equal-shape ratios to one arm lifts its warm hit rate toward the
    // stable-policy level (what remains is genuine cross-partition
    // exploration, which fades with the horizon).
    assert!(
        pucbv_rate > continuous_rate,
        "quantized arms must out-hit continuous sampling ({pucbv_rate} vs {continuous_rate})"
    );
    assert!(
        pucbv_rate > 0.4,
        "quantized P-UCBV warm hit rate regressed below 40%: {pucbv_rate}"
    );
}

criterion_group!(benches, bench_round_throughput);
criterion_main!(benches);
