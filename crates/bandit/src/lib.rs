//! Online sparse-ratio decision making.
//!
//! The paper casts the per-client choice of sparse ratio as a multi-armed
//! bandit over the continuous arm space `[0, 1)` and solves it with
//! **P-UCBV** (Prompt Upper Confidence Bound Variance, Algorithm 2): the arm
//! space is recursively partitioned at the ratios actually tried, partitions
//! whose ratio sharply hurt accuracy are promptly eliminated, and the next
//! partition is chosen by a variance-aware UCB score fed by the reward
//! `G(s) = (U(a^r) − U(a^{r−1})) / T^r` (Eq. 15-17).
//!
//! The crate also provides the baseline ratio policies the paper compares
//! against: fixed ratios, the rigid Resource-Controlled Ratio rule (RCR, used
//! by HeteroFL / Fjord / FedRolex) and the discrete UCB used by FedMP.

pub mod partition;
pub mod pucbv;
pub mod ratio_policy;
pub mod reward;
pub mod ucb;

pub use pucbv::{PUcbv, PUcbvConfig};
pub use ratio_policy::{ClientInit, RatioController, RatioFeedback, RatioPolicy};
pub use reward::{reward, utility};
