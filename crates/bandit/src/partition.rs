//! The partitioned arm space used by P-UCBV.
//!
//! P-UCBV handles the continuous sparse-ratio space by maintaining a set of
//! disjoint intervals (initially a uniform grid over the feasible range).
//! Whenever a ratio is tried, its interval is split at that ratio, so the
//! partition refines itself around the ratios the bandit actually explores —
//! this is the decision-tree-based arm transformation borrowed from FedMP \[28\].

use serde::{Deserialize, Serialize};

/// One interval of the arm space together with its reward history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Inclusive lower bound of the interval.
    pub lo: f64,
    /// Exclusive upper bound of the interval.
    pub hi: f64,
    /// Rewards observed for ratios sampled from this interval.
    pub rewards: Vec<f64>,
}

impl Partition {
    /// Creates an empty partition over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "partition must have positive width ({lo}, {hi})");
        Self {
            lo,
            hi,
            rewards: Vec::new(),
        }
    }

    /// Whether the ratio falls inside the interval.
    pub fn contains(&self, ratio: f64) -> bool {
        ratio >= self.lo && ratio < self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Number of times this partition has been pulled (`h_i`).
    pub fn pulls(&self) -> usize {
        self.rewards.len()
    }

    /// Mean reward `ḡ_i` (0 when never pulled).
    pub fn mean_reward(&self) -> f64 {
        fedlps_tensor::stats::mean(&self.rewards)
    }

    /// Reward variance `v̄_i` (0 when never pulled).
    pub fn reward_variance(&self) -> f64 {
        fedlps_tensor::stats::variance(&self.rewards)
    }

    /// Records a reward observation.
    pub fn record(&mut self, reward: f64) {
        self.rewards.push(reward);
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// A set of disjoint partitions covering `[floor, ceil)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSet {
    partitions: Vec<Partition>,
    floor: f64,
    ceil: f64,
    /// Minimum width below which splits are not performed (keeps the set from
    /// degenerating into zero-width intervals).
    min_width: f64,
}

impl PartitionSet {
    /// Creates `initial_count` equal-width partitions over `[floor, ceil)`.
    pub fn uniform(floor: f64, ceil: f64, initial_count: usize, min_width: f64) -> Self {
        assert!(ceil > floor && initial_count > 0);
        let step = (ceil - floor) / initial_count as f64;
        let partitions = (0..initial_count)
            .map(|i| {
                let lo = floor + i as f64 * step;
                let hi = if i + 1 == initial_count {
                    ceil
                } else {
                    floor + (i + 1) as f64 * step
                };
                Partition::new(lo, hi)
            })
            .collect();
        Self {
            partitions,
            floor,
            ceil,
            min_width,
        }
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Mutable access to a partition.
    pub fn partition_mut(&mut self, idx: usize) -> &mut Partition {
        &mut self.partitions[idx]
    }

    /// Number of partitions (`I_r`).
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the set is empty (only possible after aggressive elimination).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// The feasible range covered at construction time.
    pub fn range(&self) -> (f64, f64) {
        (self.floor, self.ceil)
    }

    /// Index of the partition containing `ratio`, if any.
    pub fn find(&self, ratio: f64) -> Option<usize> {
        self.partitions.iter().position(|p| p.contains(ratio))
    }

    /// Splits the partition containing `ratio` at that ratio.
    ///
    /// Returns `(lower_index, upper_index)`: the indices of the partition
    /// below the split point (`S_u'`) and at-or-above it (`S_u''`). When the
    /// split would create an interval narrower than `min_width` (or the ratio
    /// is outside every partition) no split happens and both indices refer to
    /// the containing partition.
    pub fn split_at(&mut self, ratio: f64) -> Option<(usize, usize)> {
        let idx = self.find(ratio)?;
        let (lo, hi) = (self.partitions[idx].lo, self.partitions[idx].hi);
        if ratio - lo < self.min_width || hi - ratio < self.min_width {
            return Some((idx, idx));
        }
        // Existing reward history stays with the upper (containing) part; the
        // new lower part starts fresh. Rewards are re-recorded by the caller
        // per Algorithm 2 line 8.
        let lower = Partition::new(lo, ratio);
        self.partitions[idx].lo = ratio;
        self.partitions.insert(idx, lower);
        Some((idx, idx + 1))
    }

    /// Removes the partition at `idx` (arm elimination). Refuses to remove the
    /// last remaining partition, which would leave the bandit with no arms.
    pub fn eliminate(&mut self, idx: usize) -> bool {
        if self.partitions.len() <= 1 {
            return false;
        }
        self.partitions.remove(idx);
        true
    }

    /// Checks the structural invariant: partitions are sorted, disjoint and
    /// non-overlapping. Used by tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        self.partitions
            .windows(2)
            .all(|w| w[0].hi <= w[1].lo + 1e-12 && w[0].lo < w[0].hi)
            && self.partitions.iter().all(|p| p.lo < p.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partitions_cover_range() {
        let set = PartitionSet::uniform(0.0625, 1.0, 4, 0.01);
        assert_eq!(set.len(), 4);
        assert!(set.is_well_formed());
        assert_eq!(set.partitions()[0].lo, 0.0625);
        assert_eq!(set.partitions()[3].hi, 1.0);
        // Every ratio in range belongs to exactly one partition.
        for i in 0..100 {
            let r = 0.0625 + (1.0 - 0.0625) * (i as f64 / 100.0);
            assert!(set.find(r).is_some(), "ratio {r}");
        }
        assert!(set.find(1.0).is_none());
    }

    #[test]
    fn split_creates_adjacent_intervals() {
        let mut set = PartitionSet::uniform(0.0, 1.0, 2, 0.01);
        let (lower, upper) = set.split_at(0.3).unwrap();
        assert!(set.is_well_formed());
        assert_eq!(set.len(), 3);
        assert_eq!(set.partitions()[lower].hi, 0.3);
        assert_eq!(set.partitions()[upper].lo, 0.3);
    }

    #[test]
    fn split_too_close_to_edge_is_a_noop() {
        let mut set = PartitionSet::uniform(0.0, 1.0, 2, 0.05);
        let (a, b) = set.split_at(0.001).unwrap();
        assert_eq!(a, b);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn eliminate_keeps_at_least_one_partition() {
        let mut set = PartitionSet::uniform(0.0, 1.0, 2, 0.01);
        assert!(set.eliminate(0));
        assert!(!set.eliminate(0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn reward_statistics() {
        let mut p = Partition::new(0.2, 0.5);
        assert_eq!(p.mean_reward(), 0.0);
        p.record(1.0);
        p.record(3.0);
        assert_eq!(p.pulls(), 2);
        assert!((p.mean_reward() - 2.0).abs() < 1e-12);
        assert!((p.reward_variance() - 1.0).abs() < 1e-12);
        assert!((p.midpoint() - 0.35).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_width_partition_rejected() {
        Partition::new(0.5, 0.5);
    }
}
