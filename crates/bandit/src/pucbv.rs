//! P-UCBV — Prompt Upper Confidence Bound Variance (Algorithm 2).
//!
//! One P-UCBV agent runs per client on the server. Each round the agent
//! receives the client's local cost `T_k^r` and average training accuracy
//! `a_k^r`, splits the partition that contained the ratio it last proposed,
//! eliminates the lower sub-partition if the accuracy dropped by more than the
//! threshold `Δ` (accuracy-dominated prompt arm elimination), records the Eq.
//! (15) reward, recomputes the variance-aware UCB score (Eq. 17) of every
//! partition and samples the next ratio from the best-scoring partition.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::partition::PartitionSet;
use crate::reward::reward;

/// Hyper-parameters of a P-UCBV agent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PUcbvConfig {
    /// Number of initial partitions `I_0` of the feasible ratio space.
    pub initial_partitions: usize,
    /// Exploration constant `ρ` of Eq. (17).
    pub rho: f64,
    /// Differential accuracy threshold `Δ`: if `a^r − a^{r−1} < Δ` the lower
    /// sub-partition is eliminated.
    pub accuracy_threshold: f64,
    /// Total number of communication rounds `R` (enters `ξ = R / (K·ϵ)`).
    pub total_rounds: usize,
    /// Expected number of participations per client `K·ϵ` ... i.e. the
    /// denominator of `ξ`; callers pass `num_clients * selection_fraction`.
    pub expected_selections: f64,
    /// Smallest ratio the agent will ever propose (avoids degenerate empty
    /// submodels; the paper's arm space is `[0, 1)`).
    pub ratio_floor: f64,
    /// Minimum partition width below which splits stop.
    pub min_partition_width: f64,
}

impl Default for PUcbvConfig {
    fn default() -> Self {
        Self {
            initial_partitions: 4,
            rho: 1.0,
            accuracy_threshold: -0.02,
            total_rounds: 100,
            expected_selections: 10.0,
            ratio_floor: 0.05,
            min_partition_width: 0.02,
        }
    }
}

/// The feedback an agent receives after its client finishes a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PUcbvFeedback {
    /// The sparse ratio that was actually used in the round.
    pub ratio: f64,
    /// Local cost `T_k^r` in seconds.
    pub local_cost: f64,
    /// Average local training accuracy `a_k^r` in `[0, 1]`.
    pub accuracy: f64,
}

/// One client's P-UCBV agent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PUcbv {
    config: PUcbvConfig,
    partitions: PartitionSet,
    /// `ε_r`, halved every update (Algorithm 2 line 6).
    epsilon: f64,
    /// `ξ = R / (K · ϵ)`.
    xi: f64,
    /// Accuracy of the previous round (`a^{r−1}`), seeded with the initial
    /// global-model accuracy `a^{−1}`.
    prev_accuracy: f64,
    /// Number of updates performed so far.
    updates: usize,
    /// Sparsifiable units per layer of the model the ratios drive. When set,
    /// the agent's arm space is quantized at the model's shape resolution:
    /// a layer-wise ratio only acts through the retained-unit counts
    /// `clamp(⌈s·J_l⌉, 1, J_l)` (see `fedlps_sparse::ratio`), so every ratio
    /// in one count-equivalence class is the *same* arm and the agent
    /// proposes the class's canonical representative instead of a fresh
    /// continuous sample. Environment semantics are unchanged — the masks,
    /// FLOPs and costs of equivalent ratios are identical — but repeat
    /// proposals from a stable partition now hit the cross-round mask cache.
    shape_units: Option<Vec<usize>>,
}

impl PUcbv {
    /// Creates an agent whose feasible ratio space is `[ratio_floor, max_ratio)`
    /// — `max_ratio` is the client's capability cap `z_k`.
    pub fn new(config: PUcbvConfig, max_ratio: f64, initial_accuracy: f64) -> Self {
        let ceil = max_ratio.clamp(config.ratio_floor + config.min_partition_width, 1.0);
        let partitions = PartitionSet::uniform(
            config.ratio_floor,
            ceil,
            config.initial_partitions,
            config.min_partition_width,
        );
        let xi = config.total_rounds as f64 / config.expected_selections.max(1e-9);
        Self {
            config,
            partitions,
            epsilon: 1.0,
            xi,
            prev_accuracy: initial_accuracy,
            updates: 0,
            shape_units: None,
        }
    }

    /// Builder-style arm-space quantization at the model's shape resolution
    /// (`units_per_layer` = sparsifiable units of each layer).
    pub fn with_shape_resolution(mut self, units_per_layer: Vec<usize>) -> Self {
        self.set_shape_resolution(units_per_layer);
        self
    }

    /// Enables arm-space quantization on an existing agent.
    pub fn set_shape_resolution(&mut self, units_per_layer: Vec<usize>) {
        self.shape_units = Some(units_per_layer);
    }

    /// Whether the arm space is quantized.
    pub fn is_quantized(&self) -> bool {
        self.shape_units.is_some()
    }

    /// The canonical representative of `ratio`'s shape-equivalence class: the
    /// midpoint of the interval of ratios retaining identical per-layer unit
    /// counts (`clamp(⌈s·J_l⌉, 1, J_l)` — the same rounding
    /// `fedlps_sparse::ratio::retained_units` applies), clamped into the
    /// agent's feasible range. Identity when quantization is disabled.
    pub fn quantize(&self, ratio: f64) -> f64 {
        let Some(units) = &self.shape_units else {
            return ratio;
        };
        let (range_lo, range_hi) = self.partitions.range();
        let r = ratio.clamp(range_lo, range_hi);
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        for &j in units {
            if j == 0 {
                continue;
            }
            let c = ((j as f64 * r).ceil()).clamp(1.0, j as f64);
            lo = lo.max((c - 1.0) / j as f64);
            hi = hi.min(c / j as f64);
        }
        (0.5 * (lo + hi)).clamp(range_lo, (range_hi - 1e-9).max(range_lo))
    }

    /// Proposes a ratio from partition `idx`: a uniform continuous sample in
    /// the unquantized arm space, the canonical arm of the shape class
    /// containing the partition's midpoint when quantized (deterministic, so
    /// a stable best partition keeps proposing the *same* arm).
    ///
    /// Once partitions shrink below a class's width, the canonical arm can
    /// lie in a partition *adjacent* to the scoring winner. That is fine:
    /// `update` always credits (and splits at) the partition *containing*
    /// the ratio that was actually used — the same containment rule the
    /// continuous path already lives with, since capability capping also
    /// moves a proposal out of its scoring partition. The winner designates
    /// an arm; whoever contains the arm takes the pull. Crucially this
    /// leaves the sub-class partition structure untouched while proposals
    /// repeat, which is precisely what stops the shape churn that was
    /// defeating the cross-round mask cache.
    fn propose_from(&self, idx: usize, rng: &mut impl Rng) -> f64 {
        let p = &self.partitions.partitions()[idx];
        if self.shape_units.is_some() {
            self.quantize(p.lo + 0.5 * p.width())
        } else {
            p.lo + rng.gen::<f64>() * p.width()
        }
    }

    /// Agent hyper-parameters.
    pub fn config(&self) -> &PUcbvConfig {
        &self.config
    }

    /// Current number of arms (partitions).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The partition set (exposed for tests / analysis).
    pub fn partitions(&self) -> &PartitionSet {
        &self.partitions
    }

    /// Samples the initial sparse ratio uniformly from a random partition
    /// (Algorithm 2 initialisation).
    pub fn initial_ratio(&self, rng: &mut impl Rng) -> f64 {
        let idx = rng.gen_range(0..self.partitions.len());
        self.propose_from(idx, rng)
    }

    /// UCBV score of partition `i` (Eq. 17) for the upcoming round.
    fn ucbv_score(&self, idx: usize, epsilon_next: f64) -> f64 {
        let p = &self.partitions.partitions()[idx];
        let pulls = p.pulls() as f64;
        let i_next = self.partitions.len().max(1) as f64;
        let psi = self.xi / (i_next * i_next);
        // The log argument shrinks as ε halves; clamp at e so the bonus stays
        // real and non-negative (the theoretical analysis assumes large R).
        let log_term = (self.xi * psi * epsilon_next).max(std::f64::consts::E).ln();
        let bonus = (self.config.rho * (p.reward_variance() + 2.0) * log_term
            / (4.0 * (pulls + 1.0)))
            .sqrt();
        p.mean_reward() + bonus
    }

    /// Algorithm 2: consumes the round's feedback and returns the sparse ratio
    /// to use in the next round.
    pub fn update(&mut self, feedback: PUcbvFeedback, rng: &mut impl Rng) -> f64 {
        let PUcbvFeedback {
            ratio,
            local_cost,
            accuracy,
        } = feedback;

        // Lines 1-2: split the partition where the used ratio resides.
        let split = self
            .partitions
            .split_at(ratio.clamp(self.partitions.range().0, self.partitions.range().1 - 1e-9));

        // Lines 3-5: accuracy-dominated prompt arm elimination of the lower part.
        let mut upper_idx = split.map(|(_, u)| u);
        if let Some((lower, upper)) = split {
            if lower != upper
                && accuracy - self.prev_accuracy < self.config.accuracy_threshold
                && self.partitions.eliminate(lower)
            {
                upper_idx = Some(upper - 1);
            }
        }

        // Lines 6-7: ε ← ε/2 (ψ is recomputed inside the score function).
        self.epsilon /= 2.0;

        // Line 8: record the reward in the surviving sub-partitions.
        let g = reward(accuracy, self.prev_accuracy, local_cost);
        if let Some((lower, upper)) = split {
            let exists_lower = lower != upper && self.partitions.len() > upper;
            // After a possible elimination the indices may have shifted; use the
            // partition that still contains (or borders) the ratio.
            if let Some(idx) = upper_idx.filter(|&i| i < self.partitions.len()) {
                self.partitions.partition_mut(idx).record(g);
            }
            if exists_lower {
                if let Some(idx) = self
                    .partitions
                    .find((ratio - 1e-6).max(self.partitions.range().0))
                {
                    if idx != upper_idx.unwrap_or(usize::MAX) {
                        self.partitions.partition_mut(idx).record(g);
                    }
                }
            }
        } else if let Some(idx) = self.partitions.find(ratio) {
            self.partitions.partition_mut(idx).record(g);
        }

        self.prev_accuracy = accuracy;
        self.updates += 1;

        // Lines 9-11: pick the partition with the best UCBV score and sample a
        // ratio from it.
        let epsilon_next = self.epsilon;
        let mut best_idx = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.partitions.len() {
            let score = self.ucbv_score(i, epsilon_next);
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        self.propose_from(best_idx, rng)
    }

    /// Number of feedback updates consumed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_tensor::rng_from_seed;

    fn agent() -> PUcbv {
        PUcbv::new(PUcbvConfig::default(), 1.0, 0.1)
    }

    #[test]
    fn initial_ratio_is_in_range() {
        let a = agent();
        let mut rng = rng_from_seed(1);
        for _ in 0..50 {
            let r = a.initial_ratio(&mut rng);
            assert!((0.05..1.0).contains(&r), "{r}");
        }
    }

    #[test]
    fn update_returns_feasible_ratios_and_refines_partitions() {
        let mut a = agent();
        let mut rng = rng_from_seed(2);
        let mut ratio = a.initial_ratio(&mut rng);
        let before = a.num_partitions();
        for round in 0..30 {
            let acc = 0.1 + 0.02 * round as f64;
            ratio = a.update(
                PUcbvFeedback {
                    ratio,
                    local_cost: 1.0 + ratio,
                    accuracy: acc,
                },
                &mut rng,
            );
            assert!((0.05..1.0).contains(&ratio), "round {round}: {ratio}");
            assert!(a.partitions().is_well_formed());
        }
        assert!(a.num_partitions() >= before);
        assert_eq!(a.updates(), 30);
    }

    #[test]
    fn capability_cap_restricts_the_arm_space() {
        let a = PUcbv::new(PUcbvConfig::default(), 0.25, 0.1);
        let mut rng = rng_from_seed(3);
        for _ in 0..50 {
            assert!(a.initial_ratio(&mut rng) <= 0.25);
        }
    }

    #[test]
    fn accuracy_drop_triggers_elimination() {
        let cfg = PUcbvConfig {
            accuracy_threshold: 0.0,
            ..PUcbvConfig::default()
        };
        let mut a = PUcbv::new(cfg, 1.0, 0.5);
        let mut rng = rng_from_seed(4);
        let before = a.num_partitions();
        // Feedback with a big accuracy drop: the split's lower half must go.
        a.update(
            PUcbvFeedback {
                ratio: 0.5,
                local_cost: 1.0,
                accuracy: 0.2,
            },
            &mut rng,
        );
        // A split adds one partition and the elimination removes one, so the
        // count stays the same; without elimination it would have grown.
        assert_eq!(a.num_partitions(), before);
    }

    #[test]
    fn improving_accuracy_keeps_both_halves() {
        let cfg = PUcbvConfig {
            accuracy_threshold: -0.5,
            ..PUcbvConfig::default()
        };
        let mut a = PUcbv::new(cfg, 1.0, 0.1);
        let mut rng = rng_from_seed(5);
        let before = a.num_partitions();
        a.update(
            PUcbvFeedback {
                ratio: 0.5,
                local_cost: 1.0,
                accuracy: 0.4,
            },
            &mut rng,
        );
        assert_eq!(a.num_partitions(), before + 1);
    }

    #[test]
    fn quantized_ratios_are_canonical_and_collapse_shape_classes() {
        let units = vec![10, 8];
        let a = agent().with_shape_resolution(units.clone());
        assert!(a.is_quantized());
        for r in [0.08, 0.13, 0.27, 0.44, 0.5, 0.61, 0.83, 0.95] {
            let q = a.quantize(r);
            // Canonical representatives are fixed points.
            assert_eq!(a.quantize(q), q, "idempotent at {r}");
            // Quantization never changes the submodel the ratio extracts.
            assert_eq!(
                fedlps_sparse::ratio::retained_per_layer(&units, q),
                fedlps_sparse::ratio::retained_per_layer(&units, r),
                "shape preserved at {r}"
            );
        }
        // Ratios retaining identical per-layer counts are one arm.
        assert_eq!(a.quantize(0.41), a.quantize(0.48));
        assert_ne!(a.quantize(0.41), a.quantize(0.55));
    }

    #[test]
    fn quantized_agent_proposes_few_distinct_arms() {
        // The mask cache keys a client's pattern by the proposal's shape
        // class, so what lifts the warm hit rate is *consecutive* proposals
        // staying in one class. Compare that churn over a long trajectory
        // with and without quantization: the quantized agent proposes the
        // canonical arm of its (stabilising) best partition instead of a
        // fresh continuous sample, so its shape must change strictly less
        // often.
        let units = vec![10usize, 8];
        let run = |quantize: bool| {
            let mut a = agent();
            if quantize {
                a.set_shape_resolution(units.clone());
            }
            let mut rng = rng_from_seed(7);
            let mut ratio = a.initial_ratio(&mut rng);
            let mut proposals = vec![ratio];
            for round in 0..60 {
                ratio = a.update(
                    PUcbvFeedback {
                        ratio,
                        local_cost: 1.0 + ratio,
                        accuracy: 0.1 + 0.01 * round as f64,
                    },
                    &mut rng,
                );
                proposals.push(ratio);
            }
            let classes: Vec<Vec<usize>> = proposals
                .iter()
                .map(|&r| fedlps_sparse::ratio::retained_per_layer(&units, r))
                .collect();
            classes.windows(2).filter(|w| w[0] != w[1]).count()
        };
        let continuous_churn = run(false);
        let quantized_churn = run(true);
        assert!(
            quantized_churn < continuous_churn,
            "quantization must reduce consecutive shape churn \
             ({quantized_churn} vs {continuous_churn} changes over 60 rounds)"
        );
    }

    #[test]
    fn quantized_proposals_stay_feasible_under_a_capability_cap() {
        let a = PUcbv::new(PUcbvConfig::default(), 0.25, 0.1).with_shape_resolution(vec![16, 4]);
        let mut rng = rng_from_seed(9);
        for _ in 0..50 {
            let r = a.initial_ratio(&mut rng);
            assert!(r <= 0.25 + 1e-9, "cap violated by {r}");
            assert!(r >= 0.05 - 1e-9);
        }
    }

    #[test]
    fn bandit_prefers_cheap_high_reward_ratios_over_time() {
        // Synthetic environment: accuracy gain is flat in the ratio, but cost
        // grows with the ratio, so low ratios earn strictly higher rewards.
        // After enough rounds the agent should propose mostly low ratios.
        let mut a = PUcbv::new(
            PUcbvConfig {
                accuracy_threshold: -1.0,
                ..PUcbvConfig::default()
            },
            1.0,
            0.0,
        );
        let mut rng = rng_from_seed(6);
        let mut ratio = a.initial_ratio(&mut rng);
        let mut acc = 0.0f64;
        let mut late_ratios = Vec::new();
        for round in 0..120 {
            acc = (acc + 0.01).min(0.9);
            let cost = 0.5 + 4.0 * ratio;
            ratio = a.update(
                PUcbvFeedback {
                    ratio,
                    local_cost: cost,
                    accuracy: acc,
                },
                &mut rng,
            );
            if round >= 80 {
                late_ratios.push(ratio);
            }
        }
        let mean_late: f64 = late_ratios.iter().sum::<f64>() / late_ratios.len() as f64;
        assert!(
            mean_late < 0.55,
            "late mean ratio {mean_late} should drift low"
        );
    }
}
