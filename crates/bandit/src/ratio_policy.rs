//! Ratio policies: how the server decides every client's sparse ratio.
//!
//! The paper contrasts FedLPS's adaptive P-UCBV decision with the rigid rules
//! used by prior work: fixed uniform ratios (FedSpa / CS), the
//! Resource-Controlled Ratio rule that sets `s_k = z_k` (HeteroFL / Fjord /
//! FedRolex, "RCR" in Table II) and FedMP's discrete UCB. The
//! [`RatioController`] wraps the per-client agents behind one interface so
//! both the FedLPS core and the baselines can share the plumbing.

use fedlps_tensor::{rng_from_seed, split_seed};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::pucbv::{PUcbv, PUcbvConfig, PUcbvFeedback};
use crate::ucb::DiscreteUcb;

/// The ratio-decision rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatioPolicy {
    /// Every client always uses the same ratio (capped by capability).
    Fixed(f64),
    /// Resource-Controlled Ratio: `s_k = z_k`, the rigid capability rule.
    ResourceControlled,
    /// FedLPS's P-UCBV bandit.
    PUcbv(PUcbvConfig),
    /// FedMP-style discrete UCB over a fixed ratio grid.
    DiscreteUcb { exploration: f64 },
    /// Dense training: ratio 1 for everyone regardless of capability (used by
    /// the conventional-FL baselines).
    Dense,
}

impl RatioPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            RatioPolicy::Fixed(r) => format!("fixed({r})"),
            RatioPolicy::ResourceControlled => "rcr".to_string(),
            RatioPolicy::PUcbv(_) => "p-ucbv".to_string(),
            RatioPolicy::DiscreteUcb { .. } => "ucb".to_string(),
            RatioPolicy::Dense => "dense".to_string(),
        }
    }
}

/// Per-round feedback forwarded to the learning policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioFeedback {
    /// The ratio that was actually used (after capability capping).
    pub ratio: f64,
    /// Local cost of the round in seconds.
    pub local_cost: f64,
    /// Average local training accuracy in `[0, 1]`.
    pub accuracy: f64,
}

#[derive(Debug)]
enum AgentState {
    Stateless,
    PUcbv(Box<PUcbv>),
    Ucb(DiscreteUcb),
}

/// Per-client ratio decision state for a whole federation.
#[derive(Debug)]
pub struct RatioController {
    policy: RatioPolicy,
    capabilities: Vec<f64>,
    agents: Vec<AgentState>,
    /// The next ratio each agent proposes (learning policies update this).
    proposals: Vec<f64>,
    rng: StdRng,
}

impl RatioController {
    /// Creates the controller for `capabilities.len()` clients.
    ///
    /// `initial_accuracy` seeds the bandits' `a^{−1}` baseline (the accuracy of
    /// the initial global model on local data, as Algorithm 2 prescribes).
    pub fn new(
        policy: RatioPolicy,
        capabilities: &[f64],
        initial_accuracy: &[f64],
        seed: u64,
    ) -> Self {
        assert_eq!(capabilities.len(), initial_accuracy.len());
        let mut rng = rng_from_seed(split_seed(seed, 0xBAD17));
        let mut agents = Vec::with_capacity(capabilities.len());
        let mut proposals = Vec::with_capacity(capabilities.len());
        for (k, &z) in capabilities.iter().enumerate() {
            match &policy {
                RatioPolicy::Fixed(r) => {
                    agents.push(AgentState::Stateless);
                    proposals.push(r.min(z));
                }
                RatioPolicy::ResourceControlled => {
                    agents.push(AgentState::Stateless);
                    proposals.push(z);
                }
                RatioPolicy::Dense => {
                    agents.push(AgentState::Stateless);
                    proposals.push(1.0);
                }
                RatioPolicy::PUcbv(cfg) => {
                    let agent = PUcbv::new(*cfg, z, initial_accuracy[k]);
                    let ratio = agent.initial_ratio(&mut rng);
                    agents.push(AgentState::PUcbv(Box::new(agent)));
                    proposals.push(ratio.min(z));
                }
                RatioPolicy::DiscreteUcb { exploration } => {
                    let ucb = DiscreteUcb::new(DiscreteUcb::default_grid(z), *exploration);
                    let arm = ucb.select(&mut rng);
                    let ratio = ucb.ratio_of(arm);
                    agents.push(AgentState::Ucb(ucb));
                    proposals.push(ratio.min(z));
                }
            }
        }
        Self {
            policy,
            capabilities: capabilities.to_vec(),
            agents,
            proposals,
            rng,
        }
    }

    /// The policy this controller implements.
    pub fn policy(&self) -> &RatioPolicy {
        &self.policy
    }

    /// Quantizes every P-UCBV agent's arm space at the model's shape
    /// resolution (`units_per_layer` = sparsifiable units per layer): ratios
    /// extracting equal per-layer retained-unit counts collapse to one arm,
    /// and current proposals snap to their canonical representatives. A
    /// no-op for the stateless and discrete policies, whose arm spaces are
    /// already coarse.
    pub fn with_shape_resolution(mut self, units_per_layer: &[usize]) -> Self {
        for (k, agent) in self.agents.iter_mut().enumerate() {
            if let AgentState::PUcbv(a) = agent {
                a.set_shape_resolution(units_per_layer.to_vec());
                self.proposals[k] = a.quantize(self.proposals[k]);
            }
        }
        self
    }

    /// The sparse ratio to use for `client` this round. Always capped at the
    /// client's capability (`s_k ≤ z_k`), which mirrors the client-side reset
    /// in the paper's "Client-side Update".
    pub fn ratio_for(&self, client: usize) -> f64 {
        self.proposals[client]
            .min(self.capabilities[client])
            .max(0.0)
    }

    /// Reports a finished round for `client`; learning policies use it to
    /// propose the next ratio (Algorithm 1 lines 9-15).
    pub fn report(&mut self, client: usize, feedback: RatioFeedback) {
        match &mut self.agents[client] {
            AgentState::Stateless => {}
            AgentState::PUcbv(agent) => {
                let next = agent.update(
                    PUcbvFeedback {
                        ratio: feedback.ratio,
                        local_cost: feedback.local_cost,
                        accuracy: feedback.accuracy,
                    },
                    &mut self.rng,
                );
                self.proposals[client] = next;
            }
            AgentState::Ucb(ucb) => {
                let arm = ucb.nearest_arm(feedback.ratio);
                ucb.record(
                    arm,
                    crate::reward::reward(feedback.accuracy, 0.0, feedback.local_cost),
                );
                let next_arm = ucb.select(&mut self.rng);
                self.proposals[client] = ucb.ratio_of(next_arm);
            }
        }
    }

    /// Current proposals for every client (used by analyses / examples).
    pub fn proposals(&self) -> Vec<f64> {
        (0..self.proposals.len())
            .map(|k| self.ratio_for(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> Vec<f64> {
        vec![1.0, 0.5, 0.25, 0.0625]
    }

    #[test]
    fn fixed_policy_caps_at_capability() {
        let ctrl = RatioController::new(RatioPolicy::Fixed(0.5), &caps(), &[0.0; 4], 1);
        assert_eq!(ctrl.ratio_for(0), 0.5);
        assert_eq!(ctrl.ratio_for(1), 0.5);
        assert_eq!(ctrl.ratio_for(2), 0.25);
        assert_eq!(ctrl.ratio_for(3), 0.0625);
    }

    #[test]
    fn rcr_policy_matches_capability() {
        let ctrl = RatioController::new(RatioPolicy::ResourceControlled, &caps(), &[0.0; 4], 1);
        for (k, &z) in caps().iter().enumerate() {
            assert_eq!(ctrl.ratio_for(k), z);
        }
    }

    #[test]
    fn dense_policy_ignores_capability_cap_only_via_explicit_one() {
        let ctrl = RatioController::new(RatioPolicy::Dense, &caps(), &[0.0; 4], 1);
        // Dense baselines train the full model even on weak devices (that is
        // exactly why they straggle), but the controller still reports the
        // capability-capped value used for submodel extraction — which for the
        // dense policy is the capability itself on weak clients.
        assert_eq!(ctrl.ratio_for(0), 1.0);
        assert_eq!(ctrl.ratio_for(3), 0.0625);
    }

    #[test]
    fn pucbv_policy_adapts_over_reports() {
        let mut ctrl = RatioController::new(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            &caps(),
            &[0.1; 4],
            7,
        );
        let first = ctrl.ratio_for(0);
        assert!(first > 0.0 && first <= 1.0);
        for round in 0..20 {
            let r = ctrl.ratio_for(0);
            ctrl.report(
                0,
                RatioFeedback {
                    ratio: r,
                    local_cost: 1.0 + r,
                    accuracy: 0.1 + 0.03 * round as f64,
                },
            );
            assert!(ctrl.ratio_for(0) <= 1.0 && ctrl.ratio_for(0) > 0.0);
        }
    }

    #[test]
    fn ucb_policy_stays_on_grid_and_under_cap() {
        let mut ctrl = RatioController::new(
            RatioPolicy::DiscreteUcb { exploration: 2.0 },
            &caps(),
            &[0.1; 4],
            9,
        );
        for _ in 0..10 {
            let r = ctrl.ratio_for(2);
            assert!(r <= 0.25 + 1e-9);
            ctrl.report(
                2,
                RatioFeedback {
                    ratio: r,
                    local_cost: 1.0,
                    accuracy: 0.2,
                },
            );
        }
    }

    #[test]
    fn shape_resolution_quantizes_pucbv_proposals_only() {
        let units = vec![10, 8];
        let mut ctrl = RatioController::new(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            &caps(),
            &[0.1; 4],
            7,
        )
        .with_shape_resolution(&units);
        for k in 0..4 {
            let r = ctrl.ratio_for(k);
            assert!(r <= caps()[k] + 1e-9);
            for _ in 0..5 {
                ctrl.report(
                    k,
                    RatioFeedback {
                        ratio: ctrl.ratio_for(k),
                        local_cost: 1.0,
                        accuracy: 0.3,
                    },
                );
            }
        }
        // Stateless rules are untouched by the builder: RCR still proposes
        // exactly the capability.
        let rcr = RatioController::new(RatioPolicy::ResourceControlled, &caps(), &[0.0; 4], 1)
            .with_shape_resolution(&units);
        for (k, &z) in caps().iter().enumerate() {
            assert_eq!(rcr.ratio_for(k), z);
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(RatioPolicy::ResourceControlled.name(), "rcr");
        assert_eq!(RatioPolicy::Dense.name(), "dense");
        assert!(RatioPolicy::Fixed(0.5).name().starts_with("fixed"));
    }
}
