//! Ratio policies: how the server decides every client's sparse ratio.
//!
//! The paper contrasts FedLPS's adaptive P-UCBV decision with the rigid rules
//! used by prior work: fixed uniform ratios (FedSpa / CS), the
//! Resource-Controlled Ratio rule that sets `s_k = z_k` (HeteroFL / Fjord /
//! FedRolex, "RCR" in Table II) and FedMP's discrete UCB. The
//! [`RatioController`] wraps the per-client agents behind one interface so
//! both the FedLPS core and the baselines can share the plumbing.

use std::collections::BTreeMap;
use std::sync::Mutex;

use fedlps_tensor::{rng_from_seed, split_seed};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::pucbv::{PUcbv, PUcbvConfig, PUcbvFeedback};
use crate::ucb::DiscreteUcb;

/// The ratio-decision rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RatioPolicy {
    /// Every client always uses the same ratio (capped by capability).
    Fixed(f64),
    /// Resource-Controlled Ratio: `s_k = z_k`, the rigid capability rule.
    ResourceControlled,
    /// FedLPS's P-UCBV bandit.
    PUcbv(PUcbvConfig),
    /// FedMP-style discrete UCB over a fixed ratio grid.
    DiscreteUcb { exploration: f64 },
    /// Dense training: ratio 1 for everyone regardless of capability (used by
    /// the conventional-FL baselines).
    Dense,
}

impl RatioPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            RatioPolicy::Fixed(r) => format!("fixed({r})"),
            RatioPolicy::ResourceControlled => "rcr".to_string(),
            RatioPolicy::PUcbv(_) => "p-ucbv".to_string(),
            RatioPolicy::DiscreteUcb { .. } => "ucb".to_string(),
            RatioPolicy::Dense => "dense".to_string(),
        }
    }
}

/// Per-round feedback forwarded to the learning policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioFeedback {
    /// The ratio that was actually used (after capability capping).
    pub ratio: f64,
    /// Local cost of the round in seconds.
    pub local_cost: f64,
    /// Average local training accuracy in `[0, 1]`.
    pub accuracy: f64,
}

#[derive(Debug)]
enum AgentState {
    Stateless,
    PUcbv(Box<PUcbv>),
    Ucb(DiscreteUcb),
}

/// What a lazily-materialized agent needs to know about its client:
/// capability cap `z_k` and the `a^{-1}` accuracy baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientInit {
    /// Capability fraction `z_k` of the client's device tier.
    pub capability: f64,
    /// Accuracy of the initial global model on the client's local training
    /// data (Algorithm 2's bandit baseline).
    pub initial_accuracy: f64,
}

/// One lazily-materialized client: its agent, current proposal, capability
/// cap and a private RNG stream (lazy agents cannot share the dense
/// controller's sequential stream — that would make each agent's draws
/// depend on which other clients happened to participate first).
struct LazyAgent {
    agent: AgentState,
    proposal: f64,
    capability: f64,
    rng: StdRng,
}

/// The physical representation behind a [`RatioController`].
enum ControllerStore {
    /// One pre-built agent per client, all sharing one sequential RNG stream
    /// — the historical representation, golden-pinned at small populations.
    Dense {
        capabilities: Vec<f64>,
        agents: Vec<AgentState>,
        /// The next ratio each agent proposes (learning policies update this).
        proposals: Vec<f64>,
        rng: StdRng,
    },
    /// Agents materialized on first touch and stored sparsely (lint rule
    /// D1). Each owns an RNG stream keyed by its client id, so the draw
    /// sequence of one agent is independent of every other client —
    /// **intentionally not bit-identical** to the dense store, whose agents
    /// consume a single shared stream in client order.
    Lazy {
        num_clients: usize,
        provider: Box<dyn Fn(usize) -> ClientInit + Send + Sync>,
        units_per_layer: Option<Vec<usize>>,
        /// The `Mutex` exists because `ratio_for` takes `&self` but may
        /// materialize; agents are pure functions of `(seed, id, provider)`
        /// plus their own feedback, so lock order never influences a value.
        clients: Mutex<BTreeMap<usize, LazyAgent>>,
        seed: u64,
    },
}

/// Per-client ratio decision state for a whole federation.
///
/// Built either densely ([`RatioController::new`] — every agent constructed
/// up front) or lazily ([`RatioController::lazy`] — agents materialize on a
/// client's first participation, keeping memory `O(participants)` at
/// registry scale).
pub struct RatioController {
    policy: RatioPolicy,
    store: ControllerStore,
}

impl std::fmt::Debug for RatioController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("RatioController");
        s.field("policy", &self.policy);
        match &self.store {
            ControllerStore::Dense { agents, .. } => s.field("clients", &agents.len()),
            ControllerStore::Lazy { num_clients, .. } => s
                .field("registered", num_clients)
                .field("materialized", &self.materialized()),
        };
        s.finish_non_exhaustive()
    }
}

/// Builds one client's agent and initial proposal. The dense constructor
/// feeds every client through this with one shared sequential RNG; the lazy
/// store calls it on first touch with the client's private stream.
fn build_agent(policy: &RatioPolicy, init: ClientInit, rng: &mut StdRng) -> (AgentState, f64) {
    let z = init.capability;
    match policy {
        RatioPolicy::Fixed(r) => (AgentState::Stateless, r.min(z)),
        RatioPolicy::ResourceControlled => (AgentState::Stateless, z),
        RatioPolicy::Dense => (AgentState::Stateless, 1.0),
        RatioPolicy::PUcbv(cfg) => {
            let agent = PUcbv::new(*cfg, z, init.initial_accuracy);
            let ratio = agent.initial_ratio(rng);
            (AgentState::PUcbv(Box::new(agent)), ratio.min(z))
        }
        RatioPolicy::DiscreteUcb { exploration } => {
            let ucb = DiscreteUcb::new(DiscreteUcb::default_grid(z), *exploration);
            let arm = ucb.select(rng);
            let ratio = ucb.ratio_of(arm);
            (AgentState::Ucb(ucb), ratio.min(z))
        }
    }
}

/// Advances one agent on a round report; returns the next proposal, or
/// `None` for stateless rules.
fn advance_agent(agent: &mut AgentState, feedback: RatioFeedback, rng: &mut StdRng) -> Option<f64> {
    match agent {
        AgentState::Stateless => None,
        AgentState::PUcbv(agent) => Some(agent.update(
            PUcbvFeedback {
                ratio: feedback.ratio,
                local_cost: feedback.local_cost,
                accuracy: feedback.accuracy,
            },
            rng,
        )),
        AgentState::Ucb(ucb) => {
            let arm = ucb.nearest_arm(feedback.ratio);
            ucb.record(
                arm,
                crate::reward::reward(feedback.accuracy, 0.0, feedback.local_cost),
            );
            let next_arm = ucb.select(rng);
            Some(ucb.ratio_of(next_arm))
        }
    }
}

impl RatioController {
    /// Creates the controller for `capabilities.len()` clients, every agent
    /// built up front.
    ///
    /// `initial_accuracy` seeds the bandits' `a^{−1}` baseline (the accuracy of
    /// the initial global model on local data, as Algorithm 2 prescribes).
    pub fn new(
        policy: RatioPolicy,
        capabilities: &[f64],
        initial_accuracy: &[f64],
        seed: u64,
    ) -> Self {
        assert_eq!(capabilities.len(), initial_accuracy.len());
        let mut rng = rng_from_seed(split_seed(seed, 0xBAD17));
        let mut agents = Vec::with_capacity(capabilities.len());
        let mut proposals = Vec::with_capacity(capabilities.len());
        for (k, &z) in capabilities.iter().enumerate() {
            let (agent, proposal) = build_agent(
                &policy,
                ClientInit {
                    capability: z,
                    initial_accuracy: initial_accuracy[k],
                },
                &mut rng,
            );
            agents.push(agent);
            proposals.push(proposal);
        }
        Self {
            policy,
            store: ControllerStore::Dense {
                capabilities: capabilities.to_vec(),
                agents,
                proposals,
                rng,
            },
        }
    }

    /// Creates a controller for `num_clients` registered clients without
    /// building any agent: a client's agent materializes on its first
    /// [`ratio_for`](Self::ratio_for) / [`report`](Self::report), seeded from
    /// `provider(client)` and a private per-client RNG stream.
    ///
    /// Draws are **not** bit-identical to [`RatioController::new`] — the
    /// dense constructor threads one sequential RNG through all clients,
    /// which has no participation-order-independent lazy equivalent. Only
    /// small-population dense runs are golden-pinned; population-scale runs
    /// are their own (deterministic) trace.
    pub fn lazy(
        policy: RatioPolicy,
        num_clients: usize,
        provider: Box<dyn Fn(usize) -> ClientInit + Send + Sync>,
        seed: u64,
    ) -> Self {
        Self {
            policy,
            store: ControllerStore::Lazy {
                num_clients,
                provider,
                units_per_layer: None,
                clients: Mutex::new(BTreeMap::new()),
                seed,
            },
        }
    }

    /// The policy this controller implements.
    pub fn policy(&self) -> &RatioPolicy {
        &self.policy
    }

    /// Number of clients holding materialized agent state. The
    /// population-scale bench asserts on this to pin the `O(active
    /// participants)` memory contract.
    pub fn materialized(&self) -> usize {
        match &self.store {
            ControllerStore::Dense { agents, .. } => agents.len(),
            ControllerStore::Lazy { clients, .. } => {
                clients.lock().expect("ratio controller lock").len()
            }
        }
    }

    /// Quantizes every P-UCBV agent's arm space at the model's shape
    /// resolution (`units_per_layer` = sparsifiable units per layer): ratios
    /// extracting equal per-layer retained-unit counts collapse to one arm,
    /// and current proposals snap to their canonical representatives. A
    /// no-op for the stateless and discrete policies, whose arm spaces are
    /// already coarse. On a lazy controller the resolution also applies to
    /// every agent materialized later.
    pub fn with_shape_resolution(mut self, units_per_layer: &[usize]) -> Self {
        match &mut self.store {
            ControllerStore::Dense {
                agents, proposals, ..
            } => {
                for (k, agent) in agents.iter_mut().enumerate() {
                    if let AgentState::PUcbv(a) = agent {
                        a.set_shape_resolution(units_per_layer.to_vec());
                        proposals[k] = a.quantize(proposals[k]);
                    }
                }
            }
            ControllerStore::Lazy {
                units_per_layer: slot,
                clients,
                ..
            } => {
                *slot = Some(units_per_layer.to_vec());
                let clients = clients.get_mut().expect("ratio controller lock");
                for lazy in clients.values_mut() {
                    if let AgentState::PUcbv(a) = &mut lazy.agent {
                        a.set_shape_resolution(units_per_layer.to_vec());
                        lazy.proposal = a.quantize(lazy.proposal);
                    }
                }
            }
        }
        self
    }

    /// The sparse ratio to use for `client` this round. Always capped at the
    /// client's capability (`s_k ≤ z_k`), which mirrors the client-side reset
    /// in the paper's "Client-side Update". First touch of a client on a
    /// lazy controller materializes its agent.
    pub fn ratio_for(&self, client: usize) -> f64 {
        match &self.store {
            ControllerStore::Dense {
                capabilities,
                proposals,
                ..
            } => proposals[client].min(capabilities[client]).max(0.0),
            ControllerStore::Lazy { clients, .. } => {
                let mut clients = clients.lock().expect("ratio controller lock");
                let lazy = Self::materialize(&self.policy, &self.store, &mut clients, client);
                lazy.proposal.min(lazy.capability).max(0.0)
            }
        }
    }

    /// Materializes (or fetches) one lazy agent; callers hold the lock.
    fn materialize<'m>(
        policy: &RatioPolicy,
        store: &ControllerStore,
        clients: &'m mut BTreeMap<usize, LazyAgent>,
        client: usize,
    ) -> &'m mut LazyAgent {
        let ControllerStore::Lazy {
            num_clients,
            provider,
            units_per_layer,
            seed,
            ..
        } = store
        else {
            unreachable!("materialize is only called on the lazy store");
        };
        assert!(client < *num_clients, "client {client} out of range");
        clients.entry(client).or_insert_with(|| {
            let init = provider(client);
            let mut rng = rng_from_seed(split_seed(*seed, 0xBAD17 ^ ((client as u64) << 16)));
            let (mut agent, mut proposal) = build_agent(policy, init, &mut rng);
            if let (Some(units), AgentState::PUcbv(a)) = (units_per_layer, &mut agent) {
                a.set_shape_resolution(units.clone());
                proposal = a.quantize(proposal);
            }
            LazyAgent {
                agent,
                proposal,
                capability: init.capability,
                rng,
            }
        })
    }

    /// Reports a finished round for `client`; learning policies use it to
    /// propose the next ratio (Algorithm 1 lines 9-15).
    pub fn report(&mut self, client: usize, feedback: RatioFeedback) {
        if let ControllerStore::Dense {
            agents,
            proposals,
            rng,
            ..
        } = &mut self.store
        {
            if let Some(next) = advance_agent(&mut agents[client], feedback, rng) {
                proposals[client] = next;
            }
            return;
        }
        let ControllerStore::Lazy { clients, .. } = &self.store else {
            unreachable!("the store is either dense or lazy");
        };
        let mut map = clients.lock().expect("ratio controller lock");
        let lazy = Self::materialize(&self.policy, &self.store, &mut map, client);
        if let Some(next) = advance_agent(&mut lazy.agent, feedback, &mut lazy.rng) {
            lazy.proposal = next;
        }
    }

    /// Current proposals for every client (used by analyses / examples).
    /// Allocates `O(population)` and therefore refuses to run on a lazy
    /// controller — iterate [`ratio_for`](Self::ratio_for) over the ids you
    /// need instead.
    pub fn proposals(&self) -> Vec<f64> {
        match &self.store {
            ControllerStore::Dense { proposals, .. } => {
                (0..proposals.len()).map(|k| self.ratio_for(k)).collect()
            }
            ControllerStore::Lazy { num_clients, .. } => panic!(
                "RatioController::proposals() would materialize {num_clients} agents; \
                 iterate ratio_for(k) instead"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> Vec<f64> {
        vec![1.0, 0.5, 0.25, 0.0625]
    }

    #[test]
    fn fixed_policy_caps_at_capability() {
        let ctrl = RatioController::new(RatioPolicy::Fixed(0.5), &caps(), &[0.0; 4], 1);
        assert_eq!(ctrl.ratio_for(0), 0.5);
        assert_eq!(ctrl.ratio_for(1), 0.5);
        assert_eq!(ctrl.ratio_for(2), 0.25);
        assert_eq!(ctrl.ratio_for(3), 0.0625);
    }

    #[test]
    fn rcr_policy_matches_capability() {
        let ctrl = RatioController::new(RatioPolicy::ResourceControlled, &caps(), &[0.0; 4], 1);
        for (k, &z) in caps().iter().enumerate() {
            assert_eq!(ctrl.ratio_for(k), z);
        }
    }

    #[test]
    fn dense_policy_ignores_capability_cap_only_via_explicit_one() {
        let ctrl = RatioController::new(RatioPolicy::Dense, &caps(), &[0.0; 4], 1);
        // Dense baselines train the full model even on weak devices (that is
        // exactly why they straggle), but the controller still reports the
        // capability-capped value used for submodel extraction — which for the
        // dense policy is the capability itself on weak clients.
        assert_eq!(ctrl.ratio_for(0), 1.0);
        assert_eq!(ctrl.ratio_for(3), 0.0625);
    }

    #[test]
    fn pucbv_policy_adapts_over_reports() {
        let mut ctrl = RatioController::new(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            &caps(),
            &[0.1; 4],
            7,
        );
        let first = ctrl.ratio_for(0);
        assert!(first > 0.0 && first <= 1.0);
        for round in 0..20 {
            let r = ctrl.ratio_for(0);
            ctrl.report(
                0,
                RatioFeedback {
                    ratio: r,
                    local_cost: 1.0 + r,
                    accuracy: 0.1 + 0.03 * round as f64,
                },
            );
            assert!(ctrl.ratio_for(0) <= 1.0 && ctrl.ratio_for(0) > 0.0);
        }
    }

    #[test]
    fn ucb_policy_stays_on_grid_and_under_cap() {
        let mut ctrl = RatioController::new(
            RatioPolicy::DiscreteUcb { exploration: 2.0 },
            &caps(),
            &[0.1; 4],
            9,
        );
        for _ in 0..10 {
            let r = ctrl.ratio_for(2);
            assert!(r <= 0.25 + 1e-9);
            ctrl.report(
                2,
                RatioFeedback {
                    ratio: r,
                    local_cost: 1.0,
                    accuracy: 0.2,
                },
            );
        }
    }

    #[test]
    fn shape_resolution_quantizes_pucbv_proposals_only() {
        let units = vec![10, 8];
        let mut ctrl = RatioController::new(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            &caps(),
            &[0.1; 4],
            7,
        )
        .with_shape_resolution(&units);
        for k in 0..4 {
            let r = ctrl.ratio_for(k);
            assert!(r <= caps()[k] + 1e-9);
            for _ in 0..5 {
                ctrl.report(
                    k,
                    RatioFeedback {
                        ratio: ctrl.ratio_for(k),
                        local_cost: 1.0,
                        accuracy: 0.3,
                    },
                );
            }
        }
        // Stateless rules are untouched by the builder: RCR still proposes
        // exactly the capability.
        let rcr = RatioController::new(RatioPolicy::ResourceControlled, &caps(), &[0.0; 4], 1)
            .with_shape_resolution(&units);
        for (k, &z) in caps().iter().enumerate() {
            assert_eq!(rcr.ratio_for(k), z);
        }
    }

    fn tier_init(k: usize) -> ClientInit {
        ClientInit {
            capability: [1.0, 0.5, 0.25, 0.0625][k % 4],
            initial_accuracy: 0.1,
        }
    }

    #[test]
    fn lazy_controller_materializes_on_first_touch_only() {
        let ctrl = RatioController::lazy(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            1_000_000,
            Box::new(tier_init),
            7,
        );
        assert_eq!(ctrl.materialized(), 0);
        let r = ctrl.ratio_for(999_999);
        assert!(r > 0.0 && r <= 1.0);
        let _ = ctrl.ratio_for(5);
        let _ = ctrl.ratio_for(999_999); // repeat touch: no new entry
        assert_eq!(ctrl.materialized(), 2);
    }

    #[test]
    fn lazy_agents_are_independent_of_participation_order() {
        let mk = || {
            RatioController::lazy(
                RatioPolicy::PUcbv(PUcbvConfig::default()),
                1000,
                Box::new(tier_init),
                7,
            )
        };
        let forward = mk();
        let reverse = mk();
        let ids = [3usize, 17, 512, 900];
        let a: Vec<f64> = ids.iter().map(|&k| forward.ratio_for(k)).collect();
        let b: Vec<f64> = ids.iter().rev().map(|&k| reverse.ratio_for(k)).collect();
        let b: Vec<f64> = b.into_iter().rev().collect();
        assert_eq!(a, b, "first-touch order must not change any proposal");
    }

    #[test]
    fn lazy_controller_learns_and_respects_caps() {
        let mut ctrl = RatioController::lazy(
            RatioPolicy::PUcbv(PUcbvConfig::default()),
            1_000_000,
            Box::new(tier_init),
            9,
        )
        .with_shape_resolution(&[10, 8]);
        for round in 0..10 {
            // Client 2 has capability 0.25.
            let r = ctrl.ratio_for(2);
            assert!(r > 0.0 && r <= 0.25 + 1e-9, "round {round}: {r}");
            ctrl.report(
                2,
                RatioFeedback {
                    ratio: r,
                    local_cost: 1.0 + r,
                    accuracy: 0.1 + 0.05 * round as f64,
                },
            );
        }
        assert_eq!(ctrl.materialized(), 1);
    }

    #[test]
    fn lazy_stateless_rules_match_their_dense_counterparts() {
        let caps = caps();
        let init = |k: usize| ClientInit {
            capability: [1.0, 0.5, 0.25, 0.0625][k],
            initial_accuracy: 0.0,
        };
        for policy in [
            RatioPolicy::Fixed(0.5),
            RatioPolicy::ResourceControlled,
            RatioPolicy::Dense,
        ] {
            let dense = RatioController::new(policy.clone(), &caps, &[0.0; 4], 1);
            let lazy = RatioController::lazy(policy.clone(), 4, Box::new(init), 1);
            for k in 0..4 {
                assert_eq!(
                    dense.ratio_for(k),
                    lazy.ratio_for(k),
                    "{} client {k}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn lazy_proposals_refuse_to_materialize_the_population() {
        RatioController::lazy(RatioPolicy::Dense, 1_000_000, Box::new(tier_init), 1).proposals();
    }

    #[test]
    fn policy_names() {
        assert_eq!(RatioPolicy::ResourceControlled.name(), "rcr");
        assert_eq!(RatioPolicy::Dense.name(), "dense");
        assert!(RatioPolicy::Fixed(0.5).name().starts_with("fixed"));
    }
}
