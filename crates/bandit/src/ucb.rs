//! Discrete UCB1 over a fixed grid of sparse ratios — the ratio decision used
//! by the FedMP baseline \[28\], which the paper contrasts with P-UCBV.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// UCB1 agent over a fixed, discrete arm set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscreteUcb {
    arms: Vec<f64>,
    counts: Vec<usize>,
    sums: Vec<f64>,
    total_pulls: usize,
    exploration: f64,
}

impl DiscreteUcb {
    /// Creates an agent with the given candidate ratios.
    pub fn new(arms: Vec<f64>, exploration: f64) -> Self {
        assert!(!arms.is_empty(), "UCB needs at least one arm");
        let n = arms.len();
        Self {
            arms,
            counts: vec![0; n],
            sums: vec![0.0; n],
            total_pulls: 0,
            exploration,
        }
    }

    /// The default ratio grid used for FedMP-style decisions, capped at the
    /// client's capability. Always contains at least one feasible arm.
    pub fn default_grid(max_ratio: f64) -> Vec<f64> {
        let grid: Vec<f64> = [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0]
            .iter()
            .copied()
            .filter(|&r| r <= max_ratio + 1e-9)
            .collect();
        if grid.is_empty() {
            vec![max_ratio.max(0.01)]
        } else {
            grid
        }
    }

    /// Candidate arm values.
    pub fn arms(&self) -> &[f64] {
        &self.arms
    }

    /// Chooses the next arm: unexplored arms first, then the UCB1 rule.
    pub fn select(&self, rng: &mut impl Rng) -> usize {
        if let Some(idx) = self.counts.iter().position(|&c| c == 0) {
            return idx;
        }
        let total = self.total_pulls.max(1) as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.arms.len() {
            let mean = self.sums[i] / self.counts[i] as f64;
            let bonus = (self.exploration * total.ln() / self.counts[i] as f64).sqrt();
            let score = mean + bonus;
            if score > best_score || (score == best_score && rng.gen::<bool>()) {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// The ratio value of an arm index.
    pub fn ratio_of(&self, arm: usize) -> f64 {
        self.arms[arm]
    }

    /// Index of the arm closest to a ratio value.
    pub fn nearest_arm(&self, ratio: f64) -> usize {
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (i, &a) in self.arms.iter().enumerate() {
            let err = (a - ratio).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best
    }

    /// Records a reward for an arm.
    pub fn record(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        self.sums[arm] += reward;
        self.total_pulls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_tensor::rng_from_seed;

    #[test]
    fn explores_every_arm_first() {
        let mut ucb = DiscreteUcb::new(vec![0.25, 0.5, 1.0], 2.0);
        let mut rng = rng_from_seed(1);
        let mut seen = [false; 3];
        for _ in 0..3 {
            let arm = ucb.select(&mut rng);
            seen[arm] = true;
            ucb.record(arm, 0.0);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn converges_to_the_best_arm() {
        let mut ucb = DiscreteUcb::new(vec![0.25, 0.5, 1.0], 2.0);
        let mut rng = rng_from_seed(2);
        let true_rewards = [0.2, 1.0, 0.4];
        let mut picks = vec![0usize; 3];
        for _ in 0..300 {
            let arm = ucb.select(&mut rng);
            picks[arm] += 1;
            ucb.record(arm, true_rewards[arm]);
        }
        assert!(picks[1] > picks[0] && picks[1] > picks[2], "{picks:?}");
    }

    #[test]
    fn grid_respects_capability_cap() {
        let grid = DiscreteUcb::default_grid(0.3);
        assert!(grid.iter().all(|&r| r <= 0.3));
        assert!(!grid.is_empty());
        assert_eq!(DiscreteUcb::default_grid(1.0).len(), 8);
    }

    #[test]
    fn nearest_arm_lookup() {
        let ucb = DiscreteUcb::new(vec![0.25, 0.5, 1.0], 2.0);
        assert_eq!(ucb.nearest_arm(0.26), 0);
        assert_eq!(ucb.nearest_arm(0.8), 2);
        assert_eq!(ucb.ratio_of(1), 0.5);
    }
}
