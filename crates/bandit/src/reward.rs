//! The reward function of P-UCBV (Eq. 15) and its utility transform.

/// The utility function used by the paper's experiments:
/// `U(x) = 10 − 20 / (1 + e^{0.35 x})` with the accuracy `x` expressed in
/// percent. It saturates near 10 as accuracy approaches 100%, which discounts
/// marginal accuracy gains near the end of training (the stated design goal).
pub fn utility(accuracy_percent: f64) -> f64 {
    10.0 - 20.0 / (1.0 + (0.35 * accuracy_percent).exp())
}

/// Eq. (15): the reward of the sparse ratio tried in round `r`, given the
/// training accuracy it achieved, the previous round's accuracy and the local
/// cost `T_k^r` it incurred.
///
/// Accuracies are fractions in `[0, 1]`; they are converted to percent before
/// the utility transform to match the paper's configuration.
pub fn reward(accuracy: f64, prev_accuracy: f64, local_cost_seconds: f64) -> f64 {
    let cost = local_cost_seconds.max(1e-9);
    (utility(accuracy * 100.0) - utility(prev_accuracy * 100.0)) / cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_is_monotone_and_bounded() {
        assert!(utility(0.0).abs() < 1e-9);
        assert!(utility(100.0) < 10.0 + 1e-9);
        assert!(utility(100.0) > 9.9);
        let mut prev = f64::NEG_INFINITY;
        for pct in 0..=100 {
            let u = utility(pct as f64);
            assert!(u >= prev);
            prev = u;
        }
    }

    #[test]
    fn utility_saturates_at_high_accuracy() {
        // Marginal gain from 90% -> 95% is smaller than from 10% -> 15%.
        let low_gain = utility(15.0) - utility(10.0);
        let high_gain = utility(95.0) - utility(90.0);
        assert!(high_gain < low_gain);
    }

    #[test]
    fn reward_signs_follow_accuracy_changes() {
        assert!(reward(0.6, 0.5, 2.0) > 0.0);
        assert!(reward(0.4, 0.5, 2.0) < 0.0);
        assert_eq!(reward(0.5, 0.5, 2.0), 0.0);
    }

    #[test]
    fn cheaper_rounds_earn_higher_reward_for_same_gain() {
        let fast = reward(0.6, 0.5, 1.0);
        let slow = reward(0.6, 0.5, 10.0);
        assert!(fast > slow);
        assert!((fast / slow - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_does_not_divide_by_zero() {
        assert!(reward(0.9, 0.1, 0.0).is_finite());
    }
}
