//! Algorithm 1's `ClientUpdate`: learnable sparse training on local data.

use std::sync::Arc;

use fedlps_data::dataset::Dataset;
use fedlps_nn::model::ModelArch;
use fedlps_nn::pack::PackedModel;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sparse::mask::UnitMask;
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_sparse::plan::SubmodelPlan;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::importance::ImportanceIndicator;
use crate::loss::ImportanceLoss;
use crate::server::Residual;
use fedlps_tensor::Arena;

/// State a FedLPS client keeps across rounds: its importance indicator
/// (`Record Q^s_k ← Q^r_{k,E}`, Algorithm 1 line 23) and its personalized
/// sparse model (line 24), which is what the client deploys for inference.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClientState {
    /// The persisted importance indicator scores.
    pub indicator: Option<Vec<f32>>,
    /// The personalized sparse model `ω_{k,E} ⊙ m_{k,E}` kept locally.
    pub personal_model: Option<Vec<f32>>,
    /// The most recent sparse pattern, kept for analyses and ablations.
    pub last_mask: Option<UnitMask>,
    /// The sparse ratio used in the client's last participation.
    pub last_ratio: f64,
}

/// Hyper-parameters of one local update pass.
#[derive(Debug, Clone, Copy)]
pub struct ClientUpdateOptions {
    /// Number of local iterations `E`.
    pub iterations: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Model optimiser.
    pub sgd: SgdConfig,
    /// Learning rate for the importance indicator (defaults to the model lr).
    pub importance_lr: f32,
    /// Proximal weight `μ`.
    pub mu: f32,
    /// Importance-regularisation weight `λ`.
    pub lambda: f32,
    /// Pattern strategy (FedLPS proper uses the learnable importance pattern).
    pub pattern: PatternStrategy,
    /// Sparse ratio `s_k^r` for this round (already capability-capped).
    pub ratio: f64,
    /// Communication round (consumed by the rolling-ordered ablation pattern).
    pub round: usize,
}

/// What the client sends back to the server after `E` local iterations.
#[derive(Debug, Clone)]
pub struct ClientUpdateOutcome {
    /// The masked residual `(ω^r − ω_{k,E}) ⊙ m_{k,E}` (Eq. 12) — packed to
    /// its nonzero coordinates when the round executed a packed submodel.
    pub residual: Residual,
    /// The final sparse pattern `m_{k,E}`.
    pub mask: UnitMask,
    /// Number of parameters actually uploaded (non-zeros of the residual's
    /// mask plus the tiny binary pattern itself).
    pub uploaded_params: usize,
    /// Mean training loss over the local iterations (task + regularisers).
    pub mean_loss: f64,
    /// Mean training accuracy over the local iterations (`a_k^r`).
    pub mean_accuracy: f64,
}

/// One client's local work for a round as a *pure task*: immutable global
/// weights and persistent state in, [`ClientTaskOutput`] out. Because the
/// task never mutates shared state, the round loop can map it over the
/// selected clients on any number of threads; the freshly produced
/// [`ClientState`] is written back in the serial absorb phase.
pub struct ClientTask<'a> {
    /// The model architecture.
    pub arch: &'a dyn ModelArch,
    /// The current dense global parameters `ω^r` (read-only snapshot).
    pub global: &'a [f32],
    /// The client's persistent state from its previous participation.
    pub state: &'a ClientState,
    /// The client's local training data.
    pub data: &'a Dataset,
    /// Hyper-parameters of the local pass (ratio already capability-capped).
    pub options: ClientUpdateOptions,
    /// A mask served from the cross-round [`MaskCache`](fedlps_sparse::MaskCache),
    /// if the server found one for this client at this ratio. `None` makes
    /// the task derive a fresh pattern from the indicator (Eq. 4).
    pub cached_mask: Option<&'a UnitMask>,
    /// Run the task forward/backward on the physically packed submodel
    /// instead of the masked full model (bit-identical; see
    /// [`fedlps_nn::pack`]). Wired from `FlConfig::packed_execution`.
    pub packed_execution: bool,
    /// A compiled plan served from the cache next to `cached_mask`, sparing
    /// the task the per-round compilation. Ignored when `packed_execution`
    /// is off.
    pub cached_plan: Option<Arc<PackedModel>>,
}

/// The result of running a [`ClientTask`]: the upload outcome plus the new
/// persistent state (returned, not written in place, to keep the task pure).
#[derive(Debug)]
pub struct ClientTaskOutput {
    /// Residual, mask and training statistics (Algorithm 1 lines 23-27).
    pub outcome: ClientUpdateOutcome,
    /// The client's next persistent state (`Q^s_k`, personal model, mask).
    pub state: ClientState,
    /// Whether the round's mask came from the cache (`false` means the
    /// caller should insert `outcome.mask` into the cache).
    pub mask_cache_hit: bool,
    /// The packed submodel this round executed, if any — the caller attaches
    /// it to the mask cache so the next participation at this shape skips
    /// compilation.
    pub plan: Option<Arc<PackedModel>>,
}

impl std::fmt::Debug for ClientTask<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientTask")
            .field("arch", &self.arch.name())
            .field("params", &self.global.len())
            .field("options", &self.options)
            .field("cached_mask", &self.cached_mask.is_some())
            .field("packed_execution", &self.packed_execution)
            .field("cached_plan", &self.cached_plan.is_some())
            .finish_non_exhaustive()
    }
}

impl ClientTask<'_> {
    /// Runs Algorithm 1 lines 17-27 for this client.
    pub fn run(&self, rng: &mut StdRng) -> ClientTaskOutput {
        let arch = self.arch;
        let options = &self.options;
        let global_params = self.global;
        let layout = arch.unit_layout();
        assert_eq!(global_params.len(), arch.param_count());

        // Line 17: ω_{k,0} ← ω^r and Q_{k,0} ← Q^s_k (initialised from the
        // global parameters on the client's first participation).
        let mut local = global_params.to_vec();
        let mut indicator = match &self.state.indicator {
            Some(scores) => ImportanceIndicator::from_scores(scores.clone()),
            None => ImportanceIndicator::from_params(layout, global_params),
        };
        let objective = ImportanceLoss::new(options.mu, options.lambda);

        let mut loss_sum = 0.0;
        let mut acc_sum = 0.0;
        let mut executed = 0usize;

        // The paper re-derives the mask in every local iteration; with the
        // reproduction's small local-iteration budgets that churn prevents any
        // unit subset from accumulating training, so the round's mask is frozen
        // from the indicator the client starts the round with, while Q itself
        // keeps learning and shapes the mask of the *next* participation. The
        // cross-round cache extends the same freeze across participations at
        // an unchanged ratio. The personalized model and the uploaded residual
        // use this trained mask.
        let mask_cache_hit = self.cached_mask.is_some();
        let mask = match self.cached_mask {
            Some(cached) => cached.clone(),
            None => build_mask(arch, &local, &indicator, options, rng),
        };
        let pmask = mask.param_mask(layout);

        // Compile (or reuse) the physically packed submodel of this round's
        // mask. The packed task pass is bit-identical to the masked-dense one,
        // so falling back (plan not executable, packing off) changes nothing
        // but wall-clock. Weight decay disqualifies packing: it moves
        // mask-kept cross-connections into dropped units (their task gradient
        // is zero but `wd * p` is not), and those coordinates live outside
        // the packed residual.
        let packable = self.packed_execution && options.sgd.weight_decay == 0.0;
        let plan: Option<Arc<PackedModel>> = if packable {
            self.cached_plan.clone().or_else(|| {
                SubmodelPlan::from_mask(layout, &mask)
                    .compile(arch)
                    .map(Arc::new)
            })
        } else {
            None
        };
        let data = self.data;
        if !data.is_empty() {
            let batch = options.batch_size.max(1).min(data.len());
            // One flat arena per client step: the masked snapshot, the
            // full-length gradient and the packed model's parameter/gradient
            // views all live in a single pooled backing vector instead of
            // per-buffer (and previously per-iteration) `Vec` allocations.
            let n = arch.param_count();
            let p = plan.as_deref().map_or(0, PackedModel::packed_len);
            let mut arena = Arena::from_pool(2 * n + 2 * p);
            let [masked, grad, packed_params, packed_grad] = arena.views([n, n, p, p]);
            let mut indices = Vec::with_capacity(batch);
            for _ in 0..options.iterations {
                for ((slot, &pv), &m) in masked.iter_mut().zip(local.iter()).zip(pmask.iter()) {
                    *slot = pv * m;
                }
                indices.clear();
                indices.extend((0..batch).map(|_| rng.gen_range(0..data.len())));
                grad.fill(0.0);
                let breakdown = match plan.as_deref() {
                    Some(packed) => objective.evaluate_packed(
                        arch,
                        packed,
                        packed_params,
                        packed_grad,
                        masked,
                        global_params,
                        &indicator,
                        data,
                        &indices,
                        grad,
                    ),
                    None => objective.evaluate(
                        arch,
                        masked,
                        global_params,
                        &indicator,
                        data,
                        &indices,
                        grad,
                    ),
                };

                // Line 21: importance-indicator update (uses the same gradient buffer).
                let q_grad = indicator.gradient(layout, &local, grad, options.lambda);
                // Line 20: masked SGD step on the retained parameters only.
                options.sgd.step_masked(&mut local, grad, &pmask);
                indicator.step(&q_grad, options.importance_lr);

                loss_sum += breakdown.total;
                acc_sum += breakdown.accuracy;
                executed += 1;
            }
            arena.release();
        }

        // Lines 23-25: persist Q, store the personalized sparse model and
        // compute the masked residual to upload (masked with the pattern that
        // was trained). A packed round uploads only the delta on the packed
        // coordinates — every other masked-in coordinate is frozen at the
        // global value, so its residual entry is an exact zero.
        let personal: Vec<f32> = local.iter().zip(pmask.iter()).map(|(p, m)| p * m).collect();
        let residual = match plan.as_deref() {
            Some(packed) => Residual::Packed {
                values: packed
                    .gather_map()
                    .iter()
                    .map(|&i| global_params[i as usize] - local[i as usize])
                    .collect(),
                coords: packed.gather_arc(),
                len: arch.param_count(),
            },
            None => Residual::Dense(
                global_params
                    .iter()
                    .zip(local.iter())
                    .zip(pmask.iter())
                    .map(|((g, l), m)| (g - l) * m)
                    .collect(),
            ),
        };
        let uploaded_params = mask.retained_params(layout);

        let state = ClientState {
            indicator: Some(indicator.scores().to_vec()),
            personal_model: Some(personal),
            last_mask: Some(mask.clone()),
            last_ratio: options.ratio,
        };

        ClientTaskOutput {
            outcome: ClientUpdateOutcome {
                residual,
                mask,
                uploaded_params,
                mean_loss: if executed > 0 {
                    loss_sum / executed as f64
                } else {
                    0.0
                },
                mean_accuracy: if executed > 0 {
                    acc_sum / executed as f64
                } else {
                    0.0
                },
            },
            state,
            mask_cache_hit,
            plan,
        }
    }
}

/// Runs Algorithm 1 lines 17-27 for one client and updates its persistent
/// state in place — the serial convenience wrapper around [`ClientTask`]
/// (always builds a fresh mask and trains masked-dense; the simulator's round
/// loop uses the task directly so it can consult the cross-round mask cache
/// and the packed execution path).
pub fn client_update(
    arch: &dyn ModelArch,
    global_params: &[f32],
    state: &mut ClientState,
    data: &Dataset,
    options: &ClientUpdateOptions,
    rng: &mut StdRng,
) -> ClientUpdateOutcome {
    let task = ClientTask {
        arch,
        global: global_params,
        state,
        data,
        options: *options,
        cached_mask: None,
        packed_execution: false,
        cached_plan: None,
    };
    let output = task.run(rng);
    *state = output.state;
    output.outcome
}

fn build_mask(
    arch: &dyn ModelArch,
    local: &[f32],
    indicator: &ImportanceIndicator,
    options: &ClientUpdateOptions,
    rng: &mut StdRng,
) -> UnitMask {
    options.pattern.build_mask(
        arch.unit_layout(),
        local,
        Some(indicator.scores()),
        options.ratio,
        options.round,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::dataset::InputKind;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_tensor::{rng_from_seed, Matrix};

    fn setup() -> (Mlp, Dataset, Vec<f32>) {
        let mlp = Mlp::new(MlpConfig {
            input_dim: 6,
            hidden: vec![10, 8],
            num_classes: 3,
        });
        let mut rng = rng_from_seed(3);
        let features = Matrix::random_normal(40, 6, 1.0, &mut rng);
        let labels: Vec<usize> = (0..40).map(|i| i % 3).collect();
        let data = Dataset::new(features, labels, 3, InputKind::Vector { dim: 6 });
        let params = mlp.init_params(&mut rng);
        (mlp, data, params)
    }

    fn options(ratio: f64) -> ClientUpdateOptions {
        ClientUpdateOptions {
            iterations: 8,
            batch_size: 10,
            sgd: SgdConfig::vision(),
            importance_lr: 0.1,
            mu: 1.0,
            lambda: 1.0,
            pattern: PatternStrategy::Importance,
            ratio,
            round: 0,
        }
    }

    #[test]
    fn residual_respects_the_mask_and_ratio() {
        let (mlp, data, global) = setup();
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(5);
        let outcome = client_update(&mlp, &global, &mut state, &data, &options(0.5), &mut rng);

        assert_eq!(outcome.residual.len(), mlp.param_count());
        let layout = mlp.unit_layout();
        assert_eq!(outcome.mask.retained_per_layer(layout), vec![5, 4]);
        // Residual entries of dropped units must be exactly zero.
        let pmask = outcome.mask.param_mask(layout);
        for (r, m) in outcome.residual.to_dense().iter().zip(pmask.iter()) {
            if *m == 0.0 {
                assert_eq!(*r, 0.0);
            }
        }
        assert_eq!(
            outcome.uploaded_params,
            outcome.mask.retained_params(layout)
        );
        assert!(outcome.uploaded_params < mlp.param_count());
    }

    #[test]
    fn state_persists_indicator_and_personal_model() {
        let (mlp, data, global) = setup();
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(6);
        client_update(&mlp, &global, &mut state, &data, &options(0.5), &mut rng);
        let q1 = state.indicator.clone().unwrap();
        assert!(state.personal_model.is_some());
        assert_eq!(state.last_ratio, 0.5);
        // Second round re-uses (and further updates) the stored indicator.
        client_update(&mlp, &global, &mut state, &data, &options(0.5), &mut rng);
        let q2 = state.indicator.clone().unwrap();
        assert_eq!(q1.len(), q2.len());
        assert_ne!(q1, q2, "the indicator keeps learning across rounds");
    }

    #[test]
    fn personal_model_improves_over_initial_global() {
        let (mlp, data, global) = setup();
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(7);
        let mut opts = options(0.7);
        opts.iterations = 60;
        opts.mu = 0.1;
        client_update(&mlp, &global, &mut state, &data, &opts, &mut rng);
        let personal = state.personal_model.as_ref().unwrap();
        let before = mlp.evaluate(&global, &data);
        let after = mlp.evaluate(personal, &data);
        assert!(
            after.loss < before.loss,
            "personal sparse model should fit local data better ({} vs {})",
            after.loss,
            before.loss
        );
    }

    #[test]
    fn training_accuracy_is_reported() {
        let (mlp, data, global) = setup();
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(8);
        let outcome = client_update(&mlp, &global, &mut state, &data, &options(1.0), &mut rng);
        assert!(outcome.mean_accuracy >= 0.0 && outcome.mean_accuracy <= 1.0);
        assert!(outcome.mean_loss.is_finite());
    }

    #[test]
    fn empty_dataset_returns_zero_work() {
        let (mlp, _, global) = setup();
        let empty = Dataset::empty(3, InputKind::Vector { dim: 6 });
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(9);
        let outcome = client_update(&mlp, &global, &mut state, &empty, &options(0.5), &mut rng);
        assert_eq!(outcome.mean_accuracy, 0.0);
        // The residual is all zeros because no training happened.
        assert!(outcome.residual.to_dense().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn random_pattern_masks_are_resampled_every_participation() {
        let (mlp, data, global) = setup();
        let mut opts = options(0.5);
        opts.pattern = PatternStrategy::Random;
        let mut state = ClientState::default();
        let mut rng = rng_from_seed(21);
        let first = client_update(&mlp, &global, &mut state, &data, &opts, &mut rng);
        let second = client_update(&mlp, &global, &mut state, &data, &opts, &mut rng);
        assert_ne!(
            first.mask, second.mask,
            "random dropout must resample its units each round"
        );
    }

    #[test]
    fn client_task_is_pure_and_reuses_cached_masks() {
        let (mlp, data, global) = setup();
        let state = ClientState::default();
        let task = ClientTask {
            arch: &mlp,
            global: &global,
            state: &state,
            data: &data,
            options: options(0.5),
            cached_mask: None,
            packed_execution: false,
            cached_plan: None,
        };
        let mut rng1 = rng_from_seed(11);
        let fresh = task.run(&mut rng1);
        assert!(!fresh.mask_cache_hit);
        assert!(
            state.indicator.is_none(),
            "the task must not mutate its input state"
        );
        assert!(fresh.state.indicator.is_some());

        // Serving the fresh mask back as "cached" reproduces the round
        // bit-for-bit (importance masks consume no RNG, so streams align).
        let cached_task = ClientTask {
            cached_mask: Some(&fresh.outcome.mask),
            ..task
        };
        let mut rng2 = rng_from_seed(11);
        let cached = cached_task.run(&mut rng2);
        assert!(cached.mask_cache_hit);
        assert_eq!(cached.outcome.mask, fresh.outcome.mask);
        assert_eq!(cached.outcome.residual, fresh.outcome.residual);
        assert_eq!(cached.state.indicator, fresh.state.indicator);
    }

    #[test]
    fn packed_client_task_matches_masked_dense_bitwise() {
        // The tentpole contract at the client level: with identical RNG
        // streams, packed-submodel execution reproduces masked-dense
        // execution bit for bit — residual, personal model, indicator, mask
        // and training statistics.
        let (mlp, data, global) = setup();
        let state = ClientState::default();
        for ratio in [0.25, 0.5, 0.8] {
            let dense_task = ClientTask {
                arch: &mlp,
                global: &global,
                state: &state,
                data: &data,
                options: options(ratio),
                cached_mask: None,
                packed_execution: false,
                cached_plan: None,
            };
            let mut rng_d = rng_from_seed(45);
            let dense = dense_task.run(&mut rng_d);
            let packed_task = ClientTask {
                packed_execution: true,
                ..dense_task
            };
            let mut rng_p = rng_from_seed(45);
            let packed = packed_task.run(&mut rng_p);

            assert!(packed.plan.is_some(), "ratio {ratio} should compile");
            assert!(dense.plan.is_none());
            assert_eq!(dense.outcome.mask, packed.outcome.mask);
            let dr = dense.outcome.residual.to_dense();
            let pr = packed.outcome.residual.to_dense();
            for (i, (d, p)) in dr.iter().zip(pr.iter()).enumerate() {
                assert_eq!(d.to_bits(), p.to_bits(), "residual diverges at {i}");
            }
            assert!(
                packed.outcome.residual.stored_values() < mlp.param_count(),
                "the packed upload is physically smaller"
            );
            assert_eq!(
                dense.outcome.mean_loss.to_bits(),
                packed.outcome.mean_loss.to_bits()
            );
            assert_eq!(dense.outcome.mean_accuracy, packed.outcome.mean_accuracy);
            assert_eq!(dense.state.indicator, packed.state.indicator);
            assert_eq!(dense.state.personal_model, packed.state.personal_model);
        }
    }

    #[test]
    fn weight_decay_falls_back_to_masked_dense() {
        // Decay moves mask-kept cross-connections into dropped units (task
        // gradient zero, `wd * p` not), which the packed residual cannot
        // carry — so a decayed configuration must not pack, and the results
        // must still agree with the masked-dense reference bit for bit.
        let (mlp, data, global) = setup();
        let state = ClientState::default();
        let mut opts = options(0.5);
        opts.sgd.weight_decay = 0.1;
        let dense_task = ClientTask {
            arch: &mlp,
            global: &global,
            state: &state,
            data: &data,
            options: opts,
            cached_mask: None,
            packed_execution: false,
            cached_plan: None,
        };
        let mut rng_d = rng_from_seed(61);
        let dense = dense_task.run(&mut rng_d);
        let packed_task = ClientTask {
            packed_execution: true,
            ..dense_task
        };
        let mut rng_p = rng_from_seed(61);
        let packed = packed_task.run(&mut rng_p);
        assert!(packed.plan.is_none(), "decayed rounds must not pack");
        assert_eq!(dense.outcome.residual, packed.outcome.residual);
        assert_eq!(dense.state.personal_model, packed.state.personal_model);
    }

    #[test]
    fn cached_plans_reproduce_fresh_compilation() {
        let (mlp, data, global) = setup();
        let state = ClientState::default();
        let task = ClientTask {
            arch: &mlp,
            global: &global,
            state: &state,
            data: &data,
            options: options(0.5),
            cached_mask: None,
            packed_execution: true,
            cached_plan: None,
        };
        let mut rng1 = rng_from_seed(52);
        let fresh = task.run(&mut rng1);
        let plan = fresh.plan.clone().expect("compiled");
        // Re-run with the mask and plan served from the "cache".
        let cached_task = ClientTask {
            cached_mask: Some(&fresh.outcome.mask),
            cached_plan: Some(plan),
            ..task
        };
        let mut rng2 = rng_from_seed(52);
        let cached = cached_task.run(&mut rng2);
        assert!(cached.mask_cache_hit);
        assert_eq!(cached.outcome.residual, fresh.outcome.residual);
        assert_eq!(cached.state.indicator, fresh.state.indicator);
    }

    #[test]
    fn lower_ratio_uploads_fewer_parameters() {
        let (mlp, data, global) = setup();
        let mut rng = rng_from_seed(10);
        let mut s1 = ClientState::default();
        let mut s2 = ClientState::default();
        let big = client_update(&mlp, &global, &mut s1, &data, &options(0.9), &mut rng);
        let small = client_update(&mlp, &global, &mut s2, &data, &options(0.2), &mut rng);
        assert!(small.uploaded_params < big.uploaded_params);
    }
}
