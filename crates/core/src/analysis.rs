//! Probes for the quantities appearing in the paper's convergence analysis
//! (Section IV-C).
//!
//! These are not needed to *run* FedLPS; they let tests and the ablation
//! benches empirically track the terms the theory bounds — the average squared
//! gap between local and global parameters (Lemma 1) and the average squared
//! norm of masked local gradients (Assumption 3 / Theorem 1's left-hand side).

use fedlps_tensor::ops::dist_sq;

/// Lemma 1's left-hand side: `(1/K) Σ_k ‖ω_k − ω‖²` for the clients that
/// participated in a round.
pub fn mean_parameter_gap(global: &[f32], locals: &[Vec<f32>]) -> f64 {
    if locals.is_empty() {
        return 0.0;
    }
    locals
        .iter()
        .map(|l| dist_sq(l, global) as f64)
        .sum::<f64>()
        / locals.len() as f64
}

/// The squared norm of an averaged masked gradient —
/// `‖(1/K) Σ_k m_k ⊙ ∇F_k‖²`, the quantity Theorem 1 drives to zero.
pub fn averaged_gradient_norm_sq(masked_grads: &[Vec<f32>]) -> f64 {
    if masked_grads.is_empty() {
        return 0.0;
    }
    let dim = masked_grads[0].len();
    let mut mean = vec![0.0f64; dim];
    for g in masked_grads {
        assert_eq!(g.len(), dim);
        for (m, &v) in mean.iter_mut().zip(g.iter()) {
            *m += v as f64 / masked_grads.len() as f64;
        }
    }
    mean.iter().map(|v| v * v).sum()
}

/// The learning-rate ceiling of Lemma 1 / Theorem 1:
/// `η ≤ sqrt(1 / (24 · E · R · V · L²))`.
pub fn learning_rate_bound(local_iterations: usize, rounds: usize, v: f64, lipschitz: f64) -> f64 {
    let denom = 24.0
        * local_iterations.max(1) as f64
        * rounds.max(1) as f64
        * v.max(1e-12)
        * lipschitz.max(1e-12).powi(2);
    (1.0 / denom).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_gap_basics() {
        let global = vec![0.0, 0.0];
        let locals = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        assert!((mean_parameter_gap(&global, &locals) - 2.5).abs() < 1e-9);
        assert_eq!(mean_parameter_gap(&global, &[]), 0.0);
    }

    #[test]
    fn gradient_norm_of_cancelling_gradients_is_zero() {
        let grads = vec![vec![1.0, -1.0], vec![-1.0, 1.0]];
        assert!(averaged_gradient_norm_sq(&grads) < 1e-12);
        let aligned = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        assert!((averaged_gradient_norm_sq(&aligned) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_bound_shrinks_with_horizon() {
        let short = learning_rate_bound(5, 10, 1.0, 1.0);
        let long = learning_rate_bound(5, 1000, 1.0, 1.0);
        assert!(long < short);
        assert!(short > 0.0 && short.is_finite());
    }
}
