//! **FedLPS** — Learnable Personalized Sparsification for heterogeneous
//! federated learning (the paper's primary contribution).
//!
//! FedLPS customises a sparse submodel per client along two learnable axes:
//!
//! 1. **Learnable sparse pattern** — each client maintains a per-unit
//!    importance indicator `Q` that is co-trained with the model through the
//!    importance-associated regularisation loss (Eq. 6-9). The sparse pattern
//!    is the `(1 − s)`-quantile threshold of `Q` (Eq. 4), so the submodel keeps
//!    the units that matter most for the client's own data.
//! 2. **Adaptive sparse ratio** — the server runs one P-UCBV bandit per client
//!    (Algorithm 2) that learns the superimposed effect of device capability
//!    and data difficulty from the reward `G(s) = (U(a^r) − U(a^{r−1})) / T^r`
//!    and proposes the next ratio.
//!
//! Clients upload only the nonzero residuals `(ω^r − ω_{k,E}) ⊙ m_{k,E}`
//! (Eq. 12); the server folds them into the dense global model with the
//! data-size-weighted rule of Eq. (13).
//!
//! Module map: [`config`] (hyper-parameters and ablation switches),
//! [`importance`] (the indicator and its straight-through gradient),
//! [`loss`] (the three-term objective), [`client`] (Algorithm 1's
//! `ClientUpdate`), [`server`] (aggregation), [`algorithm`] (the
//! [`FedLps`] driver implementing [`fedlps_sim::FlAlgorithm`]) and
//! [`analysis`] (probes for the quantities bounded by the convergence
//! analysis).

pub mod algorithm;
pub mod analysis;
pub mod client;
pub mod config;
pub mod importance;
pub mod loss;
pub mod server;

pub use algorithm::FedLps;
pub use config::FedLpsConfig;
