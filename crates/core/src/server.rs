//! Server-side aggregation (Eq. 13).

/// One staged client contribution: its data-size weight `|D_k|` and the masked
/// residual `(ω^r − ω_{k,E}) ⊙ m_{k,E}` it uploaded.
#[derive(Debug, Clone)]
pub struct StagedUpdate {
    /// Aggregation weight `|D_k|`.
    pub weight: f64,
    /// Masked residual update (Eq. 12).
    pub residual: Vec<f32>,
}

/// Eq. (13): `ω^{r+1} = Σ_k |D_k| (ω^r − ω̂_k) / Σ_k |D_k|`.
///
/// Because each client's residual is masked with its own personalized pattern
/// while `ω^r` is dense, the aggregate remains a relatively dense update of
/// the global parameters (the paper's observation below Eq. 13).
pub fn aggregate_residuals(global: &mut [f32], staged: &[StagedUpdate]) {
    if staged.is_empty() {
        return;
    }
    let total_weight: f64 = staged.iter().map(|s| s.weight).sum();
    assert!(total_weight > 0.0, "aggregation weights must be positive");
    let mut next = vec![0.0f32; global.len()];
    for s in staged {
        assert_eq!(s.residual.len(), global.len(), "residual length mismatch");
        let coeff = (s.weight / total_weight) as f32;
        for ((n, &g), &r) in next.iter_mut().zip(global.iter()).zip(s.residual.iter()) {
            *n += coeff * (g - r);
        }
    }
    global.copy_from_slice(&next);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_with_zero_residuals_is_identity() {
        let mut global = vec![1.0, -2.0, 3.0];
        let staged = vec![
            StagedUpdate {
                weight: 3.0,
                residual: vec![0.0; 3],
            },
            StagedUpdate {
                weight: 1.0,
                residual: vec![0.0; 3],
            },
        ];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn aggregation_moves_towards_client_models() {
        // One client with residual (ω^r − ω_k) = 1 on every coordinate means
        // its local model is ω^r − 1; with equal weights the global model moves
        // halfway when the other client reports no change.
        let mut global = vec![0.0, 0.0];
        let staged = vec![
            StagedUpdate {
                weight: 1.0,
                residual: vec![1.0, 1.0],
            },
            StagedUpdate {
                weight: 1.0,
                residual: vec![0.0, 0.0],
            },
        ];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![-0.5, -0.5]);
    }

    #[test]
    fn weights_bias_the_average() {
        let mut global = vec![0.0];
        let staged = vec![
            StagedUpdate {
                weight: 3.0,
                residual: vec![4.0],
            },
            StagedUpdate {
                weight: 1.0,
                residual: vec![0.0],
            },
        ];
        aggregate_residuals(&mut global, &staged);
        assert!((global[0] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_staging_is_a_noop() {
        let mut global = vec![5.0];
        aggregate_residuals(&mut global, &[]);
        assert_eq!(global, vec![5.0]);
    }

    #[test]
    #[should_panic]
    fn zero_weights_panic() {
        let mut global = vec![0.0];
        aggregate_residuals(
            &mut global,
            &[StagedUpdate {
                weight: 0.0,
                residual: vec![0.0],
            }],
        );
    }

    #[test]
    fn masked_residuals_only_affect_their_units() {
        // A residual that is zero outside a client's mask leaves the masked-out
        // coordinates at the weighted mean of ω^r itself (i.e. unchanged).
        let mut global = vec![2.0, 2.0];
        let staged = vec![StagedUpdate {
            weight: 1.0,
            residual: vec![1.0, 0.0],
        }];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![1.0, 2.0]);
    }
}
