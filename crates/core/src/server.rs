//! Server-side aggregation (Eq. 13), serial and merge-tree sharded.

use std::ops::Range;
use std::sync::Arc;

use fedlps_topo::MergePlan;

/// A client's uploaded residual `(ω^r − ω_{k,E}) ⊙ m_{k,E}` (Eq. 12), either
/// as a dense full-coordinate vector (the masked-dense execution path) or as
/// the packed delta plus the coordinates it lives on (the packed-submodel
/// path — what a physically sparse client actually uploads).
///
/// The two are interchangeable bit for bit: every coordinate the packed form
/// omits carries an exact `0.0` in the dense form, because masked parameters
/// are frozen at the global value and cross-connections into dropped units
/// receive no gradient. [`aggregate_residuals`] exploits this by scattering
/// the packed delta back into full coordinates during the absorption walk.
#[derive(Debug, Clone, PartialEq)]
pub enum Residual {
    /// Full-length residual vector; zeros outside the client's mask.
    Dense(Vec<f32>),
    /// Packed residual: `values[i]` lives at full coordinate `coords[i]`.
    /// `coords` is strictly ascending and shared (it is the compiled
    /// submodel's gather map); `len` is the full parameter count.
    Packed {
        coords: Arc<Vec<u32>>,
        values: Vec<f32>,
        len: usize,
    },
}

impl Residual {
    /// Full parameter count this residual addresses.
    pub fn len(&self) -> usize {
        match self {
            Residual::Dense(r) => r.len(),
            Residual::Packed { len, .. } => *len,
        }
    }

    /// Whether the residual addresses zero parameters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of coordinates actually carried (the upload payload size).
    pub fn stored_values(&self) -> usize {
        match self {
            Residual::Dense(r) => r.len(),
            Residual::Packed { values, .. } => values.len(),
        }
    }

    /// Expands to a dense full-coordinate vector.
    pub fn to_dense(&self) -> Vec<f32> {
        match self {
            Residual::Dense(r) => r.clone(),
            Residual::Packed {
                coords,
                values,
                len,
            } => {
                let mut out = vec![0.0f32; *len];
                for (&i, &v) in coords.iter().zip(values.iter()) {
                    out[i as usize] = v;
                }
                out
            }
        }
    }
}

/// One staged client contribution: its data-size weight `|D_k|` and the masked
/// residual `(ω^r − ω_{k,E}) ⊙ m_{k,E}` it uploaded.
#[derive(Debug, Clone)]
pub struct StagedUpdate {
    /// Aggregation weight `|D_k|`.
    pub weight: f64,
    /// Masked residual update (Eq. 12).
    pub residual: Residual,
}

/// Eq. (13): `ω^{r+1} = Σ_k |D_k| (ω^r − ω̂_k) / Σ_k |D_k|`.
///
/// Because each client's residual is masked with its own personalized pattern
/// while `ω^r` is dense, the aggregate remains a relatively dense update of
/// the global parameters (the paper's observation below Eq. 13). Packed
/// residuals are scattered back into full coordinates on the fly: the merge
/// walk performs the same `coeff * (g - r)` arithmetic in the same coordinate
/// order as the dense case with `r = 0` off-pattern, so packed and dense
/// uploads aggregate bit-identically.
pub fn aggregate_residuals(global: &mut [f32], staged: &[StagedUpdate]) {
    aggregate_residuals_tree(global, staged, 1);
}

/// Eq. (13) sharded over the [`MergePlan`] merge tree: the parameter vector
/// is split into `shards` contiguous coordinate ranges, each leaf replays
/// the full ascending-staged walk restricted to its range via
/// [`merge_residuals_range`], and the fixed-shape pairwise combine
/// reassembles the result by exact range concatenation. Leaves execute
/// through the simulator's backend seam
/// ([`fedlps_sim::backend::run_merge_shards`]), the one place parallelism is
/// allowed to live, so the result is **bit-identical** to the serial walk at
/// every shard count and worker count — sharding on the client axis would
/// reassociate float additions, sharding on the coordinate axis cannot.
pub fn aggregate_residuals_tree(global: &mut [f32], staged: &[StagedUpdate], shards: usize) {
    if staged.is_empty() {
        return;
    }
    for s in staged {
        assert_eq!(s.residual.len(), global.len(), "residual length mismatch");
    }
    let total_weight: f64 = staged.iter().map(|s| s.weight).sum();
    assert!(total_weight > 0.0, "aggregation weights must be positive");
    let plan = MergePlan::new(global.len(), shards);
    let segments = if plan.shards() == 1 {
        vec![merge_residuals_range(
            global,
            staged,
            total_weight,
            0..global.len(),
        )]
    } else {
        let global = &*global;
        fedlps_sim::backend::run_merge_shards(plan.shards(), |shard| {
            merge_residuals_range(global, staged, total_weight, plan.range(shard))
        })
    };
    let next = plan.combine(segments);
    global.copy_from_slice(&next);
}

/// One merge-tree leaf: the Eq. (13) absorption walk restricted to a
/// contiguous coordinate `range`, returning the `next[range]` segment.
///
/// Per coordinate `i` the walk performs exactly the serial full-vector
/// sequence — for each staged update in order, `next[i] += coeff * (g[i] -
/// r[i])` with `coeff = (weight / total_weight) as f32` — and coordinates
/// never interact, so restricting the walk to a range changes no bit of any
/// coordinate it covers. Packed residuals position their ascending-coords
/// cursor with a binary search and then replay the same peekable scatter
/// walk as the full-vector case.
pub fn merge_residuals_range(
    global: &[f32],
    staged: &[StagedUpdate],
    total_weight: f64,
    range: Range<usize>,
) -> Vec<f32> {
    let mut next = vec![0.0f32; range.len()];
    for s in staged {
        let coeff = (s.weight / total_weight) as f32;
        match &s.residual {
            Residual::Dense(residual) => {
                for ((n, &g), &r) in next
                    .iter_mut()
                    .zip(global[range.clone()].iter())
                    .zip(residual[range.clone()].iter())
                {
                    *n += coeff * (g - r);
                }
            }
            Residual::Packed { coords, values, .. } => {
                let skip = coords.partition_point(|&c| (c as usize) < range.start);
                let mut sparse = coords[skip..].iter().zip(values[skip..].iter()).peekable();
                for (i, (n, &g)) in next
                    .iter_mut()
                    .zip(global[range.clone()].iter())
                    .enumerate()
                {
                    let coord = range.start + i;
                    let r = match sparse.peek() {
                        Some(&(&c, &v)) if c as usize == coord => {
                            sparse.next();
                            v
                        }
                        _ => 0.0,
                    };
                    *n += coeff * (g - r);
                }
            }
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(weight: f64, residual: Vec<f32>) -> StagedUpdate {
        StagedUpdate {
            weight,
            residual: Residual::Dense(residual),
        }
    }

    #[test]
    fn aggregation_with_zero_residuals_is_identity() {
        let mut global = vec![1.0, -2.0, 3.0];
        let staged = vec![dense(3.0, vec![0.0; 3]), dense(1.0, vec![0.0; 3])];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn aggregation_moves_towards_client_models() {
        // One client with residual (ω^r − ω_k) = 1 on every coordinate means
        // its local model is ω^r − 1; with equal weights the global model moves
        // halfway when the other client reports no change.
        let mut global = vec![0.0, 0.0];
        let staged = vec![dense(1.0, vec![1.0, 1.0]), dense(1.0, vec![0.0, 0.0])];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![-0.5, -0.5]);
    }

    #[test]
    fn weights_bias_the_average() {
        let mut global = vec![0.0];
        let staged = vec![dense(3.0, vec![4.0]), dense(1.0, vec![0.0])];
        aggregate_residuals(&mut global, &staged);
        assert!((global[0] + 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_staging_is_a_noop() {
        let mut global = vec![5.0];
        aggregate_residuals(&mut global, &[]);
        assert_eq!(global, vec![5.0]);
    }

    #[test]
    #[should_panic]
    fn zero_weights_panic() {
        let mut global = vec![0.0];
        aggregate_residuals(&mut global, &[dense(0.0, vec![0.0])]);
    }

    #[test]
    fn masked_residuals_only_affect_their_units() {
        // A residual that is zero outside a client's mask leaves the masked-out
        // coordinates at the weighted mean of ω^r itself (i.e. unchanged).
        let mut global = vec![2.0, 2.0];
        let staged = vec![dense(1.0, vec![1.0, 0.0])];
        aggregate_residuals(&mut global, &staged);
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn packed_residuals_aggregate_bit_identically_to_their_dense_expansion() {
        let coords = Arc::new(vec![1u32, 3, 4]);
        let values = vec![0.25f32, -1.5, 2.0];
        let packed = StagedUpdate {
            weight: 2.0,
            residual: Residual::Packed {
                coords,
                values,
                len: 6,
            },
        };
        let expanded = StagedUpdate {
            weight: 2.0,
            residual: Residual::Dense(packed.residual.to_dense()),
        };
        let other = dense(3.0, vec![0.5, 0.0, -0.125, 0.0, 1.0, 0.0]);

        let base: Vec<f32> = vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6];
        let mut via_packed = base.clone();
        aggregate_residuals(&mut via_packed, &[packed, other.clone()]);
        let mut via_dense = base.clone();
        aggregate_residuals(&mut via_dense, &[expanded, other]);
        for (a, b) in via_packed.iter().zip(via_dense.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_ne!(via_packed, base, "the update moved the model");
    }

    #[test]
    fn residual_accessors() {
        let r = Residual::Packed {
            coords: Arc::new(vec![0, 2]),
            values: vec![1.0, 3.0],
            len: 4,
        };
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.stored_values(), 2);
        assert_eq!(r.to_dense(), vec![1.0, 0.0, 3.0, 0.0]);
        let d = Residual::Dense(vec![1.0, 2.0]);
        assert_eq!(d.stored_values(), 2);
        assert_eq!(d.to_dense(), vec![1.0, 2.0]);
    }
}
