//! The importance-associated regularisation loss (Eq. 6-9).
//!
//! `L_k = L_tr + μ·L_pr + λ·L_ir` where
//!
//! * `L_tr` — task loss of the *masked* model on the minibatch (Eq. 6);
//! * `L_pr = ‖ω − ω^r‖²` — proximal term keeping local updates close to the
//!   global model (Eq. 7);
//! * `L_ir = ‖Q − σ(|ω|_J)‖²` — importance regulariser preventing the
//!   indicator from drifting or over-sharpening (Eq. 8).

use fedlps_data::dataset::Dataset;
use fedlps_nn::model::{ModelArch, TrainStats};
use fedlps_nn::pack::PackedModel;

use crate::importance::ImportanceIndicator;

/// Decomposition of one evaluation of the FedLPS objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossBreakdown {
    /// Task (cross-entropy) loss of the masked model.
    pub task: f64,
    /// Proximal term `‖ω − ω^r‖²` (unweighted).
    pub proximal: f64,
    /// Importance regulariser `‖Q − σ(|ω|_J)‖²` (unweighted).
    pub importance: f64,
    /// `task + μ·proximal + λ·importance`.
    pub total: f64,
    /// Minibatch training accuracy of the masked model.
    pub accuracy: f64,
}

/// The FedLPS objective with its two regularisation weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceLoss {
    /// Weight `μ` of the proximal term.
    pub mu: f32,
    /// Weight `λ` of the importance regulariser.
    pub lambda: f32,
}

impl ImportanceLoss {
    /// Creates the objective.
    pub fn new(mu: f32, lambda: f32) -> Self {
        Self { mu, lambda }
    }

    /// Evaluates the objective on a minibatch and *accumulates* the gradient
    /// with respect to the (masked) model parameters into `grad` — the task
    /// gradient from the model's backward pass plus the proximal gradient
    /// `2μ(ω − ω^r)`. The gradient with respect to `Q` is obtained separately
    /// via [`ImportanceIndicator::gradient`] using the same `grad` buffer.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate(
        &self,
        arch: &dyn ModelArch,
        masked_params: &[f32],
        global_params: &[f32],
        indicator: &ImportanceIndicator,
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> LossBreakdown {
        let stats = arch.loss_and_grad(masked_params, data, indices, grad);
        self.regularize(arch, stats, masked_params, global_params, indicator, grad)
    }

    /// [`evaluate`](Self::evaluate) with the task forward/backward running on
    /// the physically packed submodel: the kept parameters are gathered from
    /// `masked_params` into `packed_params`, the compact model computes the
    /// minibatch loss and gradient in `packed_grad`, and the packed gradient
    /// is scattered back into `grad` (which must arrive zeroed, exactly as
    /// `loss_and_grad` expects). Both packed buffers are caller-provided
    /// `packed_len()` slices — the client step carves them out of its
    /// per-step [`Arena`](fedlps_tensor::Arena) — and are fully overwritten
    /// here, so their prior contents never matter.
    ///
    /// Bit-identical to the masked-dense evaluation: the packed task pass
    /// accumulates the same nonzero terms in the same order, the masked-dense
    /// task gradient is exactly zero outside the packed set, and the
    /// regularisation tail below runs the identical full-coordinate loops.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_packed(
        &self,
        arch: &dyn ModelArch,
        packed: &PackedModel,
        packed_params: &mut [f32],
        packed_grad: &mut [f32],
        masked_params: &[f32],
        global_params: &[f32],
        indicator: &ImportanceIndicator,
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> LossBreakdown {
        packed.gather_params_into(masked_params, packed_params);
        packed_grad.fill(0.0);
        let stats = packed
            .arch()
            .loss_and_grad(packed_params, data, indices, packed_grad);
        packed.scatter_add(packed_grad, grad);
        self.regularize(arch, stats, masked_params, global_params, indicator, grad)
    }

    /// The shared full-coordinate tail of both evaluation paths: proximal
    /// term + gradient, importance-regulariser value, total assembly.
    fn regularize(
        &self,
        arch: &dyn ModelArch,
        stats: TrainStats,
        masked_params: &[f32],
        global_params: &[f32],
        indicator: &ImportanceIndicator,
        grad: &mut [f32],
    ) -> LossBreakdown {
        // Proximal term and its gradient (evaluated at the masked/effective
        // parameters, which coincide with the dense ones on retained entries).
        let mut proximal = 0.0f64;
        for ((g, &p), &gp) in grad
            .iter_mut()
            .zip(masked_params.iter())
            .zip(global_params.iter())
        {
            let diff = p - gp;
            proximal += (diff * diff) as f64;
            *g += self.mu * diff;
        }

        // Importance regulariser value (its Q-gradient lives in `importance`).
        let magnitudes = arch.unit_layout().magnitude_sums(masked_params);
        let importance: f64 = indicator
            .scores()
            .iter()
            .zip(magnitudes.iter())
            .map(|(&q, &m)| {
                let d = q - 1.0 / (1.0 + (-m).exp());
                (d * d) as f64
            })
            .sum();

        let total = stats.loss + self.mu as f64 * proximal + self.lambda as f64 * importance;
        LossBreakdown {
            task: stats.loss,
            proximal,
            importance,
            total,
            accuracy: stats.accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::dataset::InputKind;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_tensor::{rng_from_seed, Matrix};

    fn setup() -> (Mlp, Dataset, Vec<f32>) {
        let mlp = Mlp::new(MlpConfig {
            input_dim: 5,
            hidden: vec![6],
            num_classes: 3,
        });
        let mut rng = rng_from_seed(11);
        let features = Matrix::random_normal(20, 5, 1.0, &mut rng);
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        let data = Dataset::new(features, labels, 3, InputKind::Vector { dim: 5 });
        let params = mlp.init_params(&mut rng);
        (mlp, data, params)
    }

    #[test]
    fn breakdown_components_are_consistent() {
        let (mlp, data, params) = setup();
        let indicator = ImportanceIndicator::from_params(mlp.unit_layout(), &params);
        let loss = ImportanceLoss::new(0.5, 2.0);
        let mut grad = vec![0.0f32; params.len()];
        let indices: Vec<usize> = (0..10).collect();
        let breakdown = loss.evaluate(
            &mlp, &params, &params, &indicator, &data, &indices, &mut grad,
        );
        // At ω == ω^r the proximal term vanishes, and at Q == σ(|ω|_J) the
        // importance term vanishes, so total == task.
        assert!(breakdown.proximal.abs() < 1e-9);
        assert!(breakdown.importance < 1e-9);
        assert!((breakdown.total - breakdown.task).abs() < 1e-9);
        assert!(breakdown.accuracy >= 0.0 && breakdown.accuracy <= 1.0);
    }

    #[test]
    fn proximal_gradient_points_back_to_global() {
        let (mlp, data, params) = setup();
        let indicator = ImportanceIndicator::from_params(mlp.unit_layout(), &params);
        let mut drifted = params.clone();
        for p in &mut drifted {
            *p += 1.0;
        }
        let indices: Vec<usize> = (0..10).collect();
        // Large μ so the proximal term dominates the task gradient.
        let loss = ImportanceLoss::new(50.0, 0.0);
        let mut grad = vec![0.0f32; params.len()];
        let breakdown = loss.evaluate(
            &mlp, &drifted, &params, &indicator, &data, &indices, &mut grad,
        );
        assert!(breakdown.proximal > 0.0);
        // Moving against the gradient must shrink the distance to the global model.
        let mut stepped = drifted.clone();
        fedlps_tensor::ops::axpy(&mut stepped, -1e-3, &grad);
        assert!(
            fedlps_tensor::ops::dist_sq(&stepped, &params)
                < fedlps_tensor::ops::dist_sq(&drifted, &params)
        );
    }

    #[test]
    fn lambda_scales_total_loss() {
        let (mlp, data, params) = setup();
        // An indicator far from σ(|ω|_J) gives a positive importance term.
        let indicator = ImportanceIndicator::from_scores(vec![-1.0; 6]);
        let indices: Vec<usize> = (0..10).collect();
        let mut g1 = vec![0.0f32; params.len()];
        let mut g2 = vec![0.0f32; params.len()];
        let small = ImportanceLoss::new(0.0, 0.1)
            .evaluate(&mlp, &params, &params, &indicator, &data, &indices, &mut g1);
        let large = ImportanceLoss::new(0.0, 10.0)
            .evaluate(&mlp, &params, &params, &indicator, &data, &indices, &mut g2);
        assert!(large.total > small.total);
        assert!(
            (large.importance - small.importance).abs() < 1e-9,
            "unweighted component is identical"
        );
    }
}
