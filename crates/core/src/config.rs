//! FedLPS hyper-parameters and ablation switches.

use fedlps_bandit::pucbv::PUcbvConfig;
use fedlps_bandit::ratio_policy::RatioPolicy;
use fedlps_sparse::pattern::PatternStrategy;
use serde::{Deserialize, Serialize};

/// Configuration of the FedLPS algorithm.
///
/// The defaults follow the paper's experimental setup: `μ = 1`, `λ = 1`,
/// the learnable importance pattern and P-UCBV ratio decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedLpsConfig {
    /// Weight `μ` of the local-parameter regularisation term (Eq. 7).
    pub mu: f32,
    /// Weight `λ` of the importance regularisation term (Eq. 8).
    pub lambda: f32,
    /// Learning rate used for the importance-indicator update (Eq. 11); the
    /// paper uses the shared round learning rate, so this defaults to the
    /// model learning rate and is exposed only for sensitivity studies.
    pub importance_lr: Option<f32>,
    /// How sparse ratios are decided (Table II ablations swap this out).
    pub ratio_policy: RatioPolicy,
    /// How sparse patterns are derived. FedLPS proper uses
    /// [`PatternStrategy::Importance`]; the Figure 9a ablation sweeps the
    /// heuristics through this switch while keeping the rest of the pipeline
    /// identical.
    pub pattern: PatternStrategy,
    /// Whether the per-round *available* capability (dynamic heterogeneity) is
    /// used to cap ratios, in addition to the static tier.
    pub respect_dynamic_capability: bool,
    /// Quantize P-UCBV's arm space at the model's shape resolution: ratios
    /// extracting equal per-layer retained-unit counts are indistinguishable
    /// to the environment, so they collapse to one arm and repeat proposals
    /// from a stable partition hit the cross-round mask cache. Semantics-
    /// preserving; off only for the continuous-sampling ablation.
    pub quantize_arm_space: bool,
    /// Rebuild each client's cached mask every `n` participations so the
    /// pattern keeps tracking the still-training importance indicator
    /// (`None` = freeze until the bandit moves the ratio to a different
    /// shape — the default cache contract). Used by the stable-ratio
    /// ablations (RCR / Fixed), whose ratios never change shape on their own.
    pub mask_refresh_every: Option<u32>,
}

impl Default for FedLpsConfig {
    fn default() -> Self {
        Self {
            mu: 1.0,
            lambda: 1.0,
            importance_lr: None,
            ratio_policy: RatioPolicy::PUcbv(PUcbvConfig::default()),
            pattern: PatternStrategy::Importance,
            respect_dynamic_capability: true,
            quantize_arm_space: true,
            mask_refresh_every: None,
        }
    }
}

impl FedLpsConfig {
    /// FedLPS with P-UCBV configured for a given federation size (`ξ = R/(K·ϵ)`
    /// depends on the round budget and selection fraction).
    pub fn for_federation(rounds: usize, num_clients: usize, clients_per_round: usize) -> Self {
        let expected = clients_per_round.max(1) as f64;
        let _ = num_clients;
        Self {
            ratio_policy: RatioPolicy::PUcbv(PUcbvConfig {
                total_rounds: rounds.max(1),
                expected_selections: expected,
                ..PUcbvConfig::default()
            }),
            ..Self::default()
        }
    }

    /// The FLST ablation of Table II: the learnable pattern with a *fixed*
    /// uniform sparse ratio instead of P-UCBV.
    pub fn flst(fixed_ratio: f64) -> Self {
        Self {
            ratio_policy: RatioPolicy::Fixed(fixed_ratio),
            ..Self::default()
        }
    }

    /// The RCR ablation of Table II: learnable pattern, but ratios follow the
    /// rigid resource-controlled rule `s_k = z_k`.
    pub fn rcr() -> Self {
        Self {
            ratio_policy: RatioPolicy::ResourceControlled,
            ..Self::default()
        }
    }

    /// A pattern-ablated variant (Figure 9a): identical training pipeline but
    /// with a heuristic pattern strategy at a fixed ratio.
    pub fn with_pattern(pattern: PatternStrategy, fixed_ratio: f64) -> Self {
        Self {
            pattern,
            ratio_policy: RatioPolicy::Fixed(fixed_ratio),
            ..Self::default()
        }
    }

    /// Builder-style override of the regularisation weights.
    pub fn with_regularisation(mut self, mu: f32, lambda: f32) -> Self {
        self.mu = mu;
        self.lambda = lambda;
        self
    }

    /// Builder-style override of the ratio policy.
    pub fn with_ratio_policy(mut self, policy: RatioPolicy) -> Self {
        self.ratio_policy = policy;
        self
    }

    /// Builder-style override of the arm-space quantization switch.
    pub fn with_quantize_arm_space(mut self, quantize: bool) -> Self {
        self.quantize_arm_space = quantize;
        self
    }

    /// Builder-style override of the mask-cache refresh period.
    pub fn with_mask_refresh_every(mut self, refresh_every: Option<u32>) -> Self {
        self.mask_refresh_every = refresh_every;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = FedLpsConfig::default();
        assert_eq!(cfg.mu, 1.0);
        assert_eq!(cfg.lambda, 1.0);
        assert_eq!(cfg.pattern, PatternStrategy::Importance);
        assert!(matches!(cfg.ratio_policy, RatioPolicy::PUcbv(_)));
    }

    #[test]
    fn ablation_constructors() {
        assert!(matches!(FedLpsConfig::flst(0.5).ratio_policy, RatioPolicy::Fixed(r) if r == 0.5));
        assert!(matches!(
            FedLpsConfig::rcr().ratio_policy,
            RatioPolicy::ResourceControlled
        ));
        let p = FedLpsConfig::with_pattern(PatternStrategy::Random, 0.4);
        assert_eq!(p.pattern, PatternStrategy::Random);
    }

    #[test]
    fn federation_constructor_wires_bandit_horizon() {
        let cfg = FedLpsConfig::for_federation(200, 100, 10);
        match cfg.ratio_policy {
            RatioPolicy::PUcbv(c) => {
                assert_eq!(c.total_rounds, 200);
                assert_eq!(c.expected_selections, 10.0);
            }
            _ => panic!("expected P-UCBV"),
        }
    }

    #[test]
    fn builders() {
        let cfg = FedLpsConfig::default()
            .with_regularisation(0.5, 2.0)
            .with_ratio_policy(RatioPolicy::Dense)
            .with_quantize_arm_space(false)
            .with_mask_refresh_every(Some(4));
        assert_eq!(cfg.mu, 0.5);
        assert_eq!(cfg.lambda, 2.0);
        assert_eq!(cfg.ratio_policy, RatioPolicy::Dense);
        assert!(!cfg.quantize_arm_space);
        assert_eq!(cfg.mask_refresh_every, Some(4));
        // Defaults: quantized arms, frozen-until-shape-change masks.
        assert!(FedLpsConfig::default().quantize_arm_space);
        assert_eq!(FedLpsConfig::default().mask_refresh_every, None);
    }
}
