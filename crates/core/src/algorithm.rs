//! The FedLPS server/driver implementing [`FlAlgorithm`].

use std::collections::BTreeMap;
use std::sync::Arc;

use fedlps_bandit::ratio_policy::{ClientInit, RatioController, RatioFeedback};
use fedlps_nn::model::EvalStats;
use fedlps_nn::pack::PackedModel;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sim::train::account_round;
use fedlps_sparse::cache::MaskCache;
use fedlps_sparse::mask::UnitMask;
use rand::rngs::StdRng;

use crate::client::{ClientState, ClientTask, ClientUpdateOptions};
use crate::config::FedLpsConfig;
use crate::server::{aggregate_residuals_tree, StagedUpdate};

/// How a client step interacted with the cross-round mask cache.
enum MaskCacheEvent {
    /// The pattern strategy is not cacheable across rounds; no lookup ran.
    Bypassed,
    /// The cached mask was served. When the entry predates packed execution
    /// (or was inserted before its plan compiled), the task's freshly
    /// compiled plan rides along to be attached.
    Hit {
        attach_plan: Option<Arc<PackedModel>>,
    },
    /// A fresh mask was built and should be installed at this ratio, along
    /// with the packed submodel compiled for it (if packing ran).
    Miss {
        ratio: f64,
        mask: UnitMask,
        plan: Option<Arc<PackedModel>>,
    },
}

/// The payload a FedLPS client step hands back through the round loop's
/// deterministic reduce: everything `run` used to write into `&mut self`.
struct FedLpsUpdate {
    client: usize,
    state: ClientState,
    staged: StagedUpdate,
    feedback: RatioFeedback,
    cache_event: MaskCacheEvent,
}

/// FedLPS: learnable personalized sparsification with P-UCBV ratio decisions.
///
/// Create it with [`FedLps::new`], hand it to
/// [`Simulator::run`](fedlps_sim::runner::Simulator::run) and read the
/// resulting [`RunResult`](fedlps_sim::metrics::RunResult).
#[derive(Debug)]
pub struct FedLps {
    config: FedLpsConfig,
    global: Vec<f32>,
    /// Per-client persistent state, materialized on first participation and
    /// stored sparsely: a client that never trained reads as
    /// [`ClientState::default`], exactly as the former dense
    /// `Vec<ClientState>` of defaults did, but the map costs `O(participants)`
    /// memory instead of `O(population)`.
    clients: BTreeMap<usize, ClientState>,
    /// The state every untouched client reads as (kept as a field so
    /// [`client_state`](Self::client_state) can hand out a reference).
    blank: ClientState,
    controller: Option<RatioController>,
    staged: Vec<StagedUpdate>,
    feedback: Vec<(usize, RatioFeedback)>,
    /// Cross-round mask reuse: a client's pattern is rebuilt only when the
    /// bandit moves its ratio to a different submodel shape.
    mask_cache: Option<MaskCache>,
}

impl FedLps {
    /// Creates a FedLPS driver with the given configuration.
    pub fn new(config: FedLpsConfig) -> Self {
        Self {
            config,
            global: Vec::new(),
            clients: BTreeMap::new(),
            blank: ClientState::default(),
            controller: None,
            staged: Vec::new(),
            feedback: Vec::new(),
            mask_cache: None,
        }
    }

    /// FedLPS with the paper's default configuration sized for the federation
    /// described by `env` (bandit horizon = round budget, etc.).
    pub fn for_env(env: &FlEnv) -> Self {
        Self::new(FedLpsConfig::for_federation(
            env.config.rounds,
            env.num_clients(),
            env.config.clients_per_round,
        ))
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &FedLpsConfig {
        &self.config
    }

    /// Current dense global parameters (empty before `setup`).
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// A client's persistent state (indicator, personalized model, last
    /// mask). Clients that never participated read as
    /// [`ClientState::default`] without materializing anything.
    pub fn client_state(&self, client: usize) -> &ClientState {
        self.clients.get(&client).unwrap_or(&self.blank)
    }

    /// Number of clients whose persistent state has actually materialized —
    /// bounded by the distinct participants, not the registered population.
    pub fn materialized_clients(&self) -> usize {
        self.clients.len()
    }

    /// Number of bandit arms the ratio controller holds: the full population
    /// for a dense controller, only the touched clients for a lazy one
    /// (0 before `setup`).
    pub fn materialized_arms(&self) -> usize {
        self.controller.as_ref().map_or(0, |c| c.materialized())
    }

    /// The sparse ratios the controller currently proposes for every client.
    /// `O(population)`: panics on a lazy (population-scale) controller, where
    /// per-client proposals are read through the round flow instead.
    pub fn proposed_ratios(&self) -> Vec<f64> {
        self.controller
            .as_ref()
            .map(|c| c.proposals())
            .unwrap_or_default()
    }

    /// The cross-round mask cache and its hit/miss counters (populated after
    /// `setup`).
    pub fn mask_cache(&self) -> Option<&MaskCache> {
        self.mask_cache.as_ref()
    }

    /// The sparse ratio a client uses this round given its dynamically
    /// `available` device profile: the server proposal capped by the static
    /// tier, then by what the device can actually spare.
    fn round_ratio(&self, available: &fedlps_device::DeviceProfile, client: usize) -> f64 {
        let controller = self.controller.as_ref().expect("setup() not called");
        let mut ratio = controller.ratio_for(client);
        if self.config.respect_dynamic_capability {
            ratio = ratio.min(available.max_sparse_ratio());
        }
        ratio.max(0.01)
    }

    /// The shared serial absorb: persists the client's state, settles its
    /// mask-cache event and stages its residual with the given server-side
    /// weight scale (1 for synchronous rounds, the staleness discount
    /// `alpha^staleness` under asynchronous absorption).
    fn absorb(&mut self, update: FedLpsUpdate, weight_scale: f64) {
        let FedLpsUpdate {
            client,
            state,
            mut staged,
            feedback,
            cache_event,
        } = update;
        self.clients.insert(client, state);
        if let Some(cache) = self.mask_cache.as_mut() {
            match cache_event {
                MaskCacheEvent::Bypassed => {}
                MaskCacheEvent::Hit { attach_plan } => {
                    cache.record(true);
                    cache.mark_served(client);
                    if let Some(plan) = attach_plan {
                        cache.attach_plan(client, plan);
                    }
                }
                MaskCacheEvent::Miss { ratio, mask, plan } => {
                    cache.record(false);
                    cache.insert(client, ratio, mask);
                    if let Some(plan) = plan {
                        cache.attach_plan(client, plan);
                    }
                }
            }
        }
        staged.weight *= weight_scale;
        self.staged.push(staged);
        self.feedback.push((client, feedback));
    }

    fn update_options(&self, env: &FlEnv, ratio: f64, round: usize) -> ClientUpdateOptions {
        ClientUpdateOptions {
            iterations: env.config.local_iterations,
            batch_size: env.config.batch_size,
            sgd: env.config.sgd,
            importance_lr: self.config.importance_lr.unwrap_or(env.config.sgd.lr),
            mu: self.config.mu,
            lambda: self.config.lambda,
            pattern: self.config.pattern,
            ratio,
            round,
        }
    }
}

impl FlAlgorithm for FedLps {
    fn name(&self) -> String {
        let ratio = self.config.ratio_policy.name();
        let pattern = self.config.pattern.name();
        if pattern == "learnable-importance" && ratio == "p-ucbv" {
            "FedLPS".to_string()
        } else {
            format!("FedLPS[{pattern},{ratio}]")
        }
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        self.clients.clear();
        let units_per_layer = env.arch.unit_layout().units_per_layer();
        let mut controller = if env.fleet.is_lazy() {
            // Population-scale path: seeding the bandits with capabilities and
            // initial accuracies for every registered client would be an
            // `O(population)` sweep (each accuracy is a full evaluation pass).
            // Hand the controller a pure per-client initializer instead; it
            // materializes an arm the first time a client is actually touched.
            let arch = Arc::clone(&env.arch);
            let fleet = env.fleet.clone();
            let data = env.data.clone();
            let global = self.global.clone();
            let provider = Box::new(move |k: usize| ClientInit {
                capability: fleet.static_profile(k).capability,
                initial_accuracy: arch
                    .evaluate(&global, &data.clients[k % data.num_clients()].train)
                    .accuracy,
            });
            RatioController::lazy(
                self.config.ratio_policy.clone(),
                env.num_clients(),
                provider,
                env.config.seed,
            )
        } else {
            RatioController::new(
                self.config.ratio_policy.clone(),
                &env.capabilities(),
                &env.initial_training_accuracy(&self.global),
                env.config.seed,
            )
        };
        if self.config.quantize_arm_space {
            // Collapse P-UCBV's continuous samples onto the model's shape
            // resolution so repeat proposals reuse cached masks.
            controller = controller.with_shape_resolution(&units_per_layer);
        }
        self.controller = Some(controller);
        self.staged.clear();
        self.feedback.clear();
        self.mask_cache = Some(
            MaskCache::new(units_per_layer).with_refresh_every(self.config.mask_refresh_every),
        );
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let available = env.fleet.available_profile(client, round);
        let ratio = self.round_ratio(&available, client);

        // Pure snapshot lookup against the cache; the hit/miss is accounted
        // (and a fresh mask installed) in `absorb_update`, serially. Pattern
        // strategies whose masks depend on more than the ratio (random
        // resampling, rolling windows, live weight magnitudes) bypass the
        // cache entirely — reusing their masks would change their semantics.
        let caching = self.config.pattern.cacheable_across_rounds();
        let (cached_mask, cached_plan) = if caching {
            match self.mask_cache.as_ref() {
                Some(cache) => (
                    cache.lookup(client, ratio),
                    cache.lookup_plan(client, ratio),
                ),
                None => (None, None),
            }
        } else {
            (None, None)
        };
        let had_cached_plan = cached_plan.is_some();

        let options = self.update_options(env, ratio, round);
        let task = ClientTask {
            arch: &*env.arch,
            global: &self.global,
            state: self.client_state(client),
            data: env.train_data(client),
            options,
            cached_mask,
            packed_execution: env.config.packed_execution,
            cached_plan,
        };
        let output = task.run(rng);
        let outcome = output.outcome;

        let accounting = account_round(
            &*env.arch,
            &env.cost,
            &available,
            Some(&outcome.mask),
            env.config.local_iterations,
            env.config.batch_size,
            outcome.uploaded_params,
            env.arch.param_count(),
        );

        let cache_event = if !caching {
            MaskCacheEvent::Bypassed
        } else if output.mask_cache_hit {
            MaskCacheEvent::Hit {
                attach_plan: if had_cached_plan {
                    None
                } else {
                    output.plan.clone()
                },
            }
        } else {
            MaskCacheEvent::Miss {
                ratio,
                mask: outcome.mask,
                plan: output.plan.clone(),
            }
        };
        let report = ClientReport {
            client_id: client,
            flops: accounting.flops,
            upload_bytes: accounting.upload_bytes,
            download_bytes: accounting.download_bytes,
            local_cost: accounting.local_cost,
            train_accuracy: outcome.mean_accuracy,
            train_loss: outcome.mean_loss,
            sparse_ratio: ratio,
            selection_utility: 0.0,
            participations: 0,
            mask_cache_hits: matches!(cache_event, MaskCacheEvent::Hit { .. }) as u32,
            mask_cache_misses: matches!(cache_event, MaskCacheEvent::Miss { .. }) as u32,
        };
        ClientOutcome::new(
            report,
            FedLpsUpdate {
                client,
                state: output.state,
                staged: StagedUpdate {
                    weight: env.train_size(client).max(1.0),
                    residual: outcome.residual,
                },
                feedback: RatioFeedback {
                    ratio,
                    local_cost: accounting.local_cost.total(),
                    accuracy: outcome.mean_accuracy,
                },
                cache_event,
            },
        )
    }

    fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
        let update = *update
            .downcast::<FedLpsUpdate>()
            .expect("FedLPS update payload");
        self.absorb(update, 1.0);
    }

    fn absorb_update_stale(
        &mut self,
        _env: &FlEnv,
        _round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        let update = *update
            .downcast::<FedLpsUpdate>()
            .expect("FedLPS update payload");
        self.absorb(update, weight);
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        // The merge tree shards the absorption walk on the coordinate axis,
        // so following the configured parallelism here is bit-free: every
        // shard count reproduces the serial walk exactly.
        aggregate_residuals_tree(
            &mut self.global,
            &self.staged,
            env.config.effective_parallelism().max(1),
        );
        self.staged.clear();
        if let Some(controller) = self.controller.as_mut() {
            for (client, feedback) in self.feedback.drain(..) {
                controller.report(client, feedback);
            }
        }
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        // Personalized deployment: the client's own sparse model if it has
        // ever trained, otherwise the dense global model.
        match &self.client_state(client).personal_model {
            Some(personal) => env.arch.evaluate(personal, env.test_data(client)),
            None => env.arch.evaluate(&self.global, env.test_data(client)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn tiny_env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny().with_rounds(8),
        )
    }

    #[test]
    fn fedlps_runs_and_improves_over_initialization() {
        let env = tiny_env();
        let initial = env.global_model_accuracy(&env.initial_params());
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let result = sim.run(&mut algo);
        assert_eq!(result.algorithm, "FedLPS");
        assert!(
            result.best_accuracy > initial,
            "FedLPS should beat the untrained model ({} vs {initial})",
            result.best_accuracy
        );
        // Some sparsification must actually have happened on this
        // heterogeneous fleet.
        assert!(result.mean_sparse_ratio() < 0.999);
    }

    #[test]
    fn ratios_respect_capabilities() {
        let env = tiny_env();
        let caps = env.capabilities();
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let _ = sim.run(&mut algo);
        for (k, ratio) in algo.proposed_ratios().iter().enumerate() {
            assert!(
                *ratio <= caps[k] + 1e-9,
                "client {k}: proposed ratio {ratio} exceeds capability {}",
                caps[k]
            );
        }
    }

    #[test]
    fn personalized_states_are_created_for_participants() {
        let env = tiny_env();
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let _ = sim.run(&mut algo);
        let trained = (0..sim.env().num_clients())
            .filter(|&k| algo.client_state(k).personal_model.is_some())
            .count();
        assert!(trained > 0);
        for k in 0..sim.env().num_clients() {
            if let Some(mask) = &algo.client_state(k).last_mask {
                assert_eq!(mask.len(), sim.env().arch.unit_layout().total_units());
            }
        }
    }

    #[test]
    fn sharded_fedlps_matches_serial_bit_for_bit() {
        let run = |parallelism: usize| {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny()
                    .with_rounds(8)
                    .with_parallelism(parallelism),
            );
            let sim = Simulator::new(env);
            let mut algo = FedLps::for_env(sim.env());
            sim.run(&mut algo)
        };
        let serial = run(1);
        let sharded = run(4);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn packed_execution_is_bit_identical_in_every_round_mode() {
        // The acceptance gate of the packed-submodel tentpole: flipping
        // `FlConfig::packed_execution` must not move a single bit of the
        // metric trace under any round mode (CI diffs the quickstart JSON
        // the same way).
        use fedlps_sim::config::RoundMode;
        for mode in [
            RoundMode::Synchronous,
            RoundMode::deadline(0.5, 2),
            RoundMode::asynchronous(3, 0.5),
        ] {
            let run = |packed: bool| {
                let env = FlEnv::from_scenario(
                    &ScenarioConfig::tiny(DatasetKind::MnistLike),
                    HeterogeneityLevel::High,
                    FlConfig::tiny()
                        .with_rounds(8)
                        .with_round_mode(mode)
                        .with_packed_execution(packed),
                );
                let sim = Simulator::new(env);
                let mut algo = FedLps::for_env(sim.env());
                sim.run(&mut algo)
            };
            assert_eq!(
                run(true),
                run(false),
                "{} mode diverged between packed and masked-dense execution",
                mode.name()
            );
        }
    }

    #[test]
    fn mask_cache_serves_repeat_participations() {
        let env = tiny_env();
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let result = sim.run(&mut algo);
        let cache = algo.mask_cache().expect("cache exists after setup");
        let total = cache.hits() + cache.misses();
        assert_eq!(
            total,
            result
                .rounds
                .iter()
                .map(|r| r.mask_cache_hits + r.mask_cache_misses)
                .sum::<u64>(),
            "cache counters and metrics must agree"
        );
        assert!(cache.misses() > 0, "first participations are misses");
        // The per-round counters flow into the metrics trace.
        assert!(result.rounds.iter().all(|r| {
            r.mask_cache_hits + r.mask_cache_misses
                == sim
                    .env()
                    .config
                    .clients_per_round
                    .min(sim.env().num_clients()) as u64
        }));
    }

    #[test]
    fn non_cacheable_patterns_bypass_the_cache() {
        use fedlps_sparse::pattern::PatternStrategy;
        // Random dropout must be resampled every participation; the cache
        // records no traffic at all for it (bypass, not a stream of misses).
        let env = tiny_env();
        let sim = Simulator::new(env);
        let mut algo = FedLps::new(FedLpsConfig::with_pattern(PatternStrategy::Random, 0.5));
        let result = sim.run(&mut algo);
        let cache = algo.mask_cache().expect("cache exists after setup");
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert_eq!(result.mask_cache_hit_rate(), 0.0);
        // (That the random pattern actually resamples across participations
        // is pinned at the client level in `client::tests`.)
    }

    #[test]
    fn stable_ratio_policies_hit_the_mask_cache_after_warmup() {
        // With the rigid RCR rule (ratio = capability, a Table II ablation)
        // every participation after a client's first reuses its cached mask,
        // so the warm hit rate must clear the ROADMAP's 80% bar. FedLPS
        // proper trails this because P-UCBV keeps resampling ratios while it
        // explores (see the round_throughput bench for both numbers).
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny().with_rounds(12),
        );
        let sim = Simulator::new(env);
        let mut algo = FedLps::new(FedLpsConfig::rcr());
        let result = sim.run(&mut algo);
        let warm = result.mask_cache_hit_rate_from(3);
        assert!(
            warm > 0.8,
            "warm mask-cache hit rate should exceed 80% under a stable ratio policy, got {warm}"
        );
    }

    #[test]
    fn arm_quantization_lifts_the_warm_mask_cache_hit_rate() {
        // The ROADMAP gap: P-UCBV's continuous samples churn the submodel
        // shape, so FedLPS proper warm-hits ~30% while stable policies sit
        // ~90%. Quantizing the arm space at the shape resolution removes all
        // within-class churn without touching the algorithm's semantics; the
        // misses that remain are genuine cross-partition exploration, which
        // fades as the horizon grows (the round_throughput bench tracks the
        // same lift at fleet scale).
        let run = |quantize: bool| {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny().with_rounds(20),
            );
            let sim = Simulator::new(env);
            let mut algo = FedLps::new(FedLpsConfig::default().with_quantize_arm_space(quantize));
            sim.run(&mut algo).mask_cache_hit_rate_from(3)
        };
        let continuous = run(false);
        let quantized = run(true);
        assert!(
            quantized > continuous,
            "quantized arms must warm-hit more often ({quantized} vs {continuous})"
        );
        assert!(
            quantized > 0.4,
            "quantized warm hit rate should clear 40% on a 20-round run, got {quantized}"
        );
    }

    #[test]
    fn mask_refresh_period_trades_hits_for_indicator_tracking() {
        let run = |refresh: Option<u32>| {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny().with_rounds(12),
            );
            let sim = Simulator::new(env);
            let mut algo = FedLps::new(FedLpsConfig::rcr().with_mask_refresh_every(refresh));
            sim.run(&mut algo)
        };
        let frozen = run(None).mask_cache_hit_rate_from(3);
        let refreshed = run(Some(2)).mask_cache_hit_rate_from(3);
        assert!(
            refreshed < frozen,
            "periodic refreshes must cost cache hits ({refreshed} vs {frozen})"
        );
        let rebuilt_every_time = run(Some(1));
        assert_eq!(
            rebuilt_every_time.mask_cache_hit_rate(),
            0.0,
            "period 1 disables reuse entirely"
        );
    }

    #[test]
    fn fedlps_runs_under_deadline_and_async_modes() {
        use fedlps_sim::config::RoundMode;
        let run = |mode: RoundMode| {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny().with_rounds(8).with_round_mode(mode),
            );
            let sim = Simulator::new(env);
            let mut algo = FedLps::for_env(sim.env());
            sim.run(&mut algo)
        };
        let sync = run(RoundMode::Synchronous);
        let deadline = run(RoundMode::deadline(
            sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max) * 0.5,
            2,
        ));
        assert_eq!(deadline.rounds.len(), 8);
        assert!(deadline.total_time < sync.total_time);

        let async_run = run(RoundMode::asynchronous(4, 0.5));
        assert_eq!(async_run.rounds.len(), 8);
        assert!(async_run.total_time < sync.total_time);
        assert!(
            async_run.staleness_histogram().iter().sum::<u64>() > 0,
            "async FedLPS must absorb updates (staleness-discounted)"
        );
        assert!((0.0..=1.0).contains(&async_run.final_accuracy));
    }

    #[test]
    fn ablation_names_are_distinguishable() {
        use fedlps_sparse::pattern::PatternStrategy;
        assert_eq!(FedLps::new(FedLpsConfig::default()).name(), "FedLPS");
        assert!(FedLps::new(FedLpsConfig::flst(0.5))
            .name()
            .contains("fixed"));
        assert!(
            FedLps::new(FedLpsConfig::with_pattern(PatternStrategy::Random, 0.5))
                .name()
                .contains("random")
        );
    }
}
