//! The FedLPS server/driver implementing [`FlAlgorithm`].

use fedlps_bandit::ratio_policy::{RatioController, RatioFeedback};
use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientReport, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sim::train::account_round;
use rand::rngs::StdRng;

use crate::client::{client_update, ClientState, ClientUpdateOptions};
use crate::config::FedLpsConfig;
use crate::server::{aggregate_residuals, StagedUpdate};

/// FedLPS: learnable personalized sparsification with P-UCBV ratio decisions.
///
/// Create it with [`FedLps::new`], hand it to
/// [`Simulator::run`](fedlps_sim::runner::Simulator::run) and read the
/// resulting [`RunResult`](fedlps_sim::metrics::RunResult).
pub struct FedLps {
    config: FedLpsConfig,
    global: Vec<f32>,
    clients: Vec<ClientState>,
    controller: Option<RatioController>,
    staged: Vec<StagedUpdate>,
    feedback: Vec<(usize, RatioFeedback)>,
}

impl FedLps {
    /// Creates a FedLPS driver with the given configuration.
    pub fn new(config: FedLpsConfig) -> Self {
        Self {
            config,
            global: Vec::new(),
            clients: Vec::new(),
            controller: None,
            staged: Vec::new(),
            feedback: Vec::new(),
        }
    }

    /// FedLPS with the paper's default configuration sized for the federation
    /// described by `env` (bandit horizon = round budget, etc.).
    pub fn for_env(env: &FlEnv) -> Self {
        Self::new(FedLpsConfig::for_federation(
            env.config.rounds,
            env.num_clients(),
            env.config.clients_per_round,
        ))
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &FedLpsConfig {
        &self.config
    }

    /// Current dense global parameters (empty before `setup`).
    pub fn global_params(&self) -> &[f32] {
        &self.global
    }

    /// A client's persistent state (indicator, personalized model, last mask).
    pub fn client_state(&self, client: usize) -> &ClientState {
        &self.clients[client]
    }

    /// The sparse ratios the controller currently proposes for every client.
    pub fn proposed_ratios(&self) -> Vec<f64> {
        self.controller
            .as_ref()
            .map(|c| c.proposals())
            .unwrap_or_default()
    }

    fn update_options(&self, env: &FlEnv, ratio: f64, round: usize) -> ClientUpdateOptions {
        ClientUpdateOptions {
            iterations: env.config.local_iterations,
            batch_size: env.config.batch_size,
            sgd: env.config.sgd,
            importance_lr: self.config.importance_lr.unwrap_or(env.config.sgd.lr),
            mu: self.config.mu,
            lambda: self.config.lambda,
            pattern: self.config.pattern,
            ratio,
            round,
        }
    }
}

impl FlAlgorithm for FedLps {
    fn name(&self) -> String {
        let ratio = self.config.ratio_policy.name();
        let pattern = self.config.pattern.name();
        if pattern == "learnable-importance" && ratio == "p-ucbv" {
            "FedLPS".to_string()
        } else {
            format!("FedLPS[{pattern},{ratio}]")
        }
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        self.clients = vec![ClientState::default(); env.num_clients()];
        let capabilities = env.capabilities();
        let initial_accuracy = env.initial_training_accuracy(&self.global);
        self.controller = Some(RatioController::new(
            self.config.ratio_policy.clone(),
            &capabilities,
            &initial_accuracy,
            env.config.seed,
        ));
        self.staged.clear();
        self.feedback.clear();
    }

    fn run_client(
        &mut self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientReport {
        let controller = self.controller.as_ref().expect("setup() not called");
        // Server proposal capped by the static capability, then by what the
        // device can actually spare this round (dynamic heterogeneity).
        let available = env.fleet.available_profile(client, round);
        let mut ratio = controller.ratio_for(client);
        if self.config.respect_dynamic_capability {
            ratio = ratio.min(available.max_sparse_ratio());
        }
        ratio = ratio.max(0.01);

        let options = self.update_options(env, ratio, round);
        let outcome = client_update(
            &*env.arch,
            &self.global,
            &mut self.clients[client],
            env.train_data(client),
            &options,
            rng,
        );

        let accounting = account_round(
            &*env.arch,
            &env.cost,
            &available,
            Some(&outcome.mask),
            env.config.local_iterations,
            env.config.batch_size,
            outcome.uploaded_params,
            env.arch.param_count(),
        );

        self.staged.push(StagedUpdate {
            weight: env.train_sizes()[client].max(1.0),
            residual: outcome.residual,
        });
        self.feedback.push((
            client,
            RatioFeedback {
                ratio,
                local_cost: accounting.local_cost.total(),
                accuracy: outcome.mean_accuracy,
            },
        ));

        ClientReport {
            client_id: client,
            flops: accounting.flops,
            upload_bytes: accounting.upload_bytes,
            download_bytes: accounting.download_bytes,
            local_cost: accounting.local_cost,
            train_accuracy: outcome.mean_accuracy,
            train_loss: outcome.mean_loss,
            sparse_ratio: ratio,
        }
    }

    fn aggregate(&mut self, _env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        aggregate_residuals(&mut self.global, &self.staged);
        self.staged.clear();
        if let Some(controller) = self.controller.as_mut() {
            for (client, feedback) in self.feedback.drain(..) {
                controller.report(client, feedback);
            }
        }
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        // Personalized deployment: the client's own sparse model if it has
        // ever trained, otherwise the dense global model.
        match &self.clients[client].personal_model {
            Some(personal) => env.arch.evaluate(personal, env.test_data(client)),
            None => env.arch.evaluate(&self.global, env.test_data(client)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn tiny_env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny().with_rounds(8),
        )
    }

    #[test]
    fn fedlps_runs_and_improves_over_initialization() {
        let env = tiny_env();
        let initial = env.global_model_accuracy(&env.initial_params());
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let result = sim.run(&mut algo);
        assert_eq!(result.algorithm, "FedLPS");
        assert!(
            result.best_accuracy > initial,
            "FedLPS should beat the untrained model ({} vs {initial})",
            result.best_accuracy
        );
        // Some sparsification must actually have happened on this
        // heterogeneous fleet.
        assert!(result.mean_sparse_ratio() < 0.999);
    }

    #[test]
    fn ratios_respect_capabilities() {
        let env = tiny_env();
        let caps = env.capabilities();
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let _ = sim.run(&mut algo);
        for (k, ratio) in algo.proposed_ratios().iter().enumerate() {
            assert!(
                *ratio <= caps[k] + 1e-9,
                "client {k}: proposed ratio {ratio} exceeds capability {}",
                caps[k]
            );
        }
    }

    #[test]
    fn personalized_states_are_created_for_participants() {
        let env = tiny_env();
        let sim = Simulator::new(env);
        let mut algo = FedLps::for_env(sim.env());
        let _ = sim.run(&mut algo);
        let trained = (0..sim.env().num_clients())
            .filter(|&k| algo.client_state(k).personal_model.is_some())
            .count();
        assert!(trained > 0);
        for k in 0..sim.env().num_clients() {
            if let Some(mask) = &algo.client_state(k).last_mask {
                assert_eq!(mask.len(), sim.env().arch.unit_layout().total_units());
            }
        }
    }

    #[test]
    fn ablation_names_are_distinguishable() {
        use fedlps_sparse::pattern::PatternStrategy;
        assert_eq!(FedLps::new(FedLpsConfig::default()).name(), "FedLPS");
        assert!(FedLps::new(FedLpsConfig::flst(0.5))
            .name()
            .contains("fixed"));
        assert!(
            FedLps::new(FedLpsConfig::with_pattern(PatternStrategy::Random, 0.5))
                .name()
                .contains("random")
        );
    }
}
