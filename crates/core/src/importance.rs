//! The per-client importance indicator `Q` (Eq. 3) and its gradient.
//!
//! `Q ∈ R^J` assigns every sparsifiable unit a score measuring how much that
//! unit contributes to representing the client's local data. The paper makes
//! `Q` *learnable* by inserting it into the loss (Eq. 6-9) and updating it by
//! back-propagation alongside the model (Eq. 11).
//!
//! The task term of the loss touches `Q` only through the step function of
//! Eq. (4), which has zero gradient almost everywhere; like the paper's
//! reference implementation, we therefore use a straight-through-style
//! estimator: the sensitivity of the loss to keeping unit `j` is approximated
//! by `Σ_{w ∈ unit j} (∂L/∂w) · w` — the first-order change in the loss if the
//! unit's parameters were removed. The regularisation term `λ‖Q − σ(|ω|_J)‖²`
//! (Eq. 8) is differentiated exactly. `DESIGN.md §1` documents this
//! substitution.

use fedlps_nn::unit::UnitLayout;
use serde::{Deserialize, Serialize};

/// A client's importance indicator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceIndicator {
    scores: Vec<f32>,
}

impl ImportanceIndicator {
    /// Initialises the indicator from the model parameters as
    /// `Q = σ(|ω|_J)` — the fixed point of the Eq. (8) regulariser, so training
    /// starts unbiased.
    pub fn from_params(layout: &UnitLayout, params: &[f32]) -> Self {
        let scores = layout
            .magnitude_sums(params)
            .into_iter()
            .map(sigmoid)
            .collect();
        Self { scores }
    }

    /// Restores an indicator from previously stored scores.
    pub fn from_scores(scores: Vec<f32>) -> Self {
        Self { scores }
    }

    /// The per-unit scores in layout order.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Whether the indicator covers zero units.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Computes `∂L/∂Q` for the current iteration.
    ///
    /// * `param_grad` — gradient of the task (+prox) loss w.r.t. the masked
    ///   parameters, as produced by the model's backward pass;
    /// * `params` — the current (dense) local parameters;
    /// * `lambda` — weight of the Eq. (8) regulariser.
    pub fn gradient(
        &self,
        layout: &UnitLayout,
        params: &[f32],
        param_grad: &[f32],
        lambda: f32,
    ) -> Vec<f32> {
        assert_eq!(self.scores.len(), layout.total_units());
        let magnitudes = layout.magnitude_sums(params);
        let mut grad = Vec::with_capacity(self.scores.len());
        let mut j = 0;
        for layer in layout.layers() {
            for unit in &layer.units {
                // Straight-through task sensitivity: Σ g_w · w over the unit,
                // normalised by the unit's size so large conv channels and
                // small neurons update their scores at comparable speed.
                let mut ste = 0.0f32;
                for r in &unit.ranges {
                    for i in r.start..r.end() {
                        ste += param_grad[i] * params[i];
                    }
                }
                ste /= unit.param_count().max(1) as f32;
                // Exact gradient of λ (q_j − σ(|ω|_j))².
                let reg = 2.0 * lambda * (self.scores[j] - sigmoid(magnitudes[j]));
                grad.push(ste + reg);
                j += 1;
            }
        }
        grad
    }

    /// Applies one SGD step `Q ← Q − η ∇_Q L` (Eq. 11), clamping the scores to
    /// a bounded range so the quantile thresholding stays well-conditioned.
    pub fn step(&mut self, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.scores.len());
        for (q, g) in self.scores.iter_mut().zip(grad.iter()) {
            *q -= lr * g;
            *q = q.clamp(-2.0, 2.0);
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_nn::model::ModelArch;
    use fedlps_tensor::rng_from_seed;

    fn toy() -> Mlp {
        Mlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![6],
            num_classes: 3,
        })
    }

    #[test]
    fn initialisation_is_sigmoid_of_magnitudes() {
        let mlp = toy();
        let mut rng = rng_from_seed(1);
        let params = mlp.init_params(&mut rng);
        let q = ImportanceIndicator::from_params(mlp.unit_layout(), &params);
        assert_eq!(q.len(), 6);
        let mags = mlp.unit_layout().magnitude_sums(&params);
        for (s, m) in q.scores().iter().zip(mags.iter()) {
            assert!((s - sigmoid(*m)).abs() < 1e-6);
            assert!(*s >= 0.5 && *s < 1.0, "sigmoid of a non-negative magnitude");
        }
    }

    #[test]
    fn regulariser_gradient_vanishes_at_fixed_point() {
        let mlp = toy();
        let mut rng = rng_from_seed(2);
        let params = mlp.init_params(&mut rng);
        let q = ImportanceIndicator::from_params(mlp.unit_layout(), &params);
        let zero_task_grad = vec![0.0f32; params.len()];
        let grad = q.gradient(mlp.unit_layout(), &params, &zero_task_grad, 1.0);
        assert!(grad.iter().all(|g| g.abs() < 1e-5));
    }

    #[test]
    fn harmful_units_gain_importance_useful_units_lose_nothing() {
        // If removing a unit would *decrease* the loss (positive g·w), the STE
        // gradient is positive and the score drops; if the unit helps
        // (negative g·w), the score rises.
        let mlp = toy();
        let layout = mlp.unit_layout();
        let params = vec![1.0f32; mlp.param_count()];
        let mut task_grad = vec![0.0f32; mlp.param_count()];
        // Unit 0: gradient aligned with weights (harmful); unit 1: anti-aligned.
        for r in &layout.unit(0).ranges {
            for g in &mut task_grad[r.start..r.end()] {
                *g = 1.0;
            }
        }
        for r in &layout.unit(1).ranges {
            for g in &mut task_grad[r.start..r.end()] {
                *g = -1.0;
            }
        }
        let mut q = ImportanceIndicator::from_scores(vec![0.5; 6]);
        let grad = q.gradient(layout, &params, &task_grad, 0.0);
        assert!(grad[0] > 0.0);
        assert!(grad[1] < 0.0);
        assert_eq!(grad[2], 0.0);
        let before = q.scores().to_vec();
        q.step(&grad, 0.1);
        assert!(q.scores()[0] < before[0]);
        assert!(q.scores()[1] > before[1]);
    }

    #[test]
    fn scores_stay_clamped() {
        let mut q = ImportanceIndicator::from_scores(vec![0.0; 3]);
        q.step(&[-1000.0, 1000.0, 0.0], 1.0);
        assert_eq!(q.scores()[0], 2.0);
        assert_eq!(q.scores()[1], -2.0);
        assert_eq!(q.scores()[2], 0.0);
    }
}
