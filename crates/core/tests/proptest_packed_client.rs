//! Property test of the packed-execution contract at the FedLPS client
//! level: Algorithm 1's full objective — masked task loss, proximal term,
//! importance-indicator co-training — produces **bit-identical** residuals,
//! personal models and indicator states whether the task forward/backward
//! runs masked-dense or on the physically packed submodel.
//!
//! The `local_sgd`-level property lives in `fedlps-sim`; this file pins the
//! harder case where the gradient buffer is shared between the model step
//! and the indicator's straight-through estimate, so a single stray nonzero
//! outside the packed set would diverge the indicator trajectory.

use fedlps_core::client::{ClientState, ClientTask, ClientUpdateOptions};
use fedlps_data::dataset::{Dataset, InputKind};
use fedlps_nn::convnet::{ConvNet, ConvNetConfig};
use fedlps_nn::lstm::{LstmLm, LstmLmConfig};
use fedlps_nn::mlp::{Mlp, MlpConfig};
use fedlps_nn::model::ModelArch;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_tensor::{rng_from_seed, Matrix};
use proptest::prelude::*;
use rand::Rng;

fn model_and_data(kind: usize, seed: u64) -> (Box<dyn ModelArch>, Dataset, SgdConfig) {
    let mut rng = rng_from_seed(seed ^ 0xC11E57);
    match kind % 3 {
        0 => {
            let arch = Box::new(Mlp::new(MlpConfig {
                input_dim: 6,
                hidden: vec![8, 5],
                num_classes: 3,
            }));
            let features = Matrix::random_normal(16, 6, 1.0, &mut rng);
            let labels = (0..16).map(|i| i % 3).collect();
            let data = Dataset::new(features, labels, 3, InputKind::Vector { dim: 6 });
            (arch, data, SgdConfig::vision())
        }
        1 => {
            let arch = Box::new(ConvNet::new(ConvNetConfig {
                in_channels: 1,
                height: 5,
                width: 5,
                channels: vec![4],
                hidden: 5,
                num_classes: 3,
            }));
            let features = Matrix::random_normal(10, 25, 1.0, &mut rng);
            let labels = (0..10).map(|i| i % 3).collect();
            let data = Dataset::new(
                features,
                labels,
                3,
                InputKind::Image {
                    channels: 1,
                    height: 5,
                    width: 5,
                },
            );
            (arch, data, SgdConfig::vision())
        }
        _ => {
            let arch = Box::new(LstmLm::new(LstmLmConfig {
                vocab: 5,
                seq_len: 4,
                embed: 3,
                hidden: 4,
                num_classes: 5,
            }));
            let mut features = Matrix::zeros(10, 4);
            for r in 0..10 {
                for v in features.row_mut(r) {
                    *v = rng.gen_range(0..5) as f32;
                }
            }
            let labels = (0..10).map(|i| i % 5).collect();
            let data = Dataset::new(
                features,
                labels,
                5,
                InputKind::Sequence { len: 4, vocab: 5 },
            );
            (arch, data, SgdConfig::text())
        }
    }
}

proptest! {
    // Two full client updates per case; pinned, not nightly-cranked.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn packed_client_update_is_bit_identical(
        kind in 0usize..3,
        ratio in 0.2f64..1.0,
        seed in 0u64..5_000,
    ) {
        let (arch, data, sgd) = model_and_data(kind, seed);
        let mut init_rng = rng_from_seed(seed ^ 0x9E);
        let global = arch.init_params(&mut init_rng);
        let options = ClientUpdateOptions {
            iterations: 3,
            batch_size: 5,
            sgd,
            importance_lr: 0.1,
            mu: 1.0,
            lambda: 1.0,
            pattern: PatternStrategy::Importance,
            ratio,
            round: 0,
        };
        let state = ClientState::default();
        let dense_task = ClientTask {
            arch: &*arch,
            global: &global,
            state: &state,
            data: &data,
            options,
            cached_mask: None,
            packed_execution: false,
            cached_plan: None,
        };
        let mut rng_dense = rng_from_seed(seed ^ 0xF00D);
        let dense = dense_task.run(&mut rng_dense);
        let packed_task = ClientTask {
            packed_execution: true,
            ..dense_task
        };
        let mut rng_packed = rng_from_seed(seed ^ 0xF00D);
        let packed = packed_task.run(&mut rng_packed);

        prop_assert_eq!(&dense.outcome.mask, &packed.outcome.mask);
        prop_assert_eq!(
            dense.outcome.mean_loss.to_bits(),
            packed.outcome.mean_loss.to_bits()
        );
        let dr = dense.outcome.residual.to_dense();
        let pr = packed.outcome.residual.to_dense();
        for (i, (d, p)) in dr.iter().zip(pr.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), p.to_bits(), "residual {} diverges", i);
        }
        let di = dense.state.indicator.as_ref().expect("trained");
        let pi = packed.state.indicator.as_ref().expect("trained");
        for (i, (d, p)) in di.iter().zip(pi.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), p.to_bits(), "indicator {} diverges", i);
        }
        let dm = dense.state.personal_model.as_ref().expect("trained");
        let pm = packed.state.personal_model.as_ref().expect("trained");
        for (i, (d, p)) in dm.iter().zip(pm.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), p.to_bits(), "personal model {} diverges", i);
        }
    }
}
