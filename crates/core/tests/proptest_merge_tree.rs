//! Property test of the merge-tree aggregation contract: Eq. (13) sharded
//! over the coordinate-axis merge tree is **bit-identical** to the serial
//! ascending-staged walk at every shard count — including shard counts that
//! exceed the parameter count — for any mix of dense and packed residuals.
//!
//! This is the invariant that lets `FedLps::aggregate` follow the config's
//! `effective_parallelism()` without perturbing a single golden byte: the
//! tree shards *coordinates*, not clients, so no float addition is ever
//! reassociated; each leaf replays the exact per-coordinate op sequence of
//! the serial walk and the pairwise combine is range concatenation.

use std::sync::Arc;

use fedlps_core::server::{aggregate_residuals_tree, Residual, StagedUpdate};
use fedlps_tensor::rng_from_seed;
use proptest::prelude::*;
use rand::Rng;

/// Builds a random staged-update set (mixed dense / packed residuals) and a
/// random global vector from one seed.
fn random_case(seed: u64, len: usize, clients: usize) -> (Vec<f32>, Vec<StagedUpdate>) {
    let mut rng = rng_from_seed(seed ^ 0x7EE);
    let global: Vec<f32> = (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    let staged = (0..clients)
        .map(|_| {
            let weight = rng.gen_range(1..50) as f64;
            let residual = if rng.gen_bool(0.5) {
                Residual::Dense((0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            } else {
                // A strictly ascending coordinate subset, like a compiled
                // submodel's gather map.
                let coords: Vec<u32> = (0..len as u32).filter(|_| rng.gen_bool(0.4)).collect();
                let values = coords.iter().map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                Residual::Packed {
                    coords: Arc::new(coords),
                    values,
                    len,
                }
            };
            StagedUpdate { weight, residual }
        })
        .collect();
    (global, staged)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_tree_is_bit_identical_to_the_serial_walk(
        seed in 0u64..1_000_000,
        len in 1usize..96,
        clients in 1usize..7,
        shards in 2usize..130,
    ) {
        let (global, staged) = random_case(seed, len, clients);

        let mut serial = global.clone();
        aggregate_residuals_tree(&mut serial, &staged, 1);

        let mut sharded = global.clone();
        aggregate_residuals_tree(&mut sharded, &staged, shards);

        for (i, (s, t)) in serial.iter().zip(sharded.iter()).enumerate() {
            prop_assert_eq!(
                s.to_bits(),
                t.to_bits(),
                "coordinate {} diverges at {} shards (len {})",
                i,
                shards,
                len
            );
        }
    }
}
