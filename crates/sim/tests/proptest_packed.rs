//! The packed-execution equivalence contract, property-tested: for every
//! model family (MLP / CNN / LSTM), sparse ratio and seed, training the
//! physically packed submodel is **bit-identical** to masked-dense training —
//! same trained parameters, same loss/accuracy statistics.
//!
//! This is the property that lets `FlConfig::packed_execution` be a pure
//! wall-clock knob policed by the CI determinism gate. It rests on three
//! structural facts pinned by unit tests in `fedlps-nn`: the matmul variants
//! skip `a == 0.0` operands in ascending order, `relu'(0) = 0` severs dropped
//! ReLU units, and LSTM cells own their outgoing connections.

use fedlps_data::dataset::{Dataset, InputKind};
use fedlps_nn::convnet::{ConvNet, ConvNetConfig};
use fedlps_nn::lstm::{LstmLm, LstmLmConfig};
use fedlps_nn::mlp::{Mlp, MlpConfig};
use fedlps_nn::model::ModelArch;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sim::train::{compile_packed, local_sgd, local_sgd_packed, LocalTrainOptions};
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_tensor::{rng_from_seed, Matrix};
use proptest::prelude::*;
use rand::Rng;

/// Builds one of the three model families plus a matching toy dataset.
fn model_and_data(kind: usize, seed: u64) -> (Box<dyn ModelArch>, Dataset, SgdConfig) {
    let mut rng = rng_from_seed(seed ^ 0xDA7A);
    match kind % 3 {
        0 => {
            let arch = Box::new(Mlp::new(MlpConfig {
                input_dim: 7,
                hidden: vec![9, 6],
                num_classes: 4,
            }));
            let features = Matrix::random_normal(20, 7, 1.0, &mut rng);
            let labels = (0..20).map(|i| i % 4).collect();
            let data = Dataset::new(features, labels, 4, InputKind::Vector { dim: 7 });
            (arch, data, SgdConfig::vision())
        }
        1 => {
            let arch = Box::new(ConvNet::new(ConvNetConfig {
                in_channels: 2,
                height: 5,
                width: 5,
                channels: vec![4, 5],
                hidden: 6,
                num_classes: 3,
            }));
            let features = Matrix::random_normal(12, 2 * 5 * 5, 1.0, &mut rng);
            let labels = (0..12).map(|i| i % 3).collect();
            let data = Dataset::new(
                features,
                labels,
                3,
                InputKind::Image {
                    channels: 2,
                    height: 5,
                    width: 5,
                },
            );
            (arch, data, SgdConfig::vision())
        }
        _ => {
            let arch = Box::new(LstmLm::new(LstmLmConfig {
                vocab: 6,
                seq_len: 4,
                embed: 3,
                hidden: 5,
                num_classes: 6,
            }));
            let mut features = Matrix::zeros(14, 4);
            for r in 0..14 {
                for v in features.row_mut(r) {
                    *v = rng.gen_range(0..6) as f32;
                }
            }
            let labels = (0..14).map(|i| i % 6).collect();
            let data = Dataset::new(
                features,
                labels,
                6,
                InputKind::Sequence { len: 4, vocab: 6 },
            );
            // The paper's text setup: big learning rate + gradient clipping —
            // the clip norm must also agree bit for bit.
            (arch, data, SgdConfig::text())
        }
    }
}

proptest! {
    // Each case trains two (tiny) models; the case count is pinned rather
    // than scaled by the nightly PROPTEST_CASES crank.
    #![proptest_config(ProptestConfig::with_cases(18))]

    #[test]
    fn packed_training_is_bit_identical_to_masked_dense(
        kind in 0usize..3,
        ratio in 0.15f64..1.0,
        seed in 0u64..10_000,
        pattern_pick in 0usize..3,
    ) {
        let (arch, data, sgd) = model_and_data(kind, seed);
        let mut mask_rng = rng_from_seed(seed ^ 0x3A5);
        let init = arch.init_params(&mut mask_rng);
        let pattern = [
            PatternStrategy::Ordered,
            PatternStrategy::Magnitude,
            PatternStrategy::Random,
        ][pattern_pick];
        let mask = pattern.build_mask(arch.unit_layout(), &init, None, ratio, 0, &mut mask_rng);
        let pmask = mask.param_mask(arch.unit_layout());
        let options = LocalTrainOptions {
            iterations: 3,
            batch_size: 5,
            sgd,
            param_mask: Some(&pmask),
            prox: None,
            frozen: None,
        };
        let packed = compile_packed(&*arch, &mask, &options, true)
            .expect("every layer keeps >= 1 unit at these ratios");

        let mut dense_params = init.clone();
        let mut rng_dense = rng_from_seed(seed ^ 0x7E57);
        let dense = local_sgd(&*arch, &mut dense_params, &data, &options, &mut rng_dense);

        let mut packed_params = init.clone();
        let mut rng_packed = rng_from_seed(seed ^ 0x7E57);
        let summary = local_sgd_packed(&packed, &mut packed_params, &data, &options, &mut rng_packed);

        prop_assert_eq!(dense.mean_loss.to_bits(), summary.mean_loss.to_bits());
        prop_assert_eq!(dense.mean_accuracy.to_bits(), summary.mean_accuracy.to_bits());
        for (i, (d, p)) in dense_params.iter().zip(packed_params.iter()).enumerate() {
            prop_assert_eq!(d.to_bits(), p.to_bits(), "parameter {} diverges", i);
        }
    }
}
