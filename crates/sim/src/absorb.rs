//! The absorption layer: how absorbed client work turns into algorithm state
//! and per-round metrics.
//!
//! Whatever the round mode, a round's life is the same: outcomes accumulate
//! (their FLOPs always count, their uploads only when they land), surviving
//! reports are absorbed, and a [`RoundMetrics`] entry summarizes the round
//! when it closes. This module owns that accounting — the
//! [`RoundAccumulator`] totals plus the [`ModeState`] machine deciding *when*
//! a round closes and *who* drops — so the driver's event handlers stay pure
//! orchestration. Deadline straggler drops, post-deadline arrivals and async
//! staleness discards are just different calls on the same state machine,
//! not separate per-mode loops.
//!
//! The layer is private; its behaviour is observable through the metric
//! trace. Under a deadline, rounds close at the budget instead of waiting
//! for the slowest client, and the work of stragglers is dropped — visible
//! as a shorter simulated time at the same round count:
//!
//! ```
//! use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
//! use fedlps_device::HeterogeneityLevel;
//! use fedlps_nn::model::EvalStats;
//! use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
//! use fedlps_sim::config::{FlConfig, RoundMode};
//! use fedlps_sim::env::FlEnv;
//! use fedlps_sim::runner::Simulator;
//!
//! /// The smallest possible algorithm: bills per-client latency (slower
//! /// devices take longer), stages no update.
//! struct Null;
//! impl FlAlgorithm for Null {
//!     fn name(&self) -> String { "null".into() }
//!     fn setup(&mut self, _env: &FlEnv) {}
//!     fn client_step(&self, env: &FlEnv, _round: usize, client: usize,
//!                    _rng: &mut rand::rngs::StdRng) -> ClientOutcome {
//!         let mut report = ClientReport::idle(client);
//!         report.local_cost.compute_seconds = env.expected_latency(client);
//!         ClientOutcome::new(report, ())
//!     }
//!     fn absorb_update(&mut self, _env: &FlEnv, _round: usize, _update: ClientUpdate) {}
//!     fn aggregate(&mut self, _env: &FlEnv, _round: usize, _reports: &[ClientReport]) {}
//!     fn evaluate_client(&self, _env: &FlEnv, _client: usize) -> EvalStats {
//!         EvalStats { loss: 0.0, accuracy: 0.0, samples: 1 }
//!     }
//! }
//!
//! let run = |mode: RoundMode| {
//!     let env = FlEnv::from_scenario(
//!         &ScenarioConfig::tiny(DatasetKind::MnistLike),
//!         HeterogeneityLevel::High,
//!         FlConfig::tiny().with_rounds(3).with_round_mode(mode),
//!     );
//!     Simulator::new(env).run(&mut Null)
//! };
//!
//! let sync = run(RoundMode::Synchronous);
//! // Budget half the longest synchronous round, over-selecting 2 spares.
//! let budget = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max) * 0.5;
//! let deadline = run(RoundMode::deadline(budget, 2));
//! assert_eq!(deadline.rounds.len(), sync.rounds.len());
//! assert!(deadline.total_time < sync.total_time);
//! assert!(deadline.rounds.iter().all(|r| r.round_time <= budget + 1e-12));
//! ```

use std::collections::BTreeMap;

use fedlps_runtime::RoundMode;

use crate::algorithm::{ClientReport, ClientUpdate};
use crate::metrics::RoundMetrics;

/// A dispatched client whose update is still travelling (or, in the cohort
/// modes, buffered until the barrier): the model version it was computed
/// against plus the outcome that lands at its arrival time.
pub(crate) struct InFlight {
    pub dispatched_version: usize,
    pub report: ClientReport,
    pub update: ClientUpdate,
}

/// The absorption layer's mode-specific round state.
pub(crate) enum ModeState {
    /// Synchronous / deadline rounds: one barrier per round on a
    /// round-relative timeline.
    Cohort {
        /// Round budget (None = synchronous: wait for everyone).
        deadline: Option<f64>,
        /// Extra clients selected beyond `clients_per_round`.
        over_select: usize,
        /// Clients dispatched this round.
        dispatched: usize,
        /// Arrived updates buffered until the barrier, keyed by client id
        /// (the absorb order).
        arrived: BTreeMap<usize, InFlight>,
        /// Round duration so far (last arrival, or the budget once it binds).
        duration: f64,
        /// Whether the deadline fired (later events are straggler drops).
        deadline_fired: bool,
        /// Configured quorum fraction in `(0, 1]` (1.0 = full barrier).
        quorum: f64,
        /// Buffered arrivals that close the round early (`usize::MAX` when
        /// the quorum knob is off — recomputed per round by
        /// [`set_dispatched`](ModeState::set_dispatched)).
        quorum_target: usize,
        /// The quorum closed this round: the deadline, if it fires later,
        /// must not stretch the duration back to the budget.
        quorum_fired: bool,
    },
    /// The staleness-aware continuous pipeline.
    Async {
        max_staleness: u32,
        alpha: f64,
        /// Absorbed updates per aggregation (= metrics round).
        buffer_target: usize,
        /// Virtual time at which the current metrics round opened.
        round_start: f64,
    },
}

impl ModeState {
    /// Builds the state machine for a round mode. `quorum` is the cohort
    /// quorum fraction in `(0, 1]` (validated by `FlConfig::validate`, not
    /// here); the async pipeline ignores it — its buffer target plays the
    /// same role.
    pub(crate) fn for_round_mode(
        mode: RoundMode,
        num_clients: usize,
        clients_per_round: usize,
        quorum: f64,
    ) -> Self {
        match mode {
            RoundMode::Synchronous => ModeState::Cohort {
                deadline: None,
                over_select: 0,
                dispatched: 0,
                arrived: BTreeMap::new(),
                duration: 0.0,
                deadline_fired: false,
                quorum,
                quorum_target: usize::MAX,
                quorum_fired: false,
            },
            RoundMode::Deadline {
                budget,
                over_select,
            } => ModeState::Cohort {
                deadline: Some(budget),
                over_select,
                dispatched: 0,
                arrived: BTreeMap::new(),
                duration: 0.0,
                deadline_fired: false,
                quorum,
                quorum_target: usize::MAX,
                quorum_fired: false,
            },
            RoundMode::Async {
                max_staleness,
                alpha,
            } => ModeState::Async {
                max_staleness,
                alpha,
                buffer_target: clients_per_round.min(num_clients).max(1),
                round_start: 0.0,
            },
        }
    }

    /// Staleness-histogram buckets this mode needs (0 outside async).
    pub(crate) fn hist_len(&self) -> usize {
        match self {
            ModeState::Async { max_staleness, .. } => *max_staleness as usize + 1,
            ModeState::Cohort { .. } => 0,
        }
    }

    /// Whether this is the continuous async pipeline.
    pub(crate) fn is_async(&self) -> bool {
        matches!(self, ModeState::Async { .. })
    }

    /// Cohort view for the dispatch handler: `None` = async, `Some(budget)` =
    /// cohort (inner `None` = synchronous).
    pub(crate) fn cohort_deadline(&self) -> Option<Option<f64>> {
        match self {
            ModeState::Cohort { deadline, .. } => Some(*deadline),
            ModeState::Async { .. } => None,
        }
    }

    /// Async parameters `(max_staleness, alpha, buffer_target)`, if async.
    pub(crate) fn async_params(&self) -> Option<(u32, f64, usize)> {
        match self {
            ModeState::Async {
                max_staleness,
                alpha,
                buffer_target,
                ..
            } => Some((*max_staleness, *alpha, *buffer_target)),
            ModeState::Cohort { .. } => None,
        }
    }

    /// Deadline over-selection width (0 for sync and async).
    pub(crate) fn over_select(&self) -> usize {
        match self {
            ModeState::Cohort { over_select, .. } => *over_select,
            ModeState::Async { .. } => 0,
        }
    }

    /// Records how many clients the opened cohort round dispatched, and
    /// derives the round's quorum target from it: with `quorum < 1`, the
    /// barrier closes as soon as `ceil(quorum × dispatched)` (at least one)
    /// updates are buffered. At the default `quorum = 1.0` the target is
    /// unreachable-before-the-barrier (`usize::MAX`-guarded by the full
    /// house), keeping the historical close semantics bit for bit.
    pub(crate) fn set_dispatched(&mut self, count: usize) {
        if let ModeState::Cohort {
            dispatched,
            quorum,
            quorum_target,
            ..
        } = self
        {
            *dispatched = count;
            *quorum_target = if *quorum < 1.0 {
                ((*quorum * count as f64).ceil() as usize).max(1)
            } else {
                usize::MAX
            };
        }
    }

    /// Cohort arrival: buffer the update for the barrier, or count a
    /// post-deadline straggler (the server moved on). Returns whether the
    /// update was buffered — the topology layer books zone state only for
    /// updates the barrier will actually absorb.
    ///
    /// With `quorum < 1`, the arrival that fills the quorum target also
    /// closes the round: later events this round are straggler drops, just
    /// as if the deadline had fired, and the round ends at this arrival's
    /// time (events pop in time order, so `duration` is already final).
    pub(crate) fn buffer_arrival(
        &mut self,
        acc: &mut RoundAccumulator,
        client: usize,
        fl: InFlight,
        time: f64,
    ) -> bool {
        let ModeState::Cohort {
            arrived,
            duration,
            deadline_fired,
            quorum_target,
            quorum_fired,
            ..
        } = self
        else {
            unreachable!("cohort arrival outside a cohort round");
        };
        if *deadline_fired {
            acc.straggler_drops += 1;
            false
        } else {
            *duration = duration.max(time);
            arrived.insert(client, fl);
            if arrived.len() >= *quorum_target {
                *deadline_fired = true;
                *quorum_fired = true;
                acc.quorum_closes += 1;
            }
            true
        }
    }

    /// The round budget fired: later events are straggler drops, and the
    /// round lasts the full budget iff anyone is outstanding or was lost
    /// (the server cannot distinguish a straggler from a dead device).
    pub(crate) fn deadline_fired(&mut self, acc: &RoundAccumulator, time: f64) {
        // Zone-deadline and upload-failure drops count against the arrival
        // reckoning too: a client dropped at its zone (or whose retries ran
        // out) will never reach the server barrier.
        let drops = acc.straggler_drops + acc.zone_straggler_drops + acc.upload_failure_drops;
        let ModeState::Cohort {
            dispatched,
            arrived,
            duration,
            deadline_fired,
            quorum_fired,
            ..
        } = self
        else {
            unreachable!("the async pipeline never schedules a round deadline");
        };
        if *quorum_fired {
            // The quorum already closed the round at its final arrival; the
            // budget firing afterwards must not stretch the duration back.
            return;
        }
        *deadline_fired = true;
        if (arrived.len() as u64) + drops < *dispatched as u64 || drops > 0 {
            *duration = time;
        }
    }

    /// Barrier close: hands back the buffered arrivals (in ascending
    /// client-id order) and the round duration, resetting the per-round
    /// state for the next round.
    pub(crate) fn close_barrier(&mut self) -> (BTreeMap<usize, InFlight>, f64) {
        let ModeState::Cohort {
            arrived,
            duration,
            deadline_fired,
            dispatched,
            quorum_fired,
            ..
        } = self
        else {
            unreachable!("only cohort rounds have a barrier");
        };
        let taken = std::mem::take(arrived);
        let d = *duration;
        *duration = 0.0;
        *deadline_fired = false;
        *dispatched = 0;
        *quorum_fired = false;
        (taken, d)
    }

    /// Async round boundary: returns the closing round's start time and
    /// opens the next round at `now`.
    pub(crate) fn bump_round_start(&mut self, now: f64) -> f64 {
        let ModeState::Async { round_start, .. } = self else {
            unreachable!("cohort rounds close at the barrier");
        };
        let start = *round_start;
        *round_start = now;
        start
    }
}

/// Running totals of the currently open round.
#[derive(Debug, Clone, Default)]
pub(crate) struct RoundAccumulator {
    /// Reports of the updates absorbed this round, in absorption order.
    pub reports: Vec<ClientReport>,
    /// FLOPs spent by every dispatched client (dropped work still costs).
    pub round_flops: f64,
    /// Bytes uploaded by the updates that actually landed.
    pub round_upload: f64,
    /// Dispatched clients whose updates were lost (deadline stragglers plus
    /// offline churn).
    pub straggler_drops: u64,
    /// Async updates discarded for exceeding the staleness bound.
    pub stale_discards: u64,
    /// Per-staleness absorption counts (empty outside async mode).
    pub staleness_hist: Vec<u64>,
    /// Two-tier topology: uploads dropped at their zone aggregator because
    /// the zone's deadline had fired (0 under the flat topology).
    pub zone_straggler_drops: u64,
    /// Two-tier topology: bytes the zone tier forwarded to the server this
    /// round — combined pre-merged uploads in the cohort modes, individual
    /// store-and-forward uploads in async mode (0 under flat).
    pub zone_upload: f64,
    /// Upload attempts that failed transiently and were retried.
    pub retry_attempts: u64,
    /// Dispatched clients permanently lost after exhausting their upload
    /// retry budget.
    pub upload_failure_drops: u64,
    /// The subset of `straggler_drops` caused by mid-round offline churn
    /// (rather than the deadline catching a slow-but-alive client).
    pub churn_drops: u64,
    /// Cohort rounds this metrics entry closed via the quorum knob instead
    /// of the full barrier / deadline (0 or 1 in the cohort modes).
    pub quorum_closes: u64,
    /// Dispatches that found the device unavailable under the configured
    /// availability model and had to wait the outage out.
    pub unavailable_dispatches: u64,
    /// Total virtual seconds those dispatches spent waiting for the device
    /// to come back.
    pub unavailable_wait: f64,
}

impl RoundAccumulator {
    /// An accumulator whose staleness histogram has `hist_len` buckets
    /// (0 for the cohort modes, `max_staleness + 1` for async).
    pub(crate) fn new(hist_len: usize) -> Self {
        Self {
            staleness_hist: vec![0; hist_len],
            ..Self::default()
        }
    }

    /// Clears the round-scoped totals for the next round, keeping the
    /// histogram shape.
    pub(crate) fn reset(&mut self) {
        self.reports.clear();
        self.round_flops = 0.0;
        self.round_upload = 0.0;
        self.straggler_drops = 0;
        self.stale_discards = 0;
        self.staleness_hist.iter_mut().for_each(|v| *v = 0);
        self.zone_straggler_drops = 0;
        self.zone_upload = 0.0;
        self.retry_attempts = 0;
        self.upload_failure_drops = 0;
        self.churn_drops = 0;
        self.quorum_closes = 0;
        self.unavailable_dispatches = 0;
        self.unavailable_wait = 0.0;
    }

    /// Closes the round: folds the accumulated totals into one
    /// [`RoundMetrics`] entry. The caller supplies the clock facts (round
    /// boundaries and cumulative totals) because those are mode-specific;
    /// every mean here is computed over `reports` in absorption order, which
    /// the event schedule fixes independently of the thread schedule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        &self,
        round: usize,
        mean_accuracy: Option<f64>,
        round_time: f64,
        round_start_time: f64,
        cumulative_time: f64,
        cumulative_flops: f64,
        cumulative_upload: f64,
    ) -> RoundMetrics {
        let absorbed = self.reports.len().max(1) as f64;
        RoundMetrics {
            round,
            mean_accuracy,
            train_accuracy: self.reports.iter().map(|r| r.train_accuracy).sum::<f64>() / absorbed,
            train_loss: self.reports.iter().map(|r| r.train_loss).sum::<f64>() / absorbed,
            round_time,
            round_start_time,
            cumulative_time,
            round_flops: self.round_flops,
            cumulative_flops,
            round_upload_bytes: self.round_upload,
            cumulative_upload_bytes: cumulative_upload,
            mean_sparse_ratio: self.reports.iter().map(|r| r.sparse_ratio).sum::<f64>() / absorbed,
            mask_cache_hits: self.reports.iter().map(|r| r.mask_cache_hits as u64).sum(),
            mask_cache_misses: self
                .reports
                .iter()
                .map(|r| r.mask_cache_misses as u64)
                .sum(),
            straggler_drops: self.straggler_drops,
            stale_discards: self.stale_discards,
            staleness_hist: self.staleness_hist.clone(),
            mean_selection_utility: self
                .reports
                .iter()
                .map(|r| r.selection_utility)
                .sum::<f64>()
                / absorbed,
            first_time_participants: self
                .reports
                .iter()
                .filter(|r| r.participations == 1)
                .count() as u64,
            zone_straggler_drops: self.zone_straggler_drops,
            zone_upload_bytes: self.zone_upload,
            retry_attempts: self.retry_attempts,
            upload_failure_drops: self.upload_failure_drops,
            churn_drops: self.churn_drops,
            quorum_closes: self.quorum_closes,
            unavailable_dispatches: self.unavailable_dispatches,
            unavailable_wait_seconds: self.unavailable_wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(client: usize, loss: f64, participations: u64) -> ClientReport {
        ClientReport {
            train_loss: loss,
            train_accuracy: 0.5,
            flops: 10.0,
            upload_bytes: 4.0,
            selection_utility: loss,
            participations,
            ..ClientReport::idle(client)
        }
    }

    #[test]
    fn finish_averages_over_absorbed_reports() {
        let mut acc = RoundAccumulator::new(0);
        acc.reports.push(report(0, 1.0, 1));
        acc.reports.push(report(1, 3.0, 2));
        acc.round_flops = 20.0;
        acc.round_upload = 8.0;
        let m = acc.finish(4, Some(0.7), 1.5, 3.0, 4.5, 100.0, 40.0);
        assert_eq!(m.round, 4);
        assert_eq!(m.train_loss, 2.0);
        assert_eq!(m.mean_selection_utility, 2.0);
        assert_eq!(m.first_time_participants, 1);
        assert_eq!(m.round_flops, 20.0);
        assert_eq!(m.cumulative_time, 4.5);
        assert!(m.staleness_hist.is_empty());
    }

    #[test]
    fn empty_round_divides_by_one_not_zero() {
        let acc = RoundAccumulator::new(0);
        let m = acc.finish(0, None, 1.0, 0.0, 1.0, 0.0, 0.0);
        assert_eq!(m.train_loss, 0.0);
        assert_eq!(m.mean_selection_utility, 0.0);
        assert_eq!(m.first_time_participants, 0);
    }

    #[test]
    fn reset_keeps_the_histogram_shape() {
        let mut acc = RoundAccumulator::new(3);
        acc.staleness_hist[1] = 5;
        acc.stale_discards = 2;
        acc.reports.push(report(0, 1.0, 1));
        acc.reset();
        assert_eq!(acc.staleness_hist, vec![0, 0, 0]);
        assert_eq!(acc.stale_discards, 0);
        assert!(acc.reports.is_empty());
    }

    #[test]
    fn cohort_state_machine_buffers_then_drops_after_the_deadline() {
        let mut mode = ModeState::for_round_mode(RoundMode::deadline(2.0, 1), 8, 3, 1.0);
        assert_eq!(mode.hist_len(), 0);
        assert!(!mode.is_async());
        assert_eq!(mode.over_select(), 1);
        assert_eq!(mode.cohort_deadline(), Some(Some(2.0)));
        assert!(mode.async_params().is_none());
        mode.set_dispatched(2);

        let mut acc = RoundAccumulator::new(mode.hist_len());
        let fl = |c: usize| InFlight {
            dispatched_version: 0,
            report: ClientReport::idle(c),
            update: Box::new(()),
        };
        mode.buffer_arrival(&mut acc, 1, fl(1), 1.5);
        // One client outstanding at the budget: the round lasts the budget
        // and the late arrival is a straggler drop.
        mode.deadline_fired(&acc, 2.0);
        mode.buffer_arrival(&mut acc, 0, fl(0), 2.5);
        assert_eq!(acc.straggler_drops, 1);
        let (arrived, duration) = mode.close_barrier();
        assert_eq!(arrived.keys().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(duration, 2.0);
        // The barrier reset the per-round state.
        let (arrived, duration) = mode.close_barrier();
        assert!(arrived.is_empty());
        assert_eq!(duration, 0.0);
    }

    /// `ModeState` re-expresses the deadline semantics that
    /// `fedlps_runtime::RoundPlan::schedule` defines (the pure planner the
    /// pre-driver cohort loop called). This test replays randomized latency
    /// scenarios through both and compares survivors, drop counts and round
    /// duration, so the two formulations cannot silently drift apart.
    #[test]
    fn cohort_state_machine_matches_round_plan_semantics() {
        use fedlps_runtime::{DispatchSpec, EventKind, EventQueue, RoundPlan};

        let mut rng = fedlps_tensor::rng_from_seed(0xD3AD);
        for case in 0..200 {
            use rand::Rng;
            let n = rng.gen_range(1..6usize);
            let budget = rng.gen_range(1..40) as f64 * 0.1;
            let specs: Vec<DispatchSpec> = (0..n)
                .map(|client| DispatchSpec {
                    client,
                    compute_seconds: rng.gen_range(0..30) as f64 * 0.1,
                    upload_seconds: rng.gen_range(0..10) as f64 * 0.1,
                    offline_frac: rng
                        .gen_bool(0.3)
                        .then(|| rng.gen_range(0..10) as f64 * 0.099),
                })
                .collect();
            let plan = RoundPlan::schedule(&specs, Some(budget));

            // Drive ModeState with the same events the driver would pop.
            let mut mode = ModeState::for_round_mode(RoundMode::deadline(budget, 0), n, n, 1.0);
            mode.set_dispatched(n);
            let mut acc = RoundAccumulator::new(0);
            let mut queue = EventQueue::new();
            for spec in &specs {
                match spec.offline_frac {
                    Some(frac) => {
                        queue.push(frac * spec.total_seconds(), spec.client, EventKind::Offline)
                    }
                    None => queue.push(spec.total_seconds(), spec.client, EventKind::UploadFinish),
                };
            }
            queue.push(budget, usize::MAX, EventKind::RoundDeadline);
            while let Some(event) = queue.pop() {
                match event.kind {
                    EventKind::UploadFinish => {
                        let fl = InFlight {
                            dispatched_version: 0,
                            report: ClientReport::idle(event.client),
                            update: Box::new(()),
                        };
                        mode.buffer_arrival(&mut acc, event.client, fl, event.time);
                    }
                    EventKind::Offline => acc.straggler_drops += 1,
                    EventKind::RoundDeadline => mode.deadline_fired(&acc, event.time),
                    _ => unreachable!(),
                }
            }
            let (arrived, duration) = mode.close_barrier();
            assert_eq!(
                arrived.keys().copied().collect::<Vec<_>>(),
                {
                    let mut survivors = plan.arrived_clients();
                    survivors.sort_unstable();
                    survivors
                },
                "case {case}: survivors diverge from RoundPlan ({specs:?}, budget {budget})"
            );
            assert_eq!(
                acc.straggler_drops as usize,
                plan.dropped(),
                "case {case}: drop counts diverge from RoundPlan"
            );
            assert_eq!(
                duration, plan.duration,
                "case {case}: round duration diverges from RoundPlan"
            );
        }
    }

    #[test]
    fn quorum_closes_the_round_at_the_filling_arrival() {
        let fl = |c: usize| InFlight {
            dispatched_version: 0,
            report: ClientReport::idle(c),
            update: Box::new(()),
        };
        // 4 dispatched at quorum 0.6 → target ceil(2.4) = 3.
        let mut mode = ModeState::for_round_mode(RoundMode::deadline(10.0, 0), 8, 4, 0.6);
        mode.set_dispatched(4);
        let mut acc = RoundAccumulator::new(0);
        assert!(mode.buffer_arrival(&mut acc, 0, fl(0), 1.0));
        assert!(mode.buffer_arrival(&mut acc, 1, fl(1), 2.0));
        assert_eq!(acc.quorum_closes, 0);
        assert!(mode.buffer_arrival(&mut acc, 2, fl(2), 3.0));
        assert_eq!(acc.quorum_closes, 1);
        // The fourth client is now a straggler, and the budget firing later
        // must not stretch the round back out to 10.0.
        assert!(!mode.buffer_arrival(&mut acc, 3, fl(3), 4.0));
        assert_eq!(acc.straggler_drops, 1);
        mode.deadline_fired(&acc, 10.0);
        let (arrived, duration) = mode.close_barrier();
        assert_eq!(arrived.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(duration, 3.0);
    }

    #[test]
    fn quorum_of_one_keeps_the_full_barrier() {
        let fl = |c: usize| InFlight {
            dispatched_version: 0,
            report: ClientReport::idle(c),
            update: Box::new(()),
        };
        let mut mode = ModeState::for_round_mode(RoundMode::Synchronous, 8, 2, 1.0);
        mode.set_dispatched(2);
        let mut acc = RoundAccumulator::new(0);
        assert!(mode.buffer_arrival(&mut acc, 0, fl(0), 1.0));
        assert!(mode.buffer_arrival(&mut acc, 1, fl(1), 5.0));
        assert_eq!(acc.quorum_closes, 0);
        let (arrived, duration) = mode.close_barrier();
        assert_eq!(arrived.len(), 2);
        assert_eq!(duration, 5.0);
    }

    #[test]
    fn quorum_target_is_at_least_one_and_resets_per_round() {
        let mut mode = ModeState::for_round_mode(RoundMode::deadline(5.0, 0), 8, 1, 0.1);
        mode.set_dispatched(1);
        let mut acc = RoundAccumulator::new(0);
        let fl = InFlight {
            dispatched_version: 0,
            report: ClientReport::idle(0),
            update: Box::new(()),
        };
        assert!(mode.buffer_arrival(&mut acc, 0, fl, 0.5));
        assert_eq!(acc.quorum_closes, 1);
        let (_, duration) = mode.close_barrier();
        assert_eq!(duration, 0.5);
        // The next round starts with a fresh quorum state.
        mode.set_dispatched(1);
        let fl = InFlight {
            dispatched_version: 0,
            report: ClientReport::idle(3),
            update: Box::new(()),
        };
        assert!(mode.buffer_arrival(&mut acc, 3, fl, 0.25));
        assert_eq!(acc.quorum_closes, 2);
    }

    #[test]
    fn async_state_machine_tracks_round_starts() {
        let mut mode = ModeState::for_round_mode(RoundMode::asynchronous(2, 0.5), 8, 3, 1.0);
        assert!(mode.is_async());
        assert_eq!(mode.hist_len(), 3);
        assert_eq!(mode.async_params(), Some((2, 0.5, 3)));
        assert!(mode.cohort_deadline().is_none());
        assert_eq!(mode.bump_round_start(1.25), 0.0);
        assert_eq!(mode.bump_round_start(2.5), 1.25);
    }
}
