//! The immutable federation environment shared by server and clients.

use std::sync::Arc;

use fedlps_data::dataset::{Dataset, FederatedDataset};
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::{CostModel, DeviceFleet, HeterogeneityLevel};
use fedlps_nn::model::{ModelArch, ModelKind};
use fedlps_nn::sgd::SgdConfig;
use fedlps_tensor::rng_from_seed;

use crate::config::FlConfig;

/// Everything an [`FlAlgorithm`](crate::algorithm::FlAlgorithm) needs to read
/// about the world: the federated dataset, the device fleet, the model
/// architecture and the cost model. Algorithms keep their own mutable state
/// (global parameters, personalized models, bandit agents, …).
pub struct FlEnv {
    /// The federated dataset.
    pub data: FederatedDataset,
    /// Device profiles, one per client.
    pub fleet: DeviceFleet,
    /// The model architecture shared by all clients.
    pub arch: Arc<dyn ModelArch>,
    /// Federation hyper-parameters.
    pub config: FlConfig,
    /// Eq. (14) cost model.
    pub cost: CostModel,
    /// Registered population size (= `fleet.len()`). Equals
    /// `data.num_clients()` for standard environments; population-scale
    /// environments built with [`FlEnv::new_tiled`] register more clients
    /// than the dataset holds shards, tiling data shards over client ids.
    num_clients: usize,
}

impl std::fmt::Debug for FlEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlEnv")
            .field("clients", &self.data.num_clients())
            .field("arch", &self.arch.name())
            .field("config", &self.config)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl FlEnv {
    /// Builds an environment from its parts.
    pub fn new(
        data: FederatedDataset,
        fleet: DeviceFleet,
        arch: Arc<dyn ModelArch>,
        config: FlConfig,
    ) -> Self {
        assert_eq!(
            data.num_clients(),
            fleet.len(),
            "fleet size must match the number of clients"
        );
        let cost = CostModel::new(config.cost_alpha);
        let num_clients = fleet.len();
        Self {
            data,
            fleet,
            arch,
            config,
            cost,
            num_clients,
        }
    }

    /// Builds a population-scale environment: the fleet registers more
    /// clients than the dataset holds shards, and client `k` trains on shard
    /// `k % data.num_clients()`. With a [`DeviceFleet::lazy`] fleet this
    /// makes the registered population a free axis — the dataset pool and all
    /// per-client state stay sized by the shards / active participants.
    ///
    /// For `fleet.len() == data.num_clients()` the tiling is the identity
    /// and the environment is indistinguishable from [`FlEnv::new`].
    pub fn new_tiled(
        data: FederatedDataset,
        fleet: DeviceFleet,
        arch: Arc<dyn ModelArch>,
        config: FlConfig,
    ) -> Self {
        assert!(
            data.num_clients() > 0,
            "a tiled environment needs at least one data shard"
        );
        assert!(
            fleet.len() >= data.num_clients(),
            "the registered population ({}) cannot be smaller than the shard pool ({})",
            fleet.len(),
            data.num_clients()
        );
        let cost = CostModel::new(config.cost_alpha);
        let num_clients = fleet.len();
        Self {
            data,
            fleet,
            arch,
            config,
            cost,
            num_clients,
        }
    }

    /// Convenience constructor: builds the dataset from a scenario, samples a
    /// fleet at the given heterogeneity level and instantiates the paper's
    /// default backbone for that dataset.
    pub fn from_scenario(
        scenario: &ScenarioConfig,
        heterogeneity: HeterogeneityLevel,
        config: FlConfig,
    ) -> Self {
        let data = scenario.build();
        let fleet = DeviceFleet::sample(data.num_clients(), heterogeneity, config.seed);
        let arch: Arc<dyn ModelArch> = ModelKind::for_dataset(scenario.kind)
            .build(data.input, data.num_classes)
            .into();
        let mut config = config;
        if scenario.kind == DatasetKind::RedditLike {
            config.sgd = SgdConfig::text();
        }
        Self::new(data, fleet, arch, config)
    }

    /// Number of registered clients in the federation.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// The data shard a client trains and tests on. The modulo is the
    /// identity for standard environments (`num_clients ==
    /// data.num_clients()`); tiled population-scale environments wrap client
    /// ids over the shard pool.
    fn shard(&self, client: usize) -> usize {
        client % self.data.num_clients()
    }

    /// A client's local training data.
    pub fn train_data(&self, client: usize) -> &Dataset {
        &self.data.clients[self.shard(client)].train
    }

    /// A client's local test data.
    pub fn test_data(&self, client: usize) -> &Dataset {
        &self.data.clients[self.shard(client)].test
    }

    /// Capability fractions `z_k` of every client (static tiers). Allocates
    /// `O(population)` — population-scale paths read
    /// [`capability`](Self::capability) per participant instead.
    pub fn capabilities(&self) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| self.fleet.static_profile(k).capability)
            .collect()
    }

    /// Capability fraction `z_k` of one client (static tier).
    pub fn capability(&self, client: usize) -> f64 {
        self.fleet.static_profile(client).capability
    }

    /// FedAvg aggregation weights `|D_k|` for every client. Allocates
    /// `O(population)` — population-scale paths read
    /// [`train_size`](Self::train_size) per participant instead.
    pub fn train_sizes(&self) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| self.train_size(k))
            .collect()
    }

    /// FedAvg aggregation weight `|D_k|` of one client.
    pub fn train_size(&self, client: usize) -> f64 {
        self.train_data(client).len() as f64
    }

    /// The Eq. (14) full-dense-model latency prior of one client: compute
    /// time of a round of local SGD on the client's static device tier plus
    /// the upload time of the dense parameter vector. A pure function of the
    /// environment — well-defined before anyone has trained — used by the
    /// selection layer to score system speed.
    pub fn expected_latency(&self, client: usize) -> f64 {
        Self::latency_of(
            &*self.arch,
            &self.cost,
            &self.config,
            &self.fleet.static_profile(client),
        )
    }

    fn latency_of(
        arch: &dyn ModelArch,
        cost: &CostModel,
        config: &FlConfig,
        profile: &fedlps_device::DeviceProfile,
    ) -> f64 {
        crate::train::account_round(
            arch,
            cost,
            profile,
            None,
            config.local_iterations,
            config.batch_size,
            arch.param_count(),
            arch.param_count(),
        )
        .local_cost
        .total()
    }

    /// [`expected_latency`](Self::expected_latency) of every client.
    /// Allocates `O(population)` — population-scale paths use
    /// [`latency_prior`](Self::latency_prior) instead.
    pub fn expected_latencies(&self) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| self.expected_latency(k))
            .collect()
    }

    /// The fastest latency any device tier can achieve: the Eq. (14) cost on
    /// a full-capability profile. Lower-bounds every client's
    /// [`expected_latency`](Self::expected_latency) — the reference for the
    /// selection layer's speed term on lazy populations.
    pub fn latency_floor(&self) -> f64 {
        Self::latency_of(
            &*self.arch,
            &self.cost,
            &self.config,
            &fedlps_device::DeviceProfile::from_tier(fedlps_device::CapabilityTier::Full),
        )
    }

    /// The per-client latency prior as a self-contained function, for
    /// [`SelectionTracker::lazy`](fedlps_select::SelectionTracker::lazy):
    /// nothing `O(population)` is captured (the lazy fleet clone shares its
    /// memo cache through an `Arc`).
    pub fn latency_prior(&self) -> Box<dyn Fn(usize) -> f64 + Send + Sync> {
        let arch = Arc::clone(&self.arch);
        let cost = self.cost;
        let config = self.config;
        let fleet = self.fleet.clone();
        Box::new(move |k| Self::latency_of(&*arch, &cost, &config, &fleet.static_profile(k)))
    }

    /// Draws initial global parameters deterministically from the run seed.
    pub fn initial_params(&self) -> Vec<f32> {
        let mut rng = rng_from_seed(fedlps_tensor::split_seed(self.config.seed, 0x1217));
        self.arch.init_params(&mut rng)
    }

    /// The accuracy of a parameter vector on every client's local *training*
    /// data — used to seed the bandits' `a^{−1}` baseline.
    pub fn initial_training_accuracy(&self, params: &[f32]) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| self.arch.evaluate(params, self.train_data(k)).accuracy)
            .collect()
    }

    /// Mean personalized test accuracy of a *single shared* parameter vector
    /// across all clients (the deployment model of the conventional and
    /// heterogeneous sparse-training baselines).
    pub fn global_model_accuracy(&self, params: &[f32]) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for k in 0..self.num_clients() {
            let stats = self.arch.evaluate(params, self.test_data(k));
            acc += stats.accuracy * stats.samples as f64;
            n += stats.samples;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        )
    }

    #[test]
    fn env_shapes_are_consistent() {
        let env = tiny_env();
        assert_eq!(env.num_clients(), 8);
        assert_eq!(env.capabilities().len(), 8);
        assert_eq!(env.train_sizes().len(), 8);
        assert!(env.arch.param_count() > 0);
    }

    #[test]
    fn initial_params_are_deterministic() {
        let env = tiny_env();
        assert_eq!(env.initial_params(), env.initial_params());
    }

    #[test]
    fn text_scenario_uses_text_optimizer() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::RedditLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        );
        assert!(env.config.sgd.clip_norm.is_some());
    }

    #[test]
    fn expected_latencies_are_positive_and_scale_with_capability() {
        let env = tiny_env();
        let latencies = env.expected_latencies();
        assert_eq!(latencies.len(), env.num_clients());
        assert!(latencies.iter().all(|l| l.is_finite() && *l > 0.0));
        // The weakest tier pays the longest full-model round.
        let caps = env.capabilities();
        let slowest = (0..caps.len())
            .max_by(|&a, &b| latencies[a].total_cmp(&latencies[b]))
            .unwrap();
        let weakest = (0..caps.len())
            .min_by(|&a, &b| caps[a].total_cmp(&caps[b]))
            .unwrap();
        assert_eq!(caps[slowest], caps[weakest]);
    }

    #[test]
    fn initial_accuracies_are_probabilities() {
        let env = tiny_env();
        let params = env.initial_params();
        for a in env.initial_training_accuracy(&params) {
            assert!((0.0..=1.0).contains(&a));
        }
        let g = env.global_model_accuracy(&params);
        assert!((0.0..=1.0).contains(&g));
    }
}
