//! The immutable federation environment shared by server and clients.

use std::sync::Arc;

use fedlps_data::dataset::{Dataset, FederatedDataset};
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::{CostModel, DeviceFleet, HeterogeneityLevel};
use fedlps_nn::model::{ModelArch, ModelKind};
use fedlps_nn::sgd::SgdConfig;
use fedlps_tensor::rng_from_seed;

use crate::config::FlConfig;

/// Everything an [`FlAlgorithm`](crate::algorithm::FlAlgorithm) needs to read
/// about the world: the federated dataset, the device fleet, the model
/// architecture and the cost model. Algorithms keep their own mutable state
/// (global parameters, personalized models, bandit agents, …).
pub struct FlEnv {
    /// The federated dataset.
    pub data: FederatedDataset,
    /// Device profiles, one per client.
    pub fleet: DeviceFleet,
    /// The model architecture shared by all clients.
    pub arch: Arc<dyn ModelArch>,
    /// Federation hyper-parameters.
    pub config: FlConfig,
    /// Eq. (14) cost model.
    pub cost: CostModel,
}

impl std::fmt::Debug for FlEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlEnv")
            .field("clients", &self.data.num_clients())
            .field("arch", &self.arch.name())
            .field("config", &self.config)
            .field("cost", &self.cost)
            .finish_non_exhaustive()
    }
}

impl FlEnv {
    /// Builds an environment from its parts.
    pub fn new(
        data: FederatedDataset,
        fleet: DeviceFleet,
        arch: Arc<dyn ModelArch>,
        config: FlConfig,
    ) -> Self {
        assert_eq!(
            data.num_clients(),
            fleet.len(),
            "fleet size must match the number of clients"
        );
        let cost = CostModel::new(config.cost_alpha);
        Self {
            data,
            fleet,
            arch,
            config,
            cost,
        }
    }

    /// Convenience constructor: builds the dataset from a scenario, samples a
    /// fleet at the given heterogeneity level and instantiates the paper's
    /// default backbone for that dataset.
    pub fn from_scenario(
        scenario: &ScenarioConfig,
        heterogeneity: HeterogeneityLevel,
        config: FlConfig,
    ) -> Self {
        let data = scenario.build();
        let fleet = DeviceFleet::sample(data.num_clients(), heterogeneity, config.seed);
        let arch: Arc<dyn ModelArch> = ModelKind::for_dataset(scenario.kind)
            .build(data.input, data.num_classes)
            .into();
        let mut config = config;
        if scenario.kind == DatasetKind::RedditLike {
            config.sgd = SgdConfig::text();
        }
        Self::new(data, fleet, arch, config)
    }

    /// Number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        self.data.num_clients()
    }

    /// A client's local training data.
    pub fn train_data(&self, client: usize) -> &Dataset {
        &self.data.clients[client].train
    }

    /// A client's local test data.
    pub fn test_data(&self, client: usize) -> &Dataset {
        &self.data.clients[client].test
    }

    /// Capability fractions `z_k` of every client (static tiers).
    pub fn capabilities(&self) -> Vec<f64> {
        self.fleet.profiles().iter().map(|p| p.capability).collect()
    }

    /// FedAvg aggregation weights `|D_k|`.
    pub fn train_sizes(&self) -> Vec<f64> {
        self.data.train_sizes().iter().map(|&n| n as f64).collect()
    }

    /// The Eq. (14) full-dense-model latency prior of every client: compute
    /// time of a round of local SGD on the client's static device tier plus
    /// the upload time of the dense parameter vector. A pure function of the
    /// environment — well-defined before anyone has trained — used by the
    /// selection layer to score system speed.
    pub fn expected_latencies(&self) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| {
                crate::train::account_round(
                    &*self.arch,
                    &self.cost,
                    &self.fleet.static_profile(k),
                    None,
                    self.config.local_iterations,
                    self.config.batch_size,
                    self.arch.param_count(),
                    self.arch.param_count(),
                )
                .local_cost
                .total()
            })
            .collect()
    }

    /// Draws initial global parameters deterministically from the run seed.
    pub fn initial_params(&self) -> Vec<f32> {
        let mut rng = rng_from_seed(fedlps_tensor::split_seed(self.config.seed, 0x1217));
        self.arch.init_params(&mut rng)
    }

    /// The accuracy of a parameter vector on every client's local *training*
    /// data — used to seed the bandits' `a^{−1}` baseline.
    pub fn initial_training_accuracy(&self, params: &[f32]) -> Vec<f64> {
        (0..self.num_clients())
            .map(|k| self.arch.evaluate(params, self.train_data(k)).accuracy)
            .collect()
    }

    /// Mean personalized test accuracy of a *single shared* parameter vector
    /// across all clients (the deployment model of the conventional and
    /// heterogeneous sparse-training baselines).
    pub fn global_model_accuracy(&self, params: &[f32]) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for k in 0..self.num_clients() {
            let stats = self.arch.evaluate(params, self.test_data(k));
            acc += stats.accuracy * stats.samples as f64;
            n += stats.samples;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        )
    }

    #[test]
    fn env_shapes_are_consistent() {
        let env = tiny_env();
        assert_eq!(env.num_clients(), 8);
        assert_eq!(env.capabilities().len(), 8);
        assert_eq!(env.train_sizes().len(), 8);
        assert!(env.arch.param_count() > 0);
    }

    #[test]
    fn initial_params_are_deterministic() {
        let env = tiny_env();
        assert_eq!(env.initial_params(), env.initial_params());
    }

    #[test]
    fn text_scenario_uses_text_optimizer() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::RedditLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        );
        assert!(env.config.sgd.clip_norm.is_some());
    }

    #[test]
    fn expected_latencies_are_positive_and_scale_with_capability() {
        let env = tiny_env();
        let latencies = env.expected_latencies();
        assert_eq!(latencies.len(), env.num_clients());
        assert!(latencies.iter().all(|l| l.is_finite() && *l > 0.0));
        // The weakest tier pays the longest full-model round.
        let caps = env.capabilities();
        let slowest = (0..caps.len())
            .max_by(|&a, &b| latencies[a].total_cmp(&latencies[b]))
            .unwrap();
        let weakest = (0..caps.len())
            .min_by(|&a, &b| caps[a].total_cmp(&caps[b]))
            .unwrap();
        assert_eq!(caps[slowest], caps[weakest]);
    }

    #[test]
    fn initial_accuracies_are_probabilities() {
        let env = tiny_env();
        let params = env.initial_params();
        for a in env.initial_training_accuracy(&params) {
            assert!((0.0..=1.0).contains(&a));
        }
        let g = env.global_model_accuracy(&params);
        assert!((0.0..=1.0).contains(&g));
    }
}
