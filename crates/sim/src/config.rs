//! Federation hyper-parameters.

use fedlps_nn::sgd::SgdConfig;
use serde::{Deserialize, Serialize};

pub use crate::backend::BackendKind;
pub use fedlps_faults::{AvailabilityModel, FaultConfig};
pub use fedlps_runtime::RoundMode;
pub use fedlps_select::SelectionKind;
pub use fedlps_topo::Topology;

/// One actionable rejection from [`FlConfig::validate`]: which knob is bad
/// and what it must satisfy. [`Simulator`](crate::runner::Simulator) runs
/// the validation pass once at construction, so a bad robustness knob
/// (quorum > 1, backoff base ≤ 1, diurnal period ≤ 0, …) fails up front
/// with one readable message instead of a panic mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending knob, as a `FlConfig` field path.
    pub knob: &'static str,
    /// What the knob must satisfy (and what it was).
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid `FlConfig.{}`: {}", self.knob, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a federated-learning run.
///
/// Defaults follow the paper's setup scaled down for CPU execution: the paper
/// uses `R = 100` rounds, 10 clients per round, `E` local iterations with batch
/// size 20 and SGD with learning rate 0.1 (8 + clipping for the LSTM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of communication rounds `R`.
    pub rounds: usize,
    /// Number of clients selected per round (`C = max(⌊ϵK⌋, 1)`).
    pub clients_per_round: usize,
    /// Local iterations `E` per selected client per round.
    pub local_iterations: usize,
    /// Minibatch size for local SGD.
    pub batch_size: usize,
    /// Local optimiser settings.
    pub sgd: SgdConfig,
    /// Evaluate every client's model every `eval_every` rounds (1 = every
    /// round, matching the paper's accuracy-vs-round curves; 0 = never —
    /// whole-federation evaluation is an `O(population)` sweep, so
    /// population-scale runs disable it).
    pub eval_every: usize,
    /// Weight `α` of the communication term in the Eq. (14) cost model.
    pub cost_alpha: f64,
    /// Base RNG seed for client selection / minibatch sampling.
    pub seed: u64,
    /// Number of worker shards the round loop spreads the selected clients
    /// over: 1 = serial (the default), `n > 1` = at most `n` threads, 0 = one
    /// shard per available core. Results are bit-identical at every setting —
    /// client steps are pure and updates are absorbed in client-id order —
    /// so this is purely a wall-clock knob.
    pub parallelism: usize,
    /// How rounds execute on the virtual clock: the paper's synchronous
    /// barrier (the default), deadline rounds with over-selection, or
    /// staleness-aware asynchronous absorption. See
    /// [`RoundMode`] for the exact semantics; results stay bit-identical
    /// across `parallelism` settings in every mode.
    pub round_mode: RoundMode,
    /// Which selection policy forms cohorts, over-selects under a deadline
    /// and refills freed async slots (consulted whenever the algorithm does
    /// not override
    /// [`FlAlgorithm::select_clients`](crate::algorithm::FlAlgorithm::select_clients)).
    /// The default uniform policy reproduces the paper's sampling bit for
    /// bit.
    pub selection: SelectionKind,
    /// Which execution backend runs the client steps. The default `Auto`
    /// resolves from `parallelism` (serial at 1, thread pool above); results
    /// are bit-identical under every backend.
    pub backend: BackendKind,
    /// Execute sparse clients as *physically packed* submodels (gather the
    /// kept units into a compact model, train it, scatter the delta back)
    /// instead of masked full models. Purely a wall-clock knob: the packed
    /// path accumulates exactly the nonzero terms of the masked-dense path in
    /// the same order, so results are bit-identical either way (CI's
    /// determinism gate diffs the two). On by default; off reproduces the
    /// historical masked-dense execution for debugging and benchmarking.
    pub packed_execution: bool,
    /// The physical aggregation topology: `Flat` (clients upload straight to
    /// the server — the default, byte-identical to the historical traces) or
    /// `TwoTier` (clients → zone aggregators → server, with zone-level
    /// deadlines and uplink pricing). The topology overlays *timing, traffic
    /// and drops*; the absorbed arithmetic is the canonical ascending walk
    /// either way, so every topology stays bit-identical across backends and
    /// parallelism settings.
    pub topology: Topology,
    /// When (and how correlatedly) clients are unavailable. The default
    /// [`AvailabilityModel::Iid`] reproduces the historical
    /// `DynamicsConfig::offline_prob` coin flip bit for bit; the `Diurnal`
    /// and `Burst` models instead make dispatched clients *wait out* their
    /// seeded offline windows before computing — in every round mode,
    /// including synchronous, so a barrier genuinely stalls on a night
    /// wave.
    pub availability: AvailabilityModel,
    /// Transient upload faults with retry + exponential backoff (see
    /// [`FaultConfig`]); the default injects nothing. Failed attempts are
    /// replayed as `UploadRetry` events through the event queue, so retry
    /// schedules stay bit-identical at every parallelism/backend/topology
    /// setting.
    pub faults: FaultConfig,
    /// Barrier quorum in `(0, 1]`: a sync/deadline round closes as soon as
    /// this fraction of the dispatched cohort has been buffered, instead of
    /// stalling on a correlated outage. `1.0` (the default) waits for the
    /// full cohort — the historical behaviour. Later arrivals of a
    /// quorum-closed round drop as stragglers; the degraded close is
    /// surfaced as `quorum_closes` in the round metrics. Async rounds
    /// ignore the knob (their buffer target plays the same role).
    pub quorum: f64,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            clients_per_round: 5,
            local_iterations: 5,
            batch_size: 20,
            sgd: SgdConfig::vision(),
            eval_every: 1,
            cost_alpha: 1.0,
            seed: 7,
            parallelism: 1,
            round_mode: RoundMode::Synchronous,
            selection: SelectionKind::Uniform,
            backend: BackendKind::Auto,
            packed_execution: true,
            topology: Topology::Flat,
            availability: AvailabilityModel::Iid,
            faults: FaultConfig::none(),
            quorum: 1.0,
        }
    }
}

impl FlConfig {
    /// A very small configuration for unit and integration tests.
    pub fn tiny() -> Self {
        Self {
            rounds: 6,
            clients_per_round: 3,
            local_iterations: 3,
            batch_size: 10,
            eval_every: 2,
            ..Self::default()
        }
    }

    /// The client-selection fraction `ϵ` implied by the configuration for a
    /// federation of `num_clients` clients.
    pub fn selection_fraction(&self, num_clients: usize) -> f64 {
        if num_clients == 0 {
            return 0.0;
        }
        self.clients_per_round.min(num_clients) as f64 / num_clients as f64
    }

    /// Builder-style override of the number of rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the optimiser.
    pub fn with_sgd(mut self, sgd: SgdConfig) -> Self {
        self.sgd = sgd;
        self
    }

    /// Builder-style override of clients per round.
    pub fn with_clients_per_round(mut self, c: usize) -> Self {
        self.clients_per_round = c.max(1);
        self
    }

    /// Builder-style override of the round-loop parallelism (0 = all cores).
    pub fn with_parallelism(mut self, shards: usize) -> Self {
        self.parallelism = shards;
        self
    }

    /// Builder-style override of the round execution mode.
    pub fn with_round_mode(mut self, mode: RoundMode) -> Self {
        self.round_mode = mode;
        self
    }

    /// Builder-style override of the client-selection policy.
    pub fn with_selection(mut self, selection: SelectionKind) -> Self {
        self.selection = selection;
        self
    }

    /// Builder-style override of the execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style override of the packed-submodel execution switch.
    pub fn with_packed_execution(mut self, packed: bool) -> Self {
        self.packed_execution = packed;
        self
    }

    /// Builder-style override of the aggregation topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder-style override of the availability model.
    pub fn with_availability(mut self, availability: AvailabilityModel) -> Self {
        self.availability = availability;
        self
    }

    /// Builder-style override of the transient upload-fault knobs.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style override of the barrier quorum fraction.
    pub fn with_quorum(mut self, quorum: f64) -> Self {
        self.quorum = quorum;
        self
    }

    /// Checks every knob once, returning the first violation as one
    /// actionable [`ConfigError`]. [`Simulator`](crate::runner::Simulator)
    /// runs this at construction; call it directly to pre-flight a config
    /// without building an environment.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |knob: &'static str, message: String| Err(ConfigError { knob, message });
        if self.rounds == 0 {
            return err("rounds", "must be at least 1".to_string());
        }
        if self.clients_per_round == 0 {
            return err("clients_per_round", "must be at least 1".to_string());
        }
        if self.local_iterations == 0 {
            return err("local_iterations", "must be at least 1".to_string());
        }
        if self.batch_size == 0 {
            return err("batch_size", "must be at least 1".to_string());
        }
        if !(self.cost_alpha.is_finite() && self.cost_alpha >= 0.0) {
            return err(
                "cost_alpha",
                format!("must be finite and >= 0, got {}", self.cost_alpha),
            );
        }
        // Mirror the RoundMode constructor contracts for directly
        // constructed variants.
        match self.round_mode {
            RoundMode::Synchronous => {}
            RoundMode::Deadline { budget, .. } => {
                if !(budget.is_finite() && budget > 0.0) {
                    return err(
                        "round_mode",
                        format!("deadline budget must be finite and > 0, got {budget}"),
                    );
                }
            }
            RoundMode::Async { alpha, .. } => {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return err(
                        "round_mode",
                        format!("async staleness discount must be in (0, 1], got {alpha}"),
                    );
                }
            }
        }
        if !(self.quorum > 0.0 && self.quorum <= 1.0) {
            return err(
                "quorum",
                format!(
                    "must be in (0, 1] — a zero quorum closes rounds before \
                     anyone reports — got {}",
                    self.quorum
                ),
            );
        }
        if let Err(message) = self.availability.validate() {
            return err("availability", message);
        }
        if let Err(message) = self.faults.validate() {
            return err("faults", message);
        }
        Ok(())
    }

    /// The number of worker shards the round loop should actually use:
    /// resolves the `0 = auto` convention against the machine's core count.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = FlConfig::default();
        assert!(cfg.rounds > 0 && cfg.clients_per_round > 0 && cfg.local_iterations > 0);
        assert!(cfg.eval_every >= 1);
    }

    #[test]
    fn selection_fraction() {
        let cfg = FlConfig::default().with_clients_per_round(10);
        assert!((cfg.selection_fraction(100) - 0.1).abs() < 1e-12);
        assert!((cfg.selection_fraction(5) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.selection_fraction(0), 0.0);
    }

    #[test]
    fn builders_apply() {
        let cfg = FlConfig::tiny()
            .with_rounds(3)
            .with_seed(99)
            .with_clients_per_round(0)
            .with_parallelism(4);
        assert_eq!(cfg.rounds, 3);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.clients_per_round, 1, "clamps to at least one client");
        assert_eq!(cfg.parallelism, 4);
    }

    #[test]
    fn parallelism_resolves_auto_and_explicit() {
        assert_eq!(FlConfig::default().parallelism, 1, "serial by default");
        assert_eq!(FlConfig::default().effective_parallelism(), 1);
        let auto = FlConfig::default().with_parallelism(0);
        assert!(auto.effective_parallelism() >= 1);
        assert_eq!(
            FlConfig::default()
                .with_parallelism(3)
                .effective_parallelism(),
            3
        );
    }

    #[test]
    fn serde_roundtrip() {
        for cfg in [
            FlConfig::default(),
            FlConfig::default().with_round_mode(RoundMode::deadline(2.0, 3)),
            FlConfig::default().with_round_mode(RoundMode::asynchronous(4, 0.5)),
            FlConfig::default()
                .with_selection(SelectionKind::utility())
                .with_backend(BackendKind::ThreadPool),
            FlConfig::default().with_selection(SelectionKind::power_of_choice()),
            FlConfig::default().with_packed_execution(false),
            FlConfig::default().with_topology(Topology::two_tier().with_zone_deadline(0.25)),
            FlConfig::default()
                .with_availability(AvailabilityModel::from_name("diurnal").unwrap())
                .with_quorum(0.75),
            FlConfig::default()
                .with_availability(AvailabilityModel::from_name("burst").unwrap())
                .with_faults(FaultConfig {
                    upload_failure_prob: 0.2,
                    ..FaultConfig::default()
                }),
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: FlConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn round_mode_defaults_to_synchronous() {
        assert_eq!(FlConfig::default().round_mode, RoundMode::Synchronous);
        let cfg = FlConfig::tiny().with_round_mode(RoundMode::asynchronous(2, 0.8));
        assert_eq!(cfg.round_mode.name(), "async");
    }

    #[test]
    fn packed_execution_defaults_on() {
        assert!(FlConfig::default().packed_execution);
        assert!(
            !FlConfig::default()
                .with_packed_execution(false)
                .packed_execution
        );
    }

    #[test]
    fn topology_defaults_to_flat() {
        assert_eq!(FlConfig::default().topology, Topology::Flat);
        let cfg = FlConfig::tiny().with_topology(Topology::two_tier());
        assert_eq!(cfg.topology.name(), "two-tier");
        assert_eq!(cfg.topology.zones(), 4);
    }

    #[test]
    fn fault_knobs_default_to_the_legacy_behaviour() {
        let cfg = FlConfig::default();
        assert_eq!(cfg.availability, AvailabilityModel::Iid);
        assert!(!cfg.faults.enabled());
        assert_eq!(cfg.quorum, 1.0);
        cfg.validate().unwrap();
    }

    #[test]
    fn validate_rejects_each_bad_robustness_knob() {
        let cases: Vec<(FlConfig, &str)> = vec![
            (FlConfig::tiny().with_quorum(1.5), "quorum"),
            (FlConfig::tiny().with_quorum(0.0), "quorum"),
            (
                FlConfig::tiny().with_faults(FaultConfig {
                    upload_failure_prob: 0.1,
                    backoff_base: 1.0,
                    ..FaultConfig::default()
                }),
                "faults",
            ),
            (
                FlConfig::tiny().with_availability(AvailabilityModel::Diurnal {
                    period: 0.0,
                    phase_spread: 1.0,
                    night_offline: 0.3,
                }),
                "availability",
            ),
            (
                FlConfig::tiny().with_availability(AvailabilityModel::Burst {
                    zones: 4,
                    every: 1.0,
                    outage: 2.0,
                }),
                "availability",
            ),
            (FlConfig::tiny().with_rounds(0), "rounds"),
            (
                FlConfig {
                    round_mode: RoundMode::Deadline {
                        budget: f64::INFINITY,
                        over_select: 1,
                    },
                    ..FlConfig::tiny()
                },
                "round_mode",
            ),
            (
                FlConfig {
                    round_mode: RoundMode::Async {
                        max_staleness: 2,
                        alpha: 0.0,
                    },
                    ..FlConfig::tiny()
                },
                "round_mode",
            ),
        ];
        for (cfg, knob) in cases {
            let e = cfg.validate().unwrap_err();
            assert_eq!(e.knob, knob, "wrong knob blamed: {e}");
            // The Display form is the one actionable message the Simulator
            // panics with — it must name the field path.
            assert!(e.to_string().contains(&format!("FlConfig.{knob}")));
        }
    }

    #[test]
    fn selection_and_backend_default_to_the_legacy_behaviour() {
        let cfg = FlConfig::default();
        assert_eq!(cfg.selection, SelectionKind::Uniform);
        assert_eq!(cfg.backend, BackendKind::Auto);
        let cfg = cfg
            .with_selection(SelectionKind::utility())
            .with_backend(BackendKind::Serial);
        assert_eq!(cfg.selection.name(), "utility");
        assert_eq!(cfg.backend.name(), "serial");
    }
}
