//! Federation hyper-parameters.

use fedlps_nn::sgd::SgdConfig;
use serde::{Deserialize, Serialize};

pub use crate::backend::BackendKind;
pub use fedlps_runtime::RoundMode;
pub use fedlps_select::SelectionKind;
pub use fedlps_topo::Topology;

/// Configuration of a federated-learning run.
///
/// Defaults follow the paper's setup scaled down for CPU execution: the paper
/// uses `R = 100` rounds, 10 clients per round, `E` local iterations with batch
/// size 20 and SGD with learning rate 0.1 (8 + clipping for the LSTM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of communication rounds `R`.
    pub rounds: usize,
    /// Number of clients selected per round (`C = max(⌊ϵK⌋, 1)`).
    pub clients_per_round: usize,
    /// Local iterations `E` per selected client per round.
    pub local_iterations: usize,
    /// Minibatch size for local SGD.
    pub batch_size: usize,
    /// Local optimiser settings.
    pub sgd: SgdConfig,
    /// Evaluate every client's model every `eval_every` rounds (1 = every
    /// round, matching the paper's accuracy-vs-round curves; 0 = never —
    /// whole-federation evaluation is an `O(population)` sweep, so
    /// population-scale runs disable it).
    pub eval_every: usize,
    /// Weight `α` of the communication term in the Eq. (14) cost model.
    pub cost_alpha: f64,
    /// Base RNG seed for client selection / minibatch sampling.
    pub seed: u64,
    /// Number of worker shards the round loop spreads the selected clients
    /// over: 1 = serial (the default), `n > 1` = at most `n` threads, 0 = one
    /// shard per available core. Results are bit-identical at every setting —
    /// client steps are pure and updates are absorbed in client-id order —
    /// so this is purely a wall-clock knob.
    pub parallelism: usize,
    /// How rounds execute on the virtual clock: the paper's synchronous
    /// barrier (the default), deadline rounds with over-selection, or
    /// staleness-aware asynchronous absorption. See
    /// [`RoundMode`] for the exact semantics; results stay bit-identical
    /// across `parallelism` settings in every mode.
    pub round_mode: RoundMode,
    /// Which selection policy forms cohorts, over-selects under a deadline
    /// and refills freed async slots (consulted whenever the algorithm does
    /// not override
    /// [`FlAlgorithm::select_clients`](crate::algorithm::FlAlgorithm::select_clients)).
    /// The default uniform policy reproduces the paper's sampling bit for
    /// bit.
    pub selection: SelectionKind,
    /// Which execution backend runs the client steps. The default `Auto`
    /// resolves from `parallelism` (serial at 1, thread pool above); results
    /// are bit-identical under every backend.
    pub backend: BackendKind,
    /// Execute sparse clients as *physically packed* submodels (gather the
    /// kept units into a compact model, train it, scatter the delta back)
    /// instead of masked full models. Purely a wall-clock knob: the packed
    /// path accumulates exactly the nonzero terms of the masked-dense path in
    /// the same order, so results are bit-identical either way (CI's
    /// determinism gate diffs the two). On by default; off reproduces the
    /// historical masked-dense execution for debugging and benchmarking.
    pub packed_execution: bool,
    /// The physical aggregation topology: `Flat` (clients upload straight to
    /// the server — the default, byte-identical to the historical traces) or
    /// `TwoTier` (clients → zone aggregators → server, with zone-level
    /// deadlines and uplink pricing). The topology overlays *timing, traffic
    /// and drops*; the absorbed arithmetic is the canonical ascending walk
    /// either way, so every topology stays bit-identical across backends and
    /// parallelism settings.
    pub topology: Topology,
}

impl Default for FlConfig {
    fn default() -> Self {
        Self {
            rounds: 30,
            clients_per_round: 5,
            local_iterations: 5,
            batch_size: 20,
            sgd: SgdConfig::vision(),
            eval_every: 1,
            cost_alpha: 1.0,
            seed: 7,
            parallelism: 1,
            round_mode: RoundMode::Synchronous,
            selection: SelectionKind::Uniform,
            backend: BackendKind::Auto,
            packed_execution: true,
            topology: Topology::Flat,
        }
    }
}

impl FlConfig {
    /// A very small configuration for unit and integration tests.
    pub fn tiny() -> Self {
        Self {
            rounds: 6,
            clients_per_round: 3,
            local_iterations: 3,
            batch_size: 10,
            eval_every: 2,
            ..Self::default()
        }
    }

    /// The client-selection fraction `ϵ` implied by the configuration for a
    /// federation of `num_clients` clients.
    pub fn selection_fraction(&self, num_clients: usize) -> f64 {
        if num_clients == 0 {
            return 0.0;
        }
        self.clients_per_round.min(num_clients) as f64 / num_clients as f64
    }

    /// Builder-style override of the number of rounds.
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style override of the optimiser.
    pub fn with_sgd(mut self, sgd: SgdConfig) -> Self {
        self.sgd = sgd;
        self
    }

    /// Builder-style override of clients per round.
    pub fn with_clients_per_round(mut self, c: usize) -> Self {
        self.clients_per_round = c.max(1);
        self
    }

    /// Builder-style override of the round-loop parallelism (0 = all cores).
    pub fn with_parallelism(mut self, shards: usize) -> Self {
        self.parallelism = shards;
        self
    }

    /// Builder-style override of the round execution mode.
    pub fn with_round_mode(mut self, mode: RoundMode) -> Self {
        self.round_mode = mode;
        self
    }

    /// Builder-style override of the client-selection policy.
    pub fn with_selection(mut self, selection: SelectionKind) -> Self {
        self.selection = selection;
        self
    }

    /// Builder-style override of the execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Builder-style override of the packed-submodel execution switch.
    pub fn with_packed_execution(mut self, packed: bool) -> Self {
        self.packed_execution = packed;
        self
    }

    /// Builder-style override of the aggregation topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The number of worker shards the round loop should actually use:
    /// resolves the `0 = auto` convention against the machine's core count.
    pub fn effective_parallelism(&self) -> usize {
        if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.parallelism
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = FlConfig::default();
        assert!(cfg.rounds > 0 && cfg.clients_per_round > 0 && cfg.local_iterations > 0);
        assert!(cfg.eval_every >= 1);
    }

    #[test]
    fn selection_fraction() {
        let cfg = FlConfig::default().with_clients_per_round(10);
        assert!((cfg.selection_fraction(100) - 0.1).abs() < 1e-12);
        assert!((cfg.selection_fraction(5) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.selection_fraction(0), 0.0);
    }

    #[test]
    fn builders_apply() {
        let cfg = FlConfig::tiny()
            .with_rounds(3)
            .with_seed(99)
            .with_clients_per_round(0)
            .with_parallelism(4);
        assert_eq!(cfg.rounds, 3);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.clients_per_round, 1, "clamps to at least one client");
        assert_eq!(cfg.parallelism, 4);
    }

    #[test]
    fn parallelism_resolves_auto_and_explicit() {
        assert_eq!(FlConfig::default().parallelism, 1, "serial by default");
        assert_eq!(FlConfig::default().effective_parallelism(), 1);
        let auto = FlConfig::default().with_parallelism(0);
        assert!(auto.effective_parallelism() >= 1);
        assert_eq!(
            FlConfig::default()
                .with_parallelism(3)
                .effective_parallelism(),
            3
        );
    }

    #[test]
    fn serde_roundtrip() {
        for cfg in [
            FlConfig::default(),
            FlConfig::default().with_round_mode(RoundMode::deadline(2.0, 3)),
            FlConfig::default().with_round_mode(RoundMode::asynchronous(4, 0.5)),
            FlConfig::default()
                .with_selection(SelectionKind::utility())
                .with_backend(BackendKind::ThreadPool),
            FlConfig::default().with_selection(SelectionKind::power_of_choice()),
            FlConfig::default().with_packed_execution(false),
            FlConfig::default().with_topology(Topology::two_tier().with_zone_deadline(0.25)),
        ] {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: FlConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back);
        }
    }

    #[test]
    fn round_mode_defaults_to_synchronous() {
        assert_eq!(FlConfig::default().round_mode, RoundMode::Synchronous);
        let cfg = FlConfig::tiny().with_round_mode(RoundMode::asynchronous(2, 0.8));
        assert_eq!(cfg.round_mode.name(), "async");
    }

    #[test]
    fn packed_execution_defaults_on() {
        assert!(FlConfig::default().packed_execution);
        assert!(
            !FlConfig::default()
                .with_packed_execution(false)
                .packed_execution
        );
    }

    #[test]
    fn topology_defaults_to_flat() {
        assert_eq!(FlConfig::default().topology, Topology::Flat);
        let cfg = FlConfig::tiny().with_topology(Topology::two_tier());
        assert_eq!(cfg.topology.name(), "two-tier");
        assert_eq!(cfg.topology.zones(), 4);
    }

    #[test]
    fn selection_and_backend_default_to_the_legacy_behaviour() {
        let cfg = FlConfig::default();
        assert_eq!(cfg.selection, SelectionKind::Uniform);
        assert_eq!(cfg.backend, BackendKind::Auto);
        let cfg = cfg
            .with_selection(SelectionKind::utility())
            .with_backend(BackendKind::Serial);
        assert_eq!(cfg.selection.name(), "utility");
        assert_eq!(cfg.backend.name(), "serial");
    }
}
