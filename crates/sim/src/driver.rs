//! The mode-agnostic, event-driven round driver.
//!
//! One loop drives all three [`RoundMode`]s. Each iteration pops the next
//! scheduler event and hands it to the layer that owns it:
//!
//! * **selection** ([`fedlps_select`]) decides who enters the pipeline — the
//!   base cohort at a round boundary, extra clients under deadline
//!   over-selection, one replacement per freed async slot;
//! * **execution** ([`crate::backend`]) runs the pure client steps of every
//!   dispatch batch, serially or on a worker pool, in event order;
//! * **absorption** ([`crate::absorb`]) books the outcomes: cohort modes
//!   buffer arrivals and absorb them at the barrier in ascending client-id
//!   order, async mode absorbs immediately with an `alpha^staleness`
//!   discount; deadline drops and staleness discards are event-handler
//!   cases of the shared [`ModeState`] machine, not separate loops;
//! * **topology** ([`crate::topology`]) overlays the physical aggregation
//!   path: flat is a pass-through, the two-tier zone tier adds zone-deadline
//!   drops (more event-handler cases), combined zone → server forwards and
//!   the async store-and-forward hop — timing, traffic and drops only, never
//!   the absorbed arithmetic.
//!
//! Cohort rounds run on a round-relative timeline — the queue drains
//! completely before the next round opens, reproducing the pure
//! [`RoundPlan`](fedlps_runtime::RoundPlan) semantics event for event — while
//! the async pipeline runs on the continuous virtual clock. Because every
//! event time is derived from the same arithmetic in the same order, and
//! every RNG stream is keyed by configuration rather than thread schedule,
//! all {mode × policy × backend × parallelism} combinations yield
//! bit-identical traces.

use std::collections::{BTreeMap, BTreeSet};

use fedlps_faults::FaultInjector;
use fedlps_runtime::{Event, EventKind, EventQueue, VirtualClock};
use fedlps_select::{ClientPool, SelectionPolicy, SelectionTracker};
use fedlps_tensor::{rng_from_seed, split_seed};
use rand::rngs::StdRng;

use crate::absorb::{InFlight, ModeState, RoundAccumulator};
use crate::algorithm::FlAlgorithm;
use crate::backend::{parallel_mean_accuracy, ExecutionBackend, StepTask};
use crate::env::FlEnv;
use crate::metrics::{RoundMetrics, RunResult};
use crate::topology::{absorb_arrivals, TopologyState};

/// RNG stream of the selection layer (cohorts, over-selection, refills).
const STREAM_SELECTION: u64 = 0x5E1E;
/// RNG stream family of `begin_round` (xor'd with the shifted round index).
const STREAM_ROUND: u64 = 0xB172;
/// Stream family of cohort client steps (keyed by round and client).
const STREAM_COHORT_STEP: u64 = 0xC11E;
/// Stream family of async client steps (keyed by dispatch sequence).
const STREAM_ASYNC_STEP: u64 = 0xA57C;

/// An in-flight client whose last upload attempt failed on the wire: what the
/// retry handler needs to replay the transmission.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// The scheduling tick the dispatch was keyed by (round index in the
    /// cohort modes, dispatch sequence in async) — retry fates draw from the
    /// same `(client, tick, attempt)` stream family as the initial attempt.
    tick: u64,
    /// Failed attempts so far (≥ 1 while a retry is pending).
    failures: u32,
    /// Wire cost of one retransmission: the upload leg plus the async
    /// store-and-forward hop, *excluding* compute and availability waits.
    resend_seconds: f64,
}

/// Drives one full federated run; built fresh per
/// [`Simulator::run`](crate::runner::Simulator::run) call.
pub(crate) struct Driver<'a> {
    env: &'a FlEnv,
    backend: Box<dyn ExecutionBackend>,
    policy: Box<dyn SelectionPolicy>,
    tracker: SelectionTracker,
    selection_rng: StdRng,
    queue: EventQueue,
    clock: VirtualClock,
    in_flight: BTreeMap<usize, InFlight>,
    pending: BTreeSet<usize>,
    acc: RoundAccumulator,
    rounds: Vec<RoundMetrics>,
    /// Current round (cohort) / server version (async).
    version: usize,
    cumulative_time: f64,
    cumulative_flops: f64,
    cumulative_upload: f64,
    dispatch_seq: u64,
    mode: ModeState,
    topo: TopologyState,
    injector: FaultInjector,
    /// Clients with a pending `UploadRetry` event, keyed by client id.
    retry: BTreeMap<usize, RetryState>,
}

impl<'a> Driver<'a> {
    pub(crate) fn new(env: &'a FlEnv) -> Self {
        let mode = ModeState::for_round_mode(
            env.config.round_mode,
            env.num_clients(),
            env.config.clients_per_round,
            env.config.quorum,
        );
        // A lazy fleet means a population-scale registry: per-client state
        // must stay O(participants), so the tracker computes its latency
        // prior per id instead of pre-building an O(population) vector.
        let tracker = if env.fleet.is_lazy() {
            SelectionTracker::lazy(env.num_clients(), env.latency_prior(), env.latency_floor())
        } else {
            SelectionTracker::new(env.expected_latencies())
        };
        Self {
            backend: env.config.backend.build(&env.config),
            policy: env.config.selection.build(),
            tracker,
            selection_rng: rng_from_seed(split_seed(env.config.seed, STREAM_SELECTION)),
            queue: EventQueue::new(),
            clock: VirtualClock::new(),
            in_flight: BTreeMap::new(),
            pending: BTreeSet::new(),
            acc: RoundAccumulator::new(mode.hist_len()),
            rounds: Vec::with_capacity(env.config.rounds),
            version: 0,
            cumulative_time: 0.0,
            cumulative_flops: 0.0,
            cumulative_upload: 0.0,
            dispatch_seq: 0,
            mode,
            topo: TopologyState::new(env),
            injector: FaultInjector::new(env.config.seed, env.config.faults),
            retry: BTreeMap::new(),
            env,
        }
    }

    /// Runs the federation to completion.
    pub(crate) fn run(mut self, algorithm: &mut dyn FlAlgorithm) -> RunResult {
        algorithm.setup(self.env);
        let total = self.env.config.rounds;
        self.open_round(algorithm);

        // The one driver loop: every mode advances exclusively through here.
        while self.version < total {
            match self.queue.pop() {
                Some(event) => self.handle_event(algorithm, event),
                // The scheduler ran dry: a cohort round is fully resolved
                // (close the barrier, open the next round), or the async
                // pipeline starved (an empty federation) — return what we
                // have rather than spinning forever.
                None if !self.mode.is_async() => {
                    self.close_cohort_round(algorithm);
                    if self.version < total {
                        self.open_round(algorithm);
                    }
                }
                None => break,
            }
        }

        // The dense per-client census is an O(population) vector; a
        // population-scale run reports no census rather than materializing
        // one entry per registered client.
        let participations = if self.env.fleet.is_lazy() {
            Vec::new()
        } else {
            self.tracker.participations()
        };
        RunResult::from_rounds(algorithm.name(), self.env.data.name.clone(), self.rounds)
            .with_client_participations(participations)
    }

    fn handle_event(&mut self, algorithm: &mut dyn FlAlgorithm, event: Event) {
        if self.mode.is_async() {
            self.clock.advance_to(event.time);
        }
        match event.kind {
            EventKind::Dispatch => self.on_dispatch(algorithm, event),
            EventKind::UploadFinish => self.on_upload(algorithm, event),
            EventKind::UploadRetry => self.on_upload_retry(event),
            EventKind::Offline => self.on_offline(event),
            // A zone aggregator's budget expired: the event carries the zone
            // id, and later arrivals of that zone drop at the zone tier.
            EventKind::ZoneDeadline => self.topo.zone_deadline_fired(event.client, event.time),
            EventKind::RoundDeadline => self.mode.deadline_fired(&self.acc, event.time),
            EventKind::ComputeFinish => {
                unreachable!("the driver never schedules {:?}", event.kind)
            }
        }
    }

    /// Selection layer: forms the round's cohort (plus deadline
    /// over-selection) and schedules its dispatches. Round 0 of the async
    /// pipeline uses the same path — its initial in-flight set *is* a cohort.
    fn open_round(&mut self, algorithm: &mut dyn FlAlgorithm) {
        let env = self.env;
        let round = self.version;
        let mut selected = match algorithm.select_clients(env, round, &mut self.selection_rng) {
            Some(cohort) => cohort,
            None => self.policy.select_cohort(
                &self.tracker,
                round,
                env.config.clients_per_round,
                &mut self.selection_rng,
            ),
        };
        assert!(
            !selected.is_empty(),
            "a round must select at least one client"
        );
        let extra = self.policy.select_extra(
            &self.tracker,
            round,
            &selected,
            self.mode.over_select(),
            &mut self.selection_rng,
        );
        selected.extend(extra);

        // Round-level mutable preparation (shared-mask refreshes etc.); its
        // RNG stream depends only on (seed, round).
        let mut round_rng = rng_from_seed(split_seed(
            env.config.seed,
            STREAM_ROUND ^ (round as u64) << 1,
        ));
        algorithm.begin_round(env, round, &selected, &mut round_rng);

        // Count the cohort *after* dedup, so a custom `select_clients`
        // returning a repeated id cannot convince the deadline rule that a
        // phantom client is still outstanding.
        let mut dispatched = Vec::new();
        for client in selected {
            if self.pending.insert(client) {
                self.queue.push(0.0, client, EventKind::Dispatch);
                dispatched.push(client);
            }
        }
        self.mode.set_dispatched(dispatched.len());
        if let Some(Some(budget)) = self.mode.cohort_deadline() {
            self.queue
                .push(budget, Event::ROUND_SCOPE, EventKind::RoundDeadline);
        }
        // The zone tier opens its round over the same cohort. Cohort modes
        // only: the async pipeline has no round-relative timeline to anchor
        // zone deadlines to (its zone tier is a store-and-forward hop).
        if !self.mode.is_async() {
            for (zone, deadline) in self.topo.open_cohort_round(&dispatched) {
                self.queue.push(deadline, zone, EventKind::ZoneDeadline);
            }
        }
    }

    /// Execution layer: coalesces every dispatch scheduled for this exact
    /// instant into one batch (they all see the same server state, so
    /// batching is semantics-free), steps it on the backend and schedules
    /// each outcome's arrival — or its mid-round disconnect.
    fn on_dispatch(&mut self, algorithm: &mut dyn FlAlgorithm, event: Event) {
        let env = self.env;
        let round = self.version;
        let cohort_deadline = self.mode.cohort_deadline();

        let mut batch = vec![(event.client, self.dispatch_seq)];
        self.dispatch_seq += 1;
        while self
            .queue
            .peek()
            .is_some_and(|e| e.kind == EventKind::Dispatch && e.time == event.time)
        {
            let next = self.queue.pop().expect("peeked event exists");
            batch.push((next.client, self.dispatch_seq));
            self.dispatch_seq += 1;
        }
        // Each task owns an RNG stream keyed by the configuration (cohort:
        // round and client; async: dispatch sequence and client), so neither
        // the thread schedule nor the backend can leak into the results.
        let tasks: Vec<StepTask> = batch
            .iter()
            .map(|&(c, s)| StepTask {
                client: c,
                stream: match cohort_deadline {
                    Some(_) => STREAM_COHORT_STEP ^ ((c as u64) << 24) ^ round as u64,
                    None => STREAM_ASYNC_STEP ^ (s << 20) ^ c as u64,
                },
            })
            .collect();
        let outcomes = self.backend.run_steps(env, &*algorithm, round, &tasks);

        for ((client, seq), mut outcome) in batch.into_iter().zip(outcomes) {
            debug_assert_eq!(client, outcome.report.client_id);
            self.pending.remove(&client);
            self.tracker.on_dispatch(client, round);
            outcome.report.selection_utility = self.tracker.utility(client);
            outcome.report.participations = self.tracker.stats(client).participations;

            let total = outcome.report.local_cost.total();
            let churn = match cohort_deadline {
                // Dropped work still costs: cohort FLOPs are booked at
                // dispatch, in ascending client order (the batch order).
                // Synchronous servers wait churn out (legacy Eq. 18), so only
                // deadline rounds consult the fleet's churn model, keyed by
                // the round; the async pipeline keys churn by the dispatch
                // sequence.
                Some(deadline) => {
                    self.acc.round_flops += outcome.report.flops;
                    deadline
                        .is_some()
                        .then(|| env.fleet.offline_churn(client, round as u64))
                        .flatten()
                }
                None => env.fleet.offline_churn(client, seq),
            };
            match churn {
                Some(frac) => {
                    self.queue
                        .push(event.time + frac * total, client, EventKind::Offline)
                }
                None => {
                    // Async uploads traverse the zone tier store-and-forward:
                    // the zone → server leg re-prices the payload over the
                    // zone uplink. Cohort zones buffer instead — their cost
                    // is the combined forward at the barrier.
                    let hop = match cohort_deadline {
                        Some(_) => 0.0,
                        None => self.topo.async_zone_hop(outcome.report.upload_bytes),
                    };
                    // A retransmission replays only the wire legs — capture
                    // their cost before availability waits land in the report.
                    let resend_seconds = outcome.report.local_cost.comm_seconds + hop;
                    // Correlated availability: a device inside an outage
                    // window waits it out before starting. Unlike i.i.d.
                    // churn this binds in *every* mode — a synchronous server
                    // waits the outage out (the quorum knob exists to bound
                    // exactly that) — and the wait is billed as latency so
                    // selection policies can learn to route around it.
                    // Cohort rounds run on a round-relative timeline; the
                    // model is sampled on the absolute virtual clock.
                    let abs_time = match cohort_deadline {
                        Some(_) => self.cumulative_time + event.time,
                        None => event.time,
                    };
                    let wait = env
                        .config
                        .availability
                        .offline_until(env.config.seed, client, abs_time)
                        .map_or(0.0, |until| until - abs_time);
                    if wait > 0.0 {
                        self.acc.unavailable_dispatches += 1;
                        self.acc.unavailable_wait += wait;
                        outcome.report.local_cost.comm_seconds += wait;
                    }
                    let arrival = event.time + wait + total + hop;
                    let tick = match cohort_deadline {
                        Some(_) => round as u64,
                        None => seq,
                    };
                    if self.injector.upload_attempt_fails(client, tick, 0) {
                        self.retry.insert(
                            client,
                            RetryState {
                                tick,
                                failures: 1,
                                resend_seconds,
                            },
                        );
                        self.queue.push(arrival, client, EventKind::UploadRetry)
                    } else {
                        self.queue.push(arrival, client, EventKind::UploadFinish)
                    }
                }
            };
            let evicted = self.in_flight.insert(
                client,
                InFlight {
                    dispatched_version: round,
                    report: outcome.report,
                    update: outcome.update,
                },
            );
            debug_assert!(evicted.is_none(), "client dispatched while in flight");
        }
    }

    /// Absorption layer, arrival case. Cohort modes buffer the update for the
    /// barrier (or count a straggler once the deadline fired); async mode
    /// absorbs immediately with the staleness discount and refills the slot.
    fn on_upload(&mut self, algorithm: &mut dyn FlAlgorithm, event: Event) {
        // A landed upload ends any retry bookkeeping for the client.
        self.retry.remove(&event.client);
        let fl = self
            .in_flight
            .remove(&event.client)
            .expect("arrival without a matching dispatch");
        let Some((max_staleness, alpha, buffer_target)) = self.mode.async_params() else {
            // An upload landing after its zone's deadline fired drops at the
            // zone aggregator — the server barrier never sees it.
            if self.topo.zone_dropped(event.client) {
                self.acc.zone_straggler_drops += 1;
                self.topo.on_resolved(event.client);
                return;
            }
            if self
                .mode
                .buffer_arrival(&mut self.acc, event.client, fl, event.time)
            {
                self.topo.on_survivor(event.client, event.time);
            } else {
                self.topo.on_resolved(event.client);
            }
            return;
        };

        self.acc.round_flops += fl.report.flops;
        self.acc.round_upload += fl.report.upload_bytes;
        self.acc.zone_upload += self.topo.async_forward_bytes(fl.report.upload_bytes);
        let staleness = (self.version - fl.dispatched_version) as u32;
        if staleness > max_staleness {
            self.acc.stale_discards += 1;
        } else {
            // Selection stats track *absorbed* reports only — an update the
            // server discards must not steer future cohorts.
            self.tracker.on_report(
                event.client,
                fl.report.train_loss,
                fl.report.local_cost.total(),
            );
            self.acc.staleness_hist[staleness as usize] += 1;
            let weight = alpha.powi(staleness as i32);
            algorithm.absorb_update_stale(self.env, self.version, fl.update, staleness, weight);
            self.acc.reports.push(fl.report);
        }
        // Refill the freed slot immediately.
        self.refill(event.time);

        if self.acc.reports.len() >= buffer_target {
            self.close_async_round(algorithm, event.time);
        }
    }

    /// Fault layer: the client's last upload attempt failed in transit. The
    /// event fires at the instant the update *would* have landed; the client
    /// either backs off and retransmits, or — once the retry budget is
    /// exhausted — drops permanently.
    fn on_upload_retry(&mut self, event: Event) {
        let state = *self
            .retry
            .get(&event.client)
            .expect("retry event without retry state");
        let fl = self
            .in_flight
            .get_mut(&event.client)
            .expect("retry event without a matching dispatch");
        // The failed attempt still burned its airtime: the bytes crossed the
        // uplink even though the server never saw a usable update.
        self.acc.round_upload += fl.report.upload_bytes;
        if state.failures > self.injector.config().max_retries {
            // Retry budget exhausted: the update is permanently lost. Like
            // churn, spent FLOPs still count against the federation.
            let fl = self
                .in_flight
                .remove(&event.client)
                .expect("checked in flight above");
            self.retry.remove(&event.client);
            self.acc.upload_failure_drops += 1;
            if self.mode.is_async() {
                self.acc.round_flops += fl.report.flops;
                self.refill(event.time);
            } else {
                // The client's zone stops waiting for it.
                self.topo.on_resolved(event.client);
            }
            return;
        }
        // Exponential backoff, then replay the wire legs. The extra latency
        // lands in the report so the selection tracker observes it.
        let delay = self.injector.backoff_delay(state.failures);
        let arrival = event.time + delay + state.resend_seconds;
        fl.report.local_cost.comm_seconds += delay + state.resend_seconds;
        self.acc.retry_attempts += 1;
        if self
            .injector
            .upload_attempt_fails(event.client, state.tick, state.failures)
        {
            self.retry
                .get_mut(&event.client)
                .expect("retry state present")
                .failures += 1;
            self.queue
                .push(arrival, event.client, EventKind::UploadRetry);
        } else {
            self.queue
                .push(arrival, event.client, EventKind::UploadFinish);
        }
    }

    /// Absorption layer, disconnect case: the device died mid-round. Its work
    /// is spent, its update is lost; async slots refill now.
    fn on_offline(&mut self, event: Event) {
        let fl = self
            .in_flight
            .remove(&event.client)
            .expect("offline event without a matching dispatch");
        // Pre-deadline churn and post-deadline stragglers both count as
        // drops (the server cannot tell them apart); `churn_drops` keeps the
        // cause attribution for the drop histogram.
        self.acc.straggler_drops += 1;
        self.acc.churn_drops += 1;
        if self.mode.is_async() {
            self.acc.round_flops += fl.report.flops;
            self.refill(event.time);
        } else {
            // The client's zone stops waiting for it.
            self.topo.on_resolved(event.client);
        }
    }

    /// Selection layer, async refill: one idle client (neither in flight nor
    /// holding an unprocessed dispatch) chosen by the policy.
    fn refill(&mut self, now: f64) {
        // The idle pool is the population minus the busy set — O(in-flight)
        // memory, never a population scan.
        let idle = ClientPool::excluding(
            self.env.num_clients(),
            self.in_flight
                .keys()
                .copied()
                .chain(self.pending.iter().copied()),
        );
        if let Some(next) =
            self.policy
                .select_refill(&self.tracker, self.version, &idle, &mut self.selection_rng)
        {
            self.pending.insert(next);
            self.queue.push(now, next, EventKind::Dispatch);
        }
    }

    /// Cohort barrier: absorb the survivors in ascending client-id order
    /// (fixed by the event schedule, never the thread schedule), aggregate,
    /// close the metrics round.
    fn close_cohort_round(&mut self, algorithm: &mut dyn FlAlgorithm) {
        let env = self.env;
        let round = self.version;
        let (arrived, duration) = self.mode.close_barrier();
        let tracker = &mut self.tracker;
        absorb_arrivals(
            algorithm,
            env,
            round,
            arrived,
            &mut self.acc,
            |c, loss, cost| {
                tracker.on_report(c, loss, cost);
            },
        );
        algorithm.aggregate(env, round, &self.acc.reports);

        // Cost accounting: the round duration *is* Eq. (18) in synchronous
        // mode and min(budget, last arrival) under a deadline; an active
        // zone tier extends it by the latest combined zone → server forward.
        let duration = self.topo.close_cohort_round(duration, &mut self.acc);
        let round_start_time = self.cumulative_time;
        self.cumulative_time += duration;
        self.close_round(
            algorithm,
            round,
            duration,
            round_start_time,
            self.cumulative_time,
        );
    }

    /// Async aggregation boundary: every `buffer_target` absorbed updates the
    /// server aggregates, bumps its version, emits one metrics round and
    /// re-fires `begin_round` so round-level server state keeps evolving.
    fn close_async_round(&mut self, algorithm: &mut dyn FlAlgorithm, now: f64) {
        let env = self.env;
        let version = self.version;
        algorithm.aggregate(env, version, &self.acc.reports);
        let round_start = self.mode.bump_round_start(now);
        self.close_round(algorithm, version, now - round_start, round_start, now);

        // Round-level server-side preparation for the next version (CS mask
        // refreshes, PruneFL re-pruning, …): same hook cadence and RNG
        // stream keying as the cohort path. No cohort exists at an async
        // version boundary, so the selected slice is empty; in-flight
        // clients keep the state they were dispatched against, which is
        // exactly what the staleness discount accounts for.
        if self.version < env.config.rounds {
            let mut round_rng = rng_from_seed(split_seed(
                env.config.seed,
                STREAM_ROUND ^ (self.version as u64) << 1,
            ));
            algorithm.begin_round(env, self.version, &[], &mut round_rng);
        }
    }

    /// Shared round close: cumulative accounting, periodic whole-federation
    /// evaluation, one [`RoundMetrics`] entry, version bump.
    fn close_round(
        &mut self,
        algorithm: &mut dyn FlAlgorithm,
        round: usize,
        round_time: f64,
        round_start_time: f64,
        cumulative_time: f64,
    ) {
        self.cumulative_flops += self.acc.round_flops;
        self.cumulative_upload += self.acc.round_upload;
        // `eval_every == 0` disables whole-federation evaluation entirely —
        // at population scale it is an O(population × eval) sweep.
        let eval_every = self.env.config.eval_every;
        let evaluate_now =
            eval_every != 0 && (round % eval_every == 0 || round + 1 == self.env.config.rounds);
        let mean_accuracy = evaluate_now.then(|| parallel_mean_accuracy(self.env, algorithm));
        self.rounds.push(self.acc.finish(
            round,
            mean_accuracy,
            round_time,
            round_start_time,
            cumulative_time,
            self.cumulative_flops,
            self.cumulative_upload,
        ));
        self.acc.reset();
        self.version += 1;
    }
}
