//! The federation round loop, executed on the event-driven virtual clock.
//!
//! Client-side training dominates a round's wall-clock cost, so the loop
//! shards the selected clients across worker threads when
//! [`FlConfig::parallelism`](crate::config::FlConfig) allows it. Sharding is
//! observationally invisible: [`FlAlgorithm::client_step`] is pure (`&self` +
//! a per-client RNG stream derived only from the configuration), and updates
//! are absorbed in an order fixed by the event schedule — never by the thread
//! schedule — so serial and sharded runs produce bit-identical metric traces.
//!
//! Round timing comes from `fedlps_runtime`: every client's latency is its
//! Eq. (14) cost breakdown (round FLOPs over tier compute plus uploaded bytes
//! over tier bandwidth), so a sparser submodel directly shortens the client's
//! critical path. [`RoundMode`](crate::config::RoundMode) selects the
//! execution semantics:
//!
//! * `Synchronous` — Algorithm 1's barrier, replanned over the clock: the
//!   round ends at the last arrival (Eq. 18 falls out as the plan duration);
//! * `Deadline` — the server over-selects, absorbs what lands inside the
//!   budget and drops the stragglers;
//! * `Async` — a continuous pipeline: `clients_per_round` clients stay in
//!   flight, arrivals are absorbed immediately with an `alpha^staleness`
//!   discount (discarded beyond `max_staleness`), and every
//!   `clients_per_round` absorbed updates close one "round".

use std::collections::{BTreeMap, BTreeSet};

use fedlps_runtime::{DispatchSpec, EventKind, EventQueue, RoundMode, RoundPlan, VirtualClock};
use fedlps_tensor::{rng_from_seed, split_seed};
use rand::rngs::StdRng;
use rand::Rng;
use rayon::prelude::*;

use crate::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use crate::env::FlEnv;
use crate::metrics::{RoundMetrics, RunResult};

/// Drives an [`FlAlgorithm`] through the round loop of the configured
/// [`RoundMode`](crate::config::RoundMode) and collects the per-round metric
/// trace.
pub struct Simulator {
    env: FlEnv,
}

/// A dispatched client whose update is still travelling: the model version it
/// was computed against plus the outcome that will land at its arrival time.
struct InFlight {
    dispatched_version: usize,
    report: ClientReport,
    update: ClientUpdate,
}

impl Simulator {
    /// Creates a simulator over the given environment.
    pub fn new(env: FlEnv) -> Self {
        Self { env }
    }

    /// Read access to the environment (used by examples and benches).
    pub fn env(&self) -> &FlEnv {
        &self.env
    }

    /// Consumes the simulator and returns the environment.
    pub fn into_env(self) -> FlEnv {
        self.env
    }

    /// Runs the full federation under the configured round mode and returns
    /// the metric trace.
    pub fn run(&self, algorithm: &mut dyn FlAlgorithm) -> RunResult {
        match self.env.config.round_mode {
            RoundMode::Async {
                max_staleness,
                alpha,
            } => self.run_async(algorithm, max_staleness, alpha),
            mode => self.run_cohort(algorithm, mode),
        }
    }

    /// The worker pool implied by `FlConfig::parallelism` (None = serial).
    fn build_pool(env: &FlEnv) -> Option<rayon::ThreadPool> {
        let shards = env.config.effective_parallelism();
        (shards > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(shards)
                .build()
                .expect("rayon pool construction is infallible")
        })
    }

    /// Runs the pure client steps for `(client, rng_stream)` tasks, sharded
    /// over the pool when one is installed. Output order equals input order.
    fn step_batch(
        env: &FlEnv,
        algorithm: &dyn FlAlgorithm,
        pool: Option<&rayon::ThreadPool>,
        tasks: &[(usize, u64)],
        round: usize,
    ) -> Vec<(usize, ClientOutcome)> {
        let step = |(client, stream): (usize, u64)| {
            let mut rng = rng_from_seed(split_seed(env.config.seed, stream));
            (client, algorithm.client_step(env, round, client, &mut rng))
        };
        match pool {
            Some(pool) => pool.install(|| tasks.to_vec().into_par_iter().map(step).collect()),
            None => tasks.iter().copied().map(step).collect(),
        }
    }

    /// Tops `selected` up with `extra` distinct clients drawn uniformly from
    /// the rest of the federation (deadline-mode over-selection).
    fn over_select(env: &FlEnv, selected: &mut Vec<usize>, extra: usize, rng: &mut StdRng) {
        if extra == 0 {
            return;
        }
        let chosen: BTreeSet<usize> = selected.iter().copied().collect();
        let idle: Vec<usize> = (0..env.num_clients())
            .filter(|k| !chosen.contains(k))
            .collect();
        let take = extra.min(idle.len());
        let picks = fedlps_tensor::rng::sample_without_replacement(idle.len(), take, rng);
        selected.extend(picks.into_iter().map(|i| idle[i]));
    }

    /// The synchronous / deadline cohort loop: one barrier per round, timed
    /// by the pure per-round plan.
    fn run_cohort(&self, algorithm: &mut dyn FlAlgorithm, mode: RoundMode) -> RunResult {
        let env = &self.env;
        algorithm.setup(env);
        let mut selection_rng = rng_from_seed(split_seed(env.config.seed, 0x5E1E));
        let pool = Self::build_pool(env);
        let deadline = match mode {
            RoundMode::Deadline { budget, .. } => Some(budget),
            _ => None,
        };

        let mut rounds = Vec::with_capacity(env.config.rounds);
        let mut cumulative_time = 0.0;
        let mut cumulative_flops = 0.0;
        let mut cumulative_upload = 0.0;

        for round in 0..env.config.rounds {
            let mut selected = algorithm.select_clients(env, round, &mut selection_rng);
            assert!(
                !selected.is_empty(),
                "a round must select at least one client"
            );
            if let RoundMode::Deadline { over_select, .. } = mode {
                Self::over_select(env, &mut selected, over_select, &mut selection_rng);
            }

            // Round-level mutable preparation (shared-mask refreshes etc.);
            // its RNG stream depends only on (seed, round).
            let mut round_rng =
                rng_from_seed(split_seed(env.config.seed, 0xB172 ^ (round as u64) << 1));
            algorithm.begin_round(env, round, &selected, &mut round_rng);

            // Pure client steps, sharded when a pool is installed. Each task
            // owns an RNG stream keyed by (seed, round, client) so the
            // schedule cannot leak into the results.
            let frozen: &dyn FlAlgorithm = algorithm;
            let tasks: Vec<(usize, u64)> = selected
                .iter()
                .map(|&c| (c, 0xC11E ^ ((c as u64) << 24) ^ round as u64))
                .collect();
            let mut outcomes = Self::step_batch(env, frozen, pool.as_ref(), &tasks, round);
            outcomes.sort_by_key(|(client, _)| *client);

            // Plan the round on the virtual clock: each client's dispatch
            // latency is its Eq. (14) breakdown; deadline rounds also consult
            // the fleet's offline churn (synchronous servers wait churn out).
            let specs: Vec<DispatchSpec> = outcomes
                .iter()
                .map(|(client, o)| DispatchSpec {
                    client: *client,
                    compute_seconds: o.report.local_cost.compute_seconds,
                    upload_seconds: o.report.local_cost.comm_seconds,
                    offline_frac: deadline
                        .is_some()
                        .then(|| env.fleet.offline_churn(*client, round as u64))
                        .flatten(),
                })
                .collect();
            let plan = RoundPlan::schedule(&specs, deadline);
            let arrived: BTreeSet<usize> = plan.arrivals.iter().map(|a| a.client).collect();

            // Deterministic reduce: absorb the surviving updates in ascending
            // client-id order, independent of selection order or thread
            // schedule. Dropped clients' work is spent (their FLOPs count)
            // but their uploads never land.
            let mut reports = Vec::with_capacity(arrived.len());
            let mut round_flops = 0.0;
            let mut round_upload = 0.0;
            for (client, outcome) in outcomes {
                round_flops += outcome.report.flops;
                if arrived.contains(&client) {
                    round_upload += outcome.report.upload_bytes;
                    reports.push(outcome.report);
                    algorithm.absorb_update(env, round, outcome.update);
                }
            }
            algorithm.aggregate(env, round, &reports);

            // Cost accounting: the plan duration *is* Eq. (18) in synchronous
            // mode and min(budget, last arrival) under a deadline.
            let round_time = plan.duration;
            let round_start_time = cumulative_time;
            cumulative_time += round_time;
            cumulative_flops += round_flops;
            cumulative_upload += round_upload;

            let absorbed = reports.len().max(1) as f64;
            let train_accuracy = reports.iter().map(|r| r.train_accuracy).sum::<f64>() / absorbed;
            let train_loss = reports.iter().map(|r| r.train_loss).sum::<f64>() / absorbed;
            let mean_sparse_ratio = reports.iter().map(|r| r.sparse_ratio).sum::<f64>() / absorbed;

            // Periodic personalized evaluation across the *whole* federation.
            let evaluate_now = round % env.config.eval_every == 0 || round + 1 == env.config.rounds;
            let mean_accuracy = if evaluate_now {
                Some(Self::mean_accuracy_parallel(env, algorithm))
            } else {
                None
            };

            rounds.push(RoundMetrics {
                round,
                mean_accuracy,
                train_accuracy,
                train_loss,
                round_time,
                round_start_time,
                cumulative_time,
                round_flops,
                cumulative_flops,
                round_upload_bytes: round_upload,
                cumulative_upload_bytes: cumulative_upload,
                mean_sparse_ratio,
                mask_cache_hits: reports.iter().map(|r| r.mask_cache_hits as u64).sum(),
                mask_cache_misses: reports.iter().map(|r| r.mask_cache_misses as u64).sum(),
                straggler_drops: plan.dropped() as u64,
                stale_discards: 0,
                staleness_hist: Vec::new(),
            });
        }

        RunResult::from_rounds(algorithm.name(), env.data.name.clone(), rounds)
    }

    /// Draws one idle client uniformly for an async refill: neither in
    /// flight nor already holding an unprocessed dispatch event.
    fn pick_idle(
        env: &FlEnv,
        in_flight: &BTreeMap<usize, InFlight>,
        pending: &BTreeSet<usize>,
        rng: &mut StdRng,
    ) -> Option<usize> {
        let idle: Vec<usize> = (0..env.num_clients())
            .filter(|k| !in_flight.contains_key(k) && !pending.contains(k))
            .collect();
        if idle.is_empty() {
            None
        } else {
            Some(idle[rng.gen_range(0..idle.len())])
        }
    }

    /// The staleness-aware asynchronous pipeline.
    ///
    /// The server keeps `clients_per_round` clients in flight. A dispatch
    /// hands the client the *current* model (the pure step runs against the
    /// state every earlier absorption produced); its arrival lands
    /// `local_cost.total()` virtual seconds later and is absorbed immediately
    /// with weight `alpha^staleness` via
    /// [`FlAlgorithm::absorb_update_stale`], or discarded beyond
    /// `max_staleness`. Every `clients_per_round` absorbed updates the server
    /// aggregates, bumps its version and emits one [`RoundMetrics`] entry, so
    /// a run still produces `config.rounds` rounds — they just cost less
    /// virtual time than a synchronous barrier.
    ///
    /// `select_clients` picks the initial cohort; refills draw uniformly
    /// from idle clients because there is no round barrier at which a
    /// selection rule could be consulted. `begin_round` keeps its per-round
    /// cadence — it runs for the initial cohort and again at every version
    /// bump (with an empty selected slice) so round-level server state such
    /// as a refreshed shared mask keeps evolving. Dispatches scheduled for
    /// the same instant are stepped as one (shardable) batch; because event
    /// order is a pure function of the configuration, results are
    /// bit-identical at every `parallelism` setting.
    fn run_async(
        &self,
        algorithm: &mut dyn FlAlgorithm,
        max_staleness: u32,
        alpha: f64,
    ) -> RunResult {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "staleness discount base must be in (0, 1], got {alpha}"
        );
        let env = &self.env;
        algorithm.setup(env);
        let mut selection_rng = rng_from_seed(split_seed(env.config.seed, 0x5E1E));
        let pool = Self::build_pool(env);
        let total_rounds = env.config.rounds;
        let buffer_target = env.config.clients_per_round.min(env.num_clients()).max(1);

        let mut queue = EventQueue::new();
        let mut clock = VirtualClock::new();
        let mut in_flight: BTreeMap<usize, InFlight> = BTreeMap::new();
        let mut version = 0usize;
        let mut dispatch_seq = 0u64;

        // The initial cohort enters the pipeline at t = 0.
        let initial = algorithm.select_clients(env, 0, &mut selection_rng);
        assert!(
            !initial.is_empty(),
            "the async pipeline needs at least one client in flight"
        );
        let mut round_rng = rng_from_seed(split_seed(env.config.seed, 0xB172));
        algorithm.begin_round(env, 0, &initial, &mut round_rng);
        let mut pending: BTreeSet<usize> = BTreeSet::new();
        for client in initial {
            if pending.insert(client) {
                queue.push(0.0, client, EventKind::Dispatch);
            }
        }

        let mut rounds = Vec::with_capacity(total_rounds);
        let mut round_reports: Vec<ClientReport> = Vec::new();
        let mut round_start = 0.0f64;
        let mut round_flops = 0.0f64;
        let mut round_upload = 0.0f64;
        let mut straggler_drops = 0u64;
        let mut stale_discards = 0u64;
        let mut staleness_hist = vec![0u64; max_staleness as usize + 1];
        let mut cumulative_flops = 0.0f64;
        let mut cumulative_upload = 0.0f64;

        while version < total_rounds {
            let Some(event) = queue.pop() else {
                // Starved pipeline (e.g. an empty federation): return what we
                // have rather than spinning forever.
                break;
            };
            clock.advance_to(event.time);
            match event.kind {
                EventKind::Dispatch => {
                    // Coalesce every dispatch scheduled for this exact
                    // instant into one shardable batch; they all see the same
                    // server state, so batching is semantics-free.
                    let mut batch = vec![(event.client, dispatch_seq)];
                    dispatch_seq += 1;
                    while queue
                        .peek()
                        .is_some_and(|e| e.kind == EventKind::Dispatch && e.time == event.time)
                    {
                        let next = queue.pop().expect("peeked event exists");
                        batch.push((next.client, dispatch_seq));
                        dispatch_seq += 1;
                    }
                    let tasks: Vec<(usize, u64)> = batch
                        .iter()
                        .map(|&(c, s)| (c, 0xA57C ^ (s << 20) ^ c as u64))
                        .collect();
                    let frozen: &dyn FlAlgorithm = algorithm;
                    let outcomes = Self::step_batch(env, frozen, pool.as_ref(), &tasks, version);
                    for ((client, seq), (stepped, outcome)) in batch.iter().zip(outcomes) {
                        debug_assert_eq!(*client, stepped);
                        pending.remove(client);
                        let total = outcome.report.local_cost.total();
                        match env.fleet.offline_churn(*client, *seq) {
                            Some(frac) => {
                                queue.push(event.time + frac * total, *client, EventKind::Offline)
                            }
                            None => {
                                queue.push(event.time + total, *client, EventKind::UploadFinish)
                            }
                        };
                        let evicted = in_flight.insert(
                            *client,
                            InFlight {
                                dispatched_version: version,
                                report: outcome.report,
                                update: outcome.update,
                            },
                        );
                        debug_assert!(evicted.is_none(), "client dispatched while in flight");
                    }
                }
                EventKind::UploadFinish => {
                    let fl = in_flight
                        .remove(&event.client)
                        .expect("arrival without a matching dispatch");
                    round_flops += fl.report.flops;
                    round_upload += fl.report.upload_bytes;
                    let staleness = (version - fl.dispatched_version) as u32;
                    if staleness > max_staleness {
                        stale_discards += 1;
                    } else {
                        staleness_hist[staleness as usize] += 1;
                        let weight = alpha.powi(staleness as i32);
                        algorithm.absorb_update_stale(env, version, fl.update, staleness, weight);
                        round_reports.push(fl.report);
                    }
                    // Refill the freed slot immediately.
                    if let Some(next) =
                        Self::pick_idle(env, &in_flight, &pending, &mut selection_rng)
                    {
                        pending.insert(next);
                        queue.push(event.time, next, EventKind::Dispatch);
                    }

                    if round_reports.len() >= buffer_target {
                        algorithm.aggregate(env, version, &round_reports);
                        let absorbed = round_reports.len() as f64;
                        cumulative_flops += round_flops;
                        cumulative_upload += round_upload;
                        let evaluate_now =
                            version % env.config.eval_every == 0 || version + 1 == total_rounds;
                        let mean_accuracy = if evaluate_now {
                            Some(Self::mean_accuracy_parallel(env, algorithm))
                        } else {
                            None
                        };
                        rounds.push(RoundMetrics {
                            round: version,
                            mean_accuracy,
                            train_accuracy: round_reports
                                .iter()
                                .map(|r| r.train_accuracy)
                                .sum::<f64>()
                                / absorbed,
                            train_loss: round_reports.iter().map(|r| r.train_loss).sum::<f64>()
                                / absorbed,
                            round_time: event.time - round_start,
                            round_start_time: round_start,
                            cumulative_time: event.time,
                            round_flops,
                            cumulative_flops,
                            round_upload_bytes: round_upload,
                            cumulative_upload_bytes: cumulative_upload,
                            mean_sparse_ratio: round_reports
                                .iter()
                                .map(|r| r.sparse_ratio)
                                .sum::<f64>()
                                / absorbed,
                            mask_cache_hits: round_reports
                                .iter()
                                .map(|r| r.mask_cache_hits as u64)
                                .sum(),
                            mask_cache_misses: round_reports
                                .iter()
                                .map(|r| r.mask_cache_misses as u64)
                                .sum(),
                            straggler_drops,
                            stale_discards,
                            staleness_hist: staleness_hist.clone(),
                        });
                        version += 1;
                        round_start = event.time;
                        round_reports.clear();
                        round_flops = 0.0;
                        round_upload = 0.0;
                        straggler_drops = 0;
                        stale_discards = 0;
                        staleness_hist.iter_mut().for_each(|v| *v = 0);

                        // Round-level server-side preparation for the next
                        // version (CS mask refreshes, PruneFL re-pruning, …):
                        // the same hook cadence and RNG stream keying as the
                        // cohort loop. No cohort exists at an async version
                        // boundary, so the selected slice is empty; in-flight
                        // clients keep the state they were dispatched
                        // against, which is exactly what the staleness
                        // discount accounts for.
                        if version < total_rounds {
                            let mut round_rng = rng_from_seed(split_seed(
                                env.config.seed,
                                0xB172 ^ (version as u64) << 1,
                            ));
                            algorithm.begin_round(env, version, &[], &mut round_rng);
                        }
                    }
                }
                EventKind::Offline => {
                    // The device died mid-round: its work is spent, its
                    // update is lost, its slot refills now.
                    let fl = in_flight
                        .remove(&event.client)
                        .expect("offline event without a matching dispatch");
                    round_flops += fl.report.flops;
                    straggler_drops += 1;
                    if let Some(next) =
                        Self::pick_idle(env, &in_flight, &pending, &mut selection_rng)
                    {
                        pending.insert(next);
                        queue.push(event.time, next, EventKind::Dispatch);
                    }
                }
                EventKind::ComputeFinish | EventKind::RoundDeadline => {
                    unreachable!("the async pipeline never schedules {:?}", event.kind)
                }
            }
        }

        RunResult::from_rounds(algorithm.name(), env.data.name.clone(), rounds)
    }

    /// Sample-weighted mean deployed-model accuracy across every client,
    /// evaluated in parallel (evaluation dominates the simulator's wall-clock
    /// cost, and unlike training it only needs `&` access to the algorithm).
    fn mean_accuracy_parallel(env: &FlEnv, algorithm: &dyn FlAlgorithm) -> f64 {
        let per_client: Vec<(f64, usize)> = (0..env.num_clients())
            .into_par_iter()
            .map(|k| {
                let stats = algorithm.evaluate_client(env, k);
                (stats.accuracy * stats.samples as f64, stats.samples)
            })
            .collect();
        let total_samples: usize = per_client.iter().map(|(_, n)| n).sum();
        if total_samples == 0 {
            return 0.0;
        }
        per_client.iter().map(|(a, _)| a).sum::<f64>() / total_samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ClientReport, ClientUpdate};
    use crate::config::FlConfig;
    use crate::train::{account_round, local_sgd, LocalTrainOptions};
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::fleet::DynamicsConfig;
    use fedlps_device::HeterogeneityLevel;
    use fedlps_nn::model::EvalStats;
    use fedlps_tensor::ops::weighted_mean_into;
    use rand::rngs::StdRng;

    /// A miniature FedAvg used to exercise the runner; the real baselines live
    /// in `fedlps-baselines`.
    struct MiniFedAvg {
        global: Vec<f32>,
        staged: Vec<(usize, f64, Vec<f32>)>,
    }

    impl MiniFedAvg {
        fn new() -> Self {
            Self {
                global: Vec::new(),
                staged: Vec::new(),
            }
        }
    }

    impl FlAlgorithm for MiniFedAvg {
        fn name(&self) -> String {
            "MiniFedAvg".into()
        }

        fn setup(&mut self, env: &FlEnv) {
            self.global = env.initial_params();
        }

        fn client_step(
            &self,
            env: &FlEnv,
            _round: usize,
            client: usize,
            rng: &mut StdRng,
        ) -> ClientOutcome {
            let mut params = self.global.clone();
            let options = LocalTrainOptions {
                iterations: env.config.local_iterations,
                batch_size: env.config.batch_size,
                sgd: env.config.sgd,
                param_mask: None,
                prox: None,
                frozen: None,
            };
            let summary = local_sgd(
                &*env.arch,
                &mut params,
                env.train_data(client),
                &options,
                rng,
            );
            let accounting = account_round(
                &*env.arch,
                &env.cost,
                &env.fleet.static_profile(client),
                None,
                env.config.local_iterations,
                env.config.batch_size,
                env.arch.param_count(),
                env.arch.param_count(),
            );
            let report = ClientReport {
                client_id: client,
                flops: accounting.flops,
                upload_bytes: accounting.upload_bytes,
                download_bytes: accounting.download_bytes,
                local_cost: accounting.local_cost,
                train_accuracy: summary.mean_accuracy,
                train_loss: summary.mean_loss,
                sparse_ratio: 1.0,
                mask_cache_hits: 0,
                mask_cache_misses: 0,
            };
            ClientOutcome::new(report, (client, params))
        }

        fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate) {
            self.absorb_update_stale(env, round, update, 0, 1.0);
        }

        fn absorb_update_stale(
            &mut self,
            env: &FlEnv,
            _round: usize,
            update: ClientUpdate,
            _staleness: u32,
            weight: f64,
        ) {
            let (client, params) = *update
                .downcast::<(usize, Vec<f32>)>()
                .expect("MiniFedAvg update payload");
            self.staged
                .push((client, env.train_sizes()[client] * weight, params));
        }

        fn aggregate(&mut self, _env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
            if self.staged.is_empty() {
                return;
            }
            let weights: Vec<f64> = self.staged.iter().map(|(_, w, _)| *w).collect();
            let inputs: Vec<&[f32]> = self.staged.iter().map(|(_, _, p)| p.as_slice()).collect();
            let mut new_global = vec![0.0f32; self.global.len()];
            weighted_mean_into(&mut new_global, &inputs, &weights);
            self.global = new_global;
            self.staged.clear();
        }

        fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
            env.arch.evaluate(&self.global, env.test_data(client))
        }
    }

    fn env_with(config: FlConfig) -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            config,
        )
    }

    #[test]
    fn runner_produces_monotone_cumulative_metrics() {
        let env = env_with(FlConfig::tiny());
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);

        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert_eq!(result.algorithm, "MiniFedAvg");
        let mut prev_flops = 0.0;
        let mut prev_time = 0.0;
        for r in &result.rounds {
            assert!(r.cumulative_flops >= prev_flops);
            assert!(r.cumulative_time >= prev_time);
            assert_eq!(r.round_start_time, prev_time);
            assert_eq!(r.straggler_drops, 0, "synchronous rounds drop nobody");
            prev_flops = r.cumulative_flops;
            prev_time = r.cumulative_time;
            assert!(r.round_time > 0.0);
        }
        // The last round is always evaluated.
        assert!(result.rounds.last().unwrap().mean_accuracy.is_some());
        assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
    }

    #[test]
    fn training_beats_untrained_baseline() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny().with_rounds(10),
        );
        let initial_acc = env.global_model_accuracy(&env.initial_params());
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);
        assert!(
            result.best_accuracy > initial_acc,
            "federated training should beat the untrained model ({} vs {})",
            result.best_accuracy,
            initial_acc
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let mk = || Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_rounds_are_bit_identical_to_serial() {
        let mk = |parallelism: usize| {
            Simulator::new(env_with(FlConfig::tiny().with_parallelism(parallelism)))
                .run(&mut MiniFedAvg::new())
        };
        let serial = mk(1);
        for shards in [2, 4, 0] {
            let sharded = mk(shards);
            assert_eq!(
                serial, sharded,
                "parallelism={shards} must reproduce the serial trace exactly"
            );
        }
    }

    #[test]
    fn deadline_rounds_drop_stragglers_and_compress_virtual_time() {
        let sync = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        // Half the slowest sync round: on a High-heterogeneity fleet the
        // 1/16-tier stragglers cannot land inside it.
        let budget = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max) * 0.5;
        let deadline = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::deadline(budget, 2)),
        ))
        .run(&mut MiniFedAvg::new());

        assert_eq!(deadline.rounds.len(), sync.rounds.len());
        assert!(
            deadline.total_straggler_drops() > 0,
            "a halved budget must drop someone"
        );
        assert!(
            deadline.total_time < sync.total_time,
            "deadline rounds must cost less virtual time ({} vs {})",
            deadline.total_time,
            sync.total_time
        );
        for r in &deadline.rounds {
            assert!(r.round_time <= budget + 1e-12, "budget is a hard cap");
        }
    }

    #[test]
    fn offline_churn_drops_clients_under_a_roomy_deadline() {
        let mut env = env_with(FlConfig::tiny().with_round_mode(RoundMode::deadline(1e9, 0)));
        env.fleet = env.fleet.clone().with_dynamics(
            DynamicsConfig {
                enabled: true,
                min_availability: 0.9,
                ..DynamicsConfig::default()
            }
            .with_offline_prob(0.5),
        );
        let result = Simulator::new(env).run(&mut MiniFedAvg::new());
        assert!(
            result.total_straggler_drops() > 0,
            "p=0.5 churn over 6 rounds x 3 clients should drop someone"
        );
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
    }

    #[test]
    fn async_pipeline_completes_with_staleness_accounting() {
        let result = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::asynchronous(3, 0.6)),
        ))
        .run(&mut MiniFedAvg::new());
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        let hist = result.staleness_histogram();
        assert_eq!(hist.len(), 4, "one bucket per staleness level");
        assert!(hist.iter().sum::<u64>() > 0, "updates were absorbed");
        let mut prev = 0.0;
        for r in &result.rounds {
            assert!(r.cumulative_time >= prev);
            prev = r.cumulative_time;
        }
        assert!(result.rounds.last().unwrap().mean_accuracy.is_some());
    }

    #[test]
    fn async_beats_synchronous_virtual_time_on_a_heterogeneous_fleet() {
        let sync = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let async_run = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::asynchronous(4, 0.5)),
        ))
        .run(&mut MiniFedAvg::new());
        assert!(
            async_run.total_time < sync.total_time,
            "absorbing early arrivals must beat waiting for stragglers ({} vs {})",
            async_run.total_time,
            sync.total_time
        );
    }

    #[test]
    fn async_pipeline_keeps_the_begin_round_cadence() {
        // Round-level server state (CS mask refreshes, PruneFL re-pruning)
        // lives in begin_round; the async pipeline must keep invoking it at
        // every version bump, not just for the initial cohort.
        struct CountingFedAvg {
            inner: MiniFedAvg,
            begin_rounds: Vec<usize>,
        }
        impl FlAlgorithm for CountingFedAvg {
            fn name(&self) -> String {
                self.inner.name()
            }
            fn setup(&mut self, env: &FlEnv) {
                self.inner.setup(env)
            }
            fn begin_round(
                &mut self,
                _env: &FlEnv,
                round: usize,
                _selected: &[usize],
                _rng: &mut StdRng,
            ) {
                self.begin_rounds.push(round);
            }
            fn client_step(
                &self,
                env: &FlEnv,
                round: usize,
                client: usize,
                rng: &mut StdRng,
            ) -> ClientOutcome {
                self.inner.client_step(env, round, client, rng)
            }
            fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate) {
                self.inner.absorb_update(env, round, update)
            }
            fn absorb_update_stale(
                &mut self,
                env: &FlEnv,
                round: usize,
                update: ClientUpdate,
                staleness: u32,
                weight: f64,
            ) {
                self.inner
                    .absorb_update_stale(env, round, update, staleness, weight)
            }
            fn aggregate(&mut self, env: &FlEnv, round: usize, reports: &[ClientReport]) {
                self.inner.aggregate(env, round, reports)
            }
            fn evaluate_client(&self, env: &FlEnv, client: usize) -> fedlps_nn::model::EvalStats {
                self.inner.evaluate_client(env, client)
            }
        }

        let mut algo = CountingFedAvg {
            inner: MiniFedAvg::new(),
            begin_rounds: Vec::new(),
        };
        let env = env_with(FlConfig::tiny().with_round_mode(RoundMode::asynchronous(3, 0.6)));
        let result = Simulator::new(env).run(&mut algo);
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert_eq!(
            algo.begin_rounds,
            (0..FlConfig::tiny().rounds).collect::<Vec<_>>(),
            "begin_round must fire once per version, in order"
        );
    }

    #[test]
    fn event_modes_are_bit_identical_across_parallelism() {
        let run = |mode: RoundMode, parallelism: usize| {
            Simulator::new(env_with(
                FlConfig::tiny()
                    .with_round_mode(mode)
                    .with_parallelism(parallelism),
            ))
            .run(&mut MiniFedAvg::new())
        };
        for mode in [RoundMode::deadline(0.5, 2), RoundMode::asynchronous(3, 0.5)] {
            let serial = run(mode, 1);
            for shards in [2, 4] {
                assert_eq!(
                    serial,
                    run(mode, shards),
                    "{} mode must be schedule-independent at parallelism {shards}",
                    mode.name()
                );
            }
        }
    }
}
