//! The synchronous federation round loop.
//!
//! Client-side training dominates a round's wall-clock cost, so the loop
//! shards the selected clients across worker threads when
//! [`FlConfig::parallelism`](crate::config::FlConfig) allows it. Sharding is
//! observationally invisible: [`FlAlgorithm::client_step`] is pure (`&self` +
//! a per-client RNG stream derived only from `(seed, round, client)`), and
//! the resulting updates are absorbed serially in ascending client-id order,
//! so serial and sharded runs produce bit-identical metric traces.

use fedlps_device::CostModel;
use fedlps_tensor::{rng_from_seed, split_seed};
use rayon::prelude::*;

use crate::algorithm::{ClientOutcome, FlAlgorithm};
use crate::env::FlEnv;
use crate::metrics::{RoundMetrics, RunResult};

/// Drives an [`FlAlgorithm`] through the paper's synchronous round loop and
/// collects the per-round metric trace.
pub struct Simulator {
    env: FlEnv,
}

impl Simulator {
    /// Creates a simulator over the given environment.
    pub fn new(env: FlEnv) -> Self {
        Self { env }
    }

    /// Read access to the environment (used by examples and benches).
    pub fn env(&self) -> &FlEnv {
        &self.env
    }

    /// Consumes the simulator and returns the environment.
    pub fn into_env(self) -> FlEnv {
        self.env
    }

    /// Runs the full federation and returns the metric trace.
    pub fn run(&self, algorithm: &mut dyn FlAlgorithm) -> RunResult {
        let env = &self.env;
        algorithm.setup(env);
        let mut selection_rng = rng_from_seed(split_seed(env.config.seed, 0x5E1E));

        let shards = env.config.effective_parallelism();
        let pool = (shards > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(shards)
                .build()
                .expect("rayon pool construction is infallible")
        });

        let mut rounds = Vec::with_capacity(env.config.rounds);
        let mut cumulative_time = 0.0;
        let mut cumulative_flops = 0.0;
        let mut cumulative_upload = 0.0;

        for round in 0..env.config.rounds {
            let selected = algorithm.select_clients(env, round, &mut selection_rng);
            assert!(
                !selected.is_empty(),
                "a round must select at least one client"
            );

            // Round-level mutable preparation (shared-mask refreshes etc.);
            // its RNG stream depends only on (seed, round).
            let mut round_rng =
                rng_from_seed(split_seed(env.config.seed, 0xB172 ^ (round as u64) << 1));
            algorithm.begin_round(env, round, &selected, &mut round_rng);

            // Pure client steps, sharded when a pool is installed. Each task
            // owns an RNG stream keyed by (seed, round, client) so the
            // schedule cannot leak into the results.
            let frozen: &dyn FlAlgorithm = algorithm;
            let step = |client: usize| {
                let mut client_rng = rng_from_seed(split_seed(
                    env.config.seed,
                    0xC11E ^ ((client as u64) << 24) ^ round as u64,
                ));
                (
                    client,
                    frozen.client_step(env, round, client, &mut client_rng),
                )
            };
            let mut outcomes: Vec<(usize, ClientOutcome)> = match &pool {
                Some(pool) => pool.install(|| selected.clone().into_par_iter().map(step).collect()),
                None => selected.iter().copied().map(step).collect(),
            };

            // Deterministic reduce: absorb updates and order reports by
            // client id, independent of selection order or thread schedule.
            outcomes.sort_by_key(|(client, _)| *client);
            let mut reports = Vec::with_capacity(outcomes.len());
            for (_, outcome) in outcomes {
                reports.push(outcome.report);
                algorithm.absorb_update(env, round, outcome.update);
            }
            algorithm.aggregate(env, round, &reports);

            // Cost accounting (Eq. 14 / Eq. 18).
            let local_costs: Vec<_> = reports.iter().map(|r| r.local_cost).collect();
            let round_time = CostModel::global_round_cost(&local_costs);
            let round_flops: f64 = reports.iter().map(|r| r.flops).sum();
            let round_upload: f64 = reports.iter().map(|r| r.upload_bytes).sum();
            cumulative_time += round_time;
            cumulative_flops += round_flops;
            cumulative_upload += round_upload;

            let train_accuracy =
                reports.iter().map(|r| r.train_accuracy).sum::<f64>() / reports.len() as f64;
            let train_loss =
                reports.iter().map(|r| r.train_loss).sum::<f64>() / reports.len() as f64;
            let mean_sparse_ratio =
                reports.iter().map(|r| r.sparse_ratio).sum::<f64>() / reports.len() as f64;

            // Periodic personalized evaluation across the *whole* federation.
            let evaluate_now = round % env.config.eval_every == 0 || round + 1 == env.config.rounds;
            let mean_accuracy = if evaluate_now {
                Some(Self::mean_accuracy_parallel(env, algorithm))
            } else {
                None
            };

            rounds.push(RoundMetrics {
                round,
                mean_accuracy,
                train_accuracy,
                train_loss,
                round_time,
                cumulative_time,
                round_flops,
                cumulative_flops,
                round_upload_bytes: round_upload,
                cumulative_upload_bytes: cumulative_upload,
                mean_sparse_ratio,
                mask_cache_hits: reports.iter().map(|r| r.mask_cache_hits as u64).sum(),
                mask_cache_misses: reports.iter().map(|r| r.mask_cache_misses as u64).sum(),
            });
        }

        RunResult::from_rounds(algorithm.name(), env.data.name.clone(), rounds)
    }

    /// Sample-weighted mean deployed-model accuracy across every client,
    /// evaluated in parallel (evaluation dominates the simulator's wall-clock
    /// cost, and unlike training it only needs `&` access to the algorithm).
    fn mean_accuracy_parallel(env: &FlEnv, algorithm: &dyn FlAlgorithm) -> f64 {
        let per_client: Vec<(f64, usize)> = (0..env.num_clients())
            .into_par_iter()
            .map(|k| {
                let stats = algorithm.evaluate_client(env, k);
                (stats.accuracy * stats.samples as f64, stats.samples)
            })
            .collect();
        let total_samples: usize = per_client.iter().map(|(_, n)| n).sum();
        if total_samples == 0 {
            return 0.0;
        }
        per_client.iter().map(|(a, _)| a).sum::<f64>() / total_samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ClientReport, ClientUpdate};
    use crate::config::FlConfig;
    use crate::train::{account_round, local_sgd, LocalTrainOptions};
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_nn::model::EvalStats;
    use fedlps_tensor::ops::weighted_mean_into;
    use rand::rngs::StdRng;

    /// A miniature FedAvg used to exercise the runner; the real baselines live
    /// in `fedlps-baselines`.
    struct MiniFedAvg {
        global: Vec<f32>,
        staged: Vec<(usize, Vec<f32>)>,
    }

    impl MiniFedAvg {
        fn new() -> Self {
            Self {
                global: Vec::new(),
                staged: Vec::new(),
            }
        }
    }

    impl FlAlgorithm for MiniFedAvg {
        fn name(&self) -> String {
            "MiniFedAvg".into()
        }

        fn setup(&mut self, env: &FlEnv) {
            self.global = env.initial_params();
        }

        fn client_step(
            &self,
            env: &FlEnv,
            _round: usize,
            client: usize,
            rng: &mut StdRng,
        ) -> ClientOutcome {
            let mut params = self.global.clone();
            let options = LocalTrainOptions {
                iterations: env.config.local_iterations,
                batch_size: env.config.batch_size,
                sgd: env.config.sgd,
                param_mask: None,
                prox: None,
                frozen: None,
            };
            let summary = local_sgd(
                &*env.arch,
                &mut params,
                env.train_data(client),
                &options,
                rng,
            );
            let accounting = account_round(
                &*env.arch,
                &env.cost,
                &env.fleet.static_profile(client),
                None,
                env.config.local_iterations,
                env.config.batch_size,
                env.arch.param_count(),
                env.arch.param_count(),
            );
            let report = ClientReport {
                client_id: client,
                flops: accounting.flops,
                upload_bytes: accounting.upload_bytes,
                download_bytes: accounting.download_bytes,
                local_cost: accounting.local_cost,
                train_accuracy: summary.mean_accuracy,
                train_loss: summary.mean_loss,
                sparse_ratio: 1.0,
                mask_cache_hits: 0,
                mask_cache_misses: 0,
            };
            ClientOutcome::new(report, (client, params))
        }

        fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
            let (client, params) = *update
                .downcast::<(usize, Vec<f32>)>()
                .expect("MiniFedAvg update payload");
            self.staged.push((client, params));
        }

        fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
            if self.staged.is_empty() {
                return;
            }
            let weights: Vec<f64> = self
                .staged
                .iter()
                .map(|(k, _)| env.train_sizes()[*k])
                .collect();
            let inputs: Vec<&[f32]> = self.staged.iter().map(|(_, p)| p.as_slice()).collect();
            let mut new_global = vec![0.0f32; self.global.len()];
            weighted_mean_into(&mut new_global, &inputs, &weights);
            self.global = new_global;
            self.staged.clear();
        }

        fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
            env.arch.evaluate(&self.global, env.test_data(client))
        }
    }

    #[test]
    fn runner_produces_monotone_cumulative_metrics() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        );
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);

        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert_eq!(result.algorithm, "MiniFedAvg");
        let mut prev_flops = 0.0;
        let mut prev_time = 0.0;
        for r in &result.rounds {
            assert!(r.cumulative_flops >= prev_flops);
            assert!(r.cumulative_time >= prev_time);
            prev_flops = r.cumulative_flops;
            prev_time = r.cumulative_time;
            assert!(r.round_time > 0.0);
        }
        // The last round is always evaluated.
        assert!(result.rounds.last().unwrap().mean_accuracy.is_some());
        assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
    }

    #[test]
    fn training_beats_untrained_baseline() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny().with_rounds(10),
        );
        let initial_acc = env.global_model_accuracy(&env.initial_params());
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);
        assert!(
            result.best_accuracy > initial_acc,
            "federated training should beat the untrained model ({} vs {})",
            result.best_accuracy,
            initial_acc
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let mk = || {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny(),
            );
            Simulator::new(env).run(&mut MiniFedAvg::new())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_rounds_are_bit_identical_to_serial() {
        let mk = |parallelism: usize| {
            let env = FlEnv::from_scenario(
                &ScenarioConfig::tiny(DatasetKind::MnistLike),
                HeterogeneityLevel::High,
                FlConfig::tiny().with_parallelism(parallelism),
            );
            Simulator::new(env).run(&mut MiniFedAvg::new())
        };
        let serial = mk(1);
        for shards in [2, 4, 0] {
            let sharded = mk(shards);
            assert_eq!(
                serial, sharded,
                "parallelism={shards} must reproduce the serial trace exactly"
            );
        }
    }
}
