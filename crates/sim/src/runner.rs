//! The federation simulator's public entry point.
//!
//! [`Simulator::run`] drives an [`FlAlgorithm`] through the event-driven
//! round loop of the configured [`RoundMode`](crate::config::RoundMode) and
//! collects the per-round metric trace. The loop itself lives in three
//! layered modules behind this facade:
//!
//! * `crate::driver` (private) — the single scheduler-driven loop all three
//!   round modes share;
//! * `fedlps_select` (via [`FlConfig::selection`](crate::config::FlConfig)) —
//!   pluggable client-selection policies consulted for cohorts, deadline
//!   over-selection and async refills;
//! * [`crate::backend`] — pluggable execution backends running the pure
//!   client steps, serial or thread-pool;
//! * `crate::absorb` (private) — the mode-agnostic absorption/metrics
//!   accounting.
//!
//! Every combination of {round mode × selection policy × backend ×
//! parallelism} produces bit-identical metric traces for a given seed:
//! client steps are pure, RNG streams are keyed by configuration, and
//! absorption order is fixed by the event schedule — never by the thread
//! schedule. The tests at the bottom of this file pin that contract.

use crate::algorithm::FlAlgorithm;
use crate::driver::Driver;
use crate::env::FlEnv;
use crate::metrics::RunResult;

/// Drives an [`FlAlgorithm`] through the round loop of the configured
/// [`RoundMode`](crate::config::RoundMode) and collects the per-round metric
/// trace.
#[derive(Debug)]
pub struct Simulator {
    env: FlEnv,
}

impl Simulator {
    /// Creates a simulator over the given environment.
    ///
    /// This is the one choke point every run passes through, so the whole
    /// configuration is validated here — bad knobs fail immediately with one
    /// actionable message instead of asserting deep inside the round loop
    /// (or worse, silently misbehaving).
    ///
    /// # Panics
    ///
    /// Panics with the offending knob's name and an explanation if
    /// [`FlConfig::validate`](crate::config::FlConfig::validate) rejects the
    /// configuration, or if the fleet's `DynamicsConfig` is out of range.
    pub fn new(env: FlEnv) -> Self {
        if let Err(e) = env.config.validate() {
            panic!("{e}");
        }
        if let Err(e) = env.fleet.dynamics().validate() {
            panic!("invalid `DynamicsConfig`: {e}");
        }
        Self { env }
    }

    /// Read access to the environment (used by examples and benches).
    pub fn env(&self) -> &FlEnv {
        &self.env
    }

    /// Consumes the simulator and returns the environment.
    pub fn into_env(self) -> FlEnv {
        self.env
    }

    /// Runs the full federation under the configured round mode and returns
    /// the metric trace.
    pub fn run(&self, algorithm: &mut dyn FlAlgorithm) -> RunResult {
        Driver::new(&self.env).run(algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{ClientOutcome, ClientReport, ClientUpdate};
    use crate::backend::BackendKind;
    use crate::config::{FlConfig, RoundMode, SelectionKind};
    use crate::train::{account_round, local_sgd, LocalTrainOptions};
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::fleet::DynamicsConfig;
    use fedlps_device::HeterogeneityLevel;
    use fedlps_nn::model::EvalStats;
    use fedlps_tensor::ops::weighted_mean_into;
    use rand::rngs::StdRng;

    /// A miniature FedAvg used to exercise the runner; the real baselines live
    /// in `fedlps-baselines`.
    struct MiniFedAvg {
        global: Vec<f32>,
        staged: Vec<(usize, f64, Vec<f32>)>,
    }

    impl MiniFedAvg {
        fn new() -> Self {
            Self {
                global: Vec::new(),
                staged: Vec::new(),
            }
        }
    }

    impl FlAlgorithm for MiniFedAvg {
        fn name(&self) -> String {
            "MiniFedAvg".into()
        }

        fn setup(&mut self, env: &FlEnv) {
            self.global = env.initial_params();
        }

        fn client_step(
            &self,
            env: &FlEnv,
            _round: usize,
            client: usize,
            rng: &mut StdRng,
        ) -> ClientOutcome {
            let mut params = self.global.clone();
            let options = LocalTrainOptions {
                iterations: env.config.local_iterations,
                batch_size: env.config.batch_size,
                sgd: env.config.sgd,
                param_mask: None,
                prox: None,
                frozen: None,
            };
            let summary = local_sgd(
                &*env.arch,
                &mut params,
                env.train_data(client),
                &options,
                rng,
            );
            let accounting = account_round(
                &*env.arch,
                &env.cost,
                &env.fleet.static_profile(client),
                None,
                env.config.local_iterations,
                env.config.batch_size,
                env.arch.param_count(),
                env.arch.param_count(),
            );
            let report = ClientReport {
                client_id: client,
                flops: accounting.flops,
                upload_bytes: accounting.upload_bytes,
                download_bytes: accounting.download_bytes,
                local_cost: accounting.local_cost,
                train_accuracy: summary.mean_accuracy,
                train_loss: summary.mean_loss,
                sparse_ratio: 1.0,
                selection_utility: 0.0,
                participations: 0,
                mask_cache_hits: 0,
                mask_cache_misses: 0,
            };
            ClientOutcome::new(report, (client, params))
        }

        fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate) {
            self.absorb_update_stale(env, round, update, 0, 1.0);
        }

        fn absorb_update_stale(
            &mut self,
            env: &FlEnv,
            _round: usize,
            update: ClientUpdate,
            _staleness: u32,
            weight: f64,
        ) {
            let (client, params) = *update
                .downcast::<(usize, Vec<f32>)>()
                .expect("MiniFedAvg update payload");
            self.staged
                .push((client, env.train_size(client) * weight, params));
        }

        fn aggregate(&mut self, _env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
            if self.staged.is_empty() {
                return;
            }
            let weights: Vec<f64> = self.staged.iter().map(|(_, w, _)| *w).collect();
            let inputs: Vec<&[f32]> = self.staged.iter().map(|(_, _, p)| p.as_slice()).collect();
            let mut new_global = vec![0.0f32; self.global.len()];
            weighted_mean_into(&mut new_global, &inputs, &weights);
            self.global = new_global;
            self.staged.clear();
        }

        fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
            env.arch.evaluate(&self.global, env.test_data(client))
        }
    }

    fn env_with(config: FlConfig) -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            config,
        )
    }

    #[test]
    fn runner_produces_monotone_cumulative_metrics() {
        let env = env_with(FlConfig::tiny());
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);

        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert_eq!(result.algorithm, "MiniFedAvg");
        let mut prev_flops = 0.0;
        let mut prev_time = 0.0;
        for r in &result.rounds {
            assert!(r.cumulative_flops >= prev_flops);
            assert!(r.cumulative_time >= prev_time);
            assert_eq!(r.round_start_time, prev_time);
            assert_eq!(r.straggler_drops, 0, "synchronous rounds drop nobody");
            prev_flops = r.cumulative_flops;
            prev_time = r.cumulative_time;
            assert!(r.round_time > 0.0);
        }
        // The last round is always evaluated.
        assert!(result.rounds.last().unwrap().mean_accuracy.is_some());
        assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
    }

    #[test]
    fn training_beats_untrained_baseline() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny().with_rounds(10),
        );
        let initial_acc = env.global_model_accuracy(&env.initial_params());
        let sim = Simulator::new(env);
        let mut algo = MiniFedAvg::new();
        let result = sim.run(&mut algo);
        assert!(
            result.best_accuracy > initial_acc,
            "federated training should beat the untrained model ({} vs {})",
            result.best_accuracy,
            initial_acc
        );
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let mk = || Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_rounds_are_bit_identical_to_serial() {
        let mk = |parallelism: usize| {
            Simulator::new(env_with(FlConfig::tiny().with_parallelism(parallelism)))
                .run(&mut MiniFedAvg::new())
        };
        let serial = mk(1);
        for shards in [2, 4, 0] {
            let sharded = mk(shards);
            assert_eq!(
                serial, sharded,
                "parallelism={shards} must reproduce the serial trace exactly"
            );
        }
    }

    #[test]
    fn deadline_rounds_drop_stragglers_and_compress_virtual_time() {
        let sync = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        // Half the slowest sync round: on a High-heterogeneity fleet the
        // 1/16-tier stragglers cannot land inside it.
        let budget = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max) * 0.5;
        let deadline = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::deadline(budget, 2)),
        ))
        .run(&mut MiniFedAvg::new());

        assert_eq!(deadline.rounds.len(), sync.rounds.len());
        assert!(
            deadline.total_straggler_drops() > 0,
            "a halved budget must drop someone"
        );
        assert!(
            deadline.total_time < sync.total_time,
            "deadline rounds must cost less virtual time ({} vs {})",
            deadline.total_time,
            sync.total_time
        );
        for r in &deadline.rounds {
            assert!(r.round_time <= budget + 1e-12, "budget is a hard cap");
        }
    }

    #[test]
    fn offline_churn_drops_clients_under_a_roomy_deadline() {
        let mut env = env_with(FlConfig::tiny().with_round_mode(RoundMode::deadline(1e9, 0)));
        env.fleet = env.fleet.clone().with_dynamics(
            DynamicsConfig {
                enabled: true,
                min_availability: 0.9,
                ..DynamicsConfig::default()
            }
            .with_offline_prob(0.5),
        );
        let result = Simulator::new(env).run(&mut MiniFedAvg::new());
        assert!(
            result.total_straggler_drops() > 0,
            "p=0.5 churn over 6 rounds x 3 clients should drop someone"
        );
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
    }

    #[test]
    fn async_pipeline_completes_with_staleness_accounting() {
        let result = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::asynchronous(3, 0.6)),
        ))
        .run(&mut MiniFedAvg::new());
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        let hist = result.staleness_histogram();
        assert_eq!(hist.len(), 4, "one bucket per staleness level");
        assert!(hist.iter().sum::<u64>() > 0, "updates were absorbed");
        let mut prev = 0.0;
        for r in &result.rounds {
            assert!(r.cumulative_time >= prev);
            prev = r.cumulative_time;
        }
        assert!(result.rounds.last().unwrap().mean_accuracy.is_some());
    }

    #[test]
    fn async_beats_synchronous_virtual_time_on_a_heterogeneous_fleet() {
        let sync = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let async_run = Simulator::new(env_with(
            FlConfig::tiny().with_round_mode(RoundMode::asynchronous(4, 0.5)),
        ))
        .run(&mut MiniFedAvg::new());
        assert!(
            async_run.total_time < sync.total_time,
            "absorbing early arrivals must beat waiting for stragglers ({} vs {})",
            async_run.total_time,
            sync.total_time
        );
    }

    #[test]
    fn async_pipeline_keeps_the_begin_round_cadence() {
        // Round-level server state (CS mask refreshes, PruneFL re-pruning)
        // lives in begin_round; the async pipeline must keep invoking it at
        // every version bump, not just for the initial cohort.
        struct CountingFedAvg {
            inner: MiniFedAvg,
            begin_rounds: Vec<usize>,
        }
        impl FlAlgorithm for CountingFedAvg {
            fn name(&self) -> String {
                self.inner.name()
            }
            fn setup(&mut self, env: &FlEnv) {
                self.inner.setup(env)
            }
            fn begin_round(
                &mut self,
                _env: &FlEnv,
                round: usize,
                _selected: &[usize],
                _rng: &mut StdRng,
            ) {
                self.begin_rounds.push(round);
            }
            fn client_step(
                &self,
                env: &FlEnv,
                round: usize,
                client: usize,
                rng: &mut StdRng,
            ) -> ClientOutcome {
                self.inner.client_step(env, round, client, rng)
            }
            fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate) {
                self.inner.absorb_update(env, round, update)
            }
            fn absorb_update_stale(
                &mut self,
                env: &FlEnv,
                round: usize,
                update: ClientUpdate,
                staleness: u32,
                weight: f64,
            ) {
                self.inner
                    .absorb_update_stale(env, round, update, staleness, weight)
            }
            fn aggregate(&mut self, env: &FlEnv, round: usize, reports: &[ClientReport]) {
                self.inner.aggregate(env, round, reports)
            }
            fn evaluate_client(&self, env: &FlEnv, client: usize) -> fedlps_nn::model::EvalStats {
                self.inner.evaluate_client(env, client)
            }
        }

        let mut algo = CountingFedAvg {
            inner: MiniFedAvg::new(),
            begin_rounds: Vec::new(),
        };
        let env = env_with(FlConfig::tiny().with_round_mode(RoundMode::asynchronous(3, 0.6)));
        let result = Simulator::new(env).run(&mut algo);
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert_eq!(
            algo.begin_rounds,
            (0..FlConfig::tiny().rounds).collect::<Vec<_>>(),
            "begin_round must fire once per version, in order"
        );
    }

    #[test]
    fn event_modes_are_bit_identical_across_parallelism() {
        let run = |mode: RoundMode, parallelism: usize| {
            Simulator::new(env_with(
                FlConfig::tiny()
                    .with_round_mode(mode)
                    .with_parallelism(parallelism),
            ))
            .run(&mut MiniFedAvg::new())
        };
        for mode in [RoundMode::deadline(0.5, 2), RoundMode::asynchronous(3, 0.5)] {
            let serial = run(mode, 1);
            for shards in [2, 4] {
                assert_eq!(
                    serial,
                    run(mode, shards),
                    "{} mode must be schedule-independent at parallelism {shards}",
                    mode.name()
                );
            }
        }
    }

    /// The tentpole contract: every {mode × policy × backend} combination
    /// runs, and each combination is bit-identical across parallelism
    /// settings and backend choices.
    #[test]
    fn mode_policy_backend_matrix_is_bit_identical_across_execution() {
        let run = |mode: RoundMode,
                   selection: SelectionKind,
                   backend: BackendKind,
                   parallelism: usize| {
            Simulator::new(env_with(
                FlConfig::tiny()
                    .with_round_mode(mode)
                    .with_selection(selection)
                    .with_backend(backend)
                    .with_parallelism(parallelism),
            ))
            .run(&mut MiniFedAvg::new())
        };
        for mode in [
            RoundMode::Synchronous,
            RoundMode::deadline(0.5, 2),
            RoundMode::asynchronous(3, 0.5),
        ] {
            for selection in [
                SelectionKind::Uniform,
                SelectionKind::utility(),
                SelectionKind::power_of_choice(),
            ] {
                let reference = run(mode, selection, BackendKind::Serial, 1);
                assert_eq!(
                    reference.rounds.len(),
                    FlConfig::tiny().rounds,
                    "{}/{} must run the full horizon",
                    mode.name(),
                    selection.name()
                );
                for (backend, parallelism) in [
                    (BackendKind::Auto, 4),
                    (BackendKind::ThreadPool, 1),
                    (BackendKind::ThreadPool, 4),
                    (BackendKind::Serial, 4),
                ] {
                    assert_eq!(
                        reference,
                        run(mode, selection, backend, parallelism),
                        "{}/{}/{:?} at parallelism {} must match the serial run",
                        mode.name(),
                        selection.name(),
                        backend,
                        parallelism
                    );
                }
            }
        }
    }

    #[test]
    fn bad_config_knobs_panic_at_construction_with_the_knob_name() {
        let err = std::panic::catch_unwind(|| {
            Simulator::new(env_with(FlConfig::tiny().with_quorum(1.5)))
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("FlConfig.quorum"), "{msg}");

        let err = std::panic::catch_unwind(|| {
            let mut env = env_with(FlConfig::tiny());
            env.fleet = env
                .fleet
                .clone()
                .with_dynamics(DynamicsConfig::default().with_offline_prob(1.0));
            Simulator::new(env)
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("offline_prob"), "{msg}");
    }

    /// Transient upload faults: retries surface in the metrics, permanent
    /// drops are attributed to their cause, and the trace stays bit-identical
    /// across parallelism in every round mode.
    #[test]
    fn upload_faults_retry_then_drop_deterministically() {
        use crate::config::FaultConfig;
        let faults = FaultConfig {
            upload_failure_prob: 0.4,
            max_retries: 1,
            ..FaultConfig::default()
        };
        for mode in [
            RoundMode::Synchronous,
            RoundMode::deadline(1e9, 0),
            RoundMode::asynchronous(3, 0.6),
        ] {
            let run = |parallelism: usize| {
                Simulator::new(env_with(
                    FlConfig::tiny()
                        .with_round_mode(mode)
                        .with_faults(faults)
                        .with_parallelism(parallelism),
                ))
                .run(&mut MiniFedAvg::new())
            };
            let result = run(1);
            assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
            assert!(
                result.total_retry_attempts() > 0,
                "{}: p=0.4 over 6 rounds x 3 clients should retry someone",
                mode.name()
            );
            assert_eq!(
                result,
                run(4),
                "{}: fault schedules must be parallelism-independent",
                mode.name()
            );
        }
        // With no retransmissions allowed, first failures drop permanently.
        let harsh = Simulator::new(env_with(FlConfig::tiny().with_faults(FaultConfig {
            upload_failure_prob: 0.6,
            max_retries: 0,
            ..FaultConfig::default()
        })))
        .run(&mut MiniFedAvg::new());
        assert!(harsh.total_upload_failure_drops() > 0);
        assert_eq!(
            harsh
                .drop_causes()
                .iter()
                .find(|(cause, _)| *cause == "upload-failure")
                .unwrap()
                .1,
            harsh.total_upload_failure_drops()
        );
    }

    /// Diurnal availability: dispatches into an outage wait it out (billed
    /// as latency), in synchronous mode too.
    #[test]
    fn diurnal_availability_stretches_rounds_and_is_observable() {
        use crate::config::AvailabilityModel;
        let run = |availability: AvailabilityModel| {
            Simulator::new(env_with(FlConfig::tiny().with_availability(availability)))
                .run(&mut MiniFedAvg::new())
        };
        let iid = run(AvailabilityModel::Iid);
        let diurnal = run(AvailabilityModel::Diurnal {
            period: iid.total_time / 3.0,
            phase_spread: 1.0,
            night_offline: 0.5,
        });
        assert!(
            diurnal.total_unavailable_dispatches() > 0,
            "half the day offline must catch some dispatch"
        );
        assert!(diurnal.total_unavailable_wait_seconds() > 0.0);
        assert!(
            diurnal.total_time > iid.total_time,
            "waiting out outages must cost virtual time ({} vs {})",
            diurnal.total_time,
            iid.total_time
        );
        assert_eq!(iid.total_unavailable_dispatches(), 0);
    }

    /// The quorum knob closes barrier rounds early: same round count, less
    /// virtual time, stragglers dropped, closes attributed in the metrics.
    #[test]
    fn quorum_closes_synchronous_rounds_early() {
        let full = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let quorum =
            Simulator::new(env_with(FlConfig::tiny().with_quorum(0.5))).run(&mut MiniFedAvg::new());
        assert_eq!(quorum.rounds.len(), full.rounds.len());
        assert!(
            quorum.total_quorum_closes() > 0,
            "a 0.5 quorum over 3-client cohorts must close early"
        );
        assert!(
            quorum.total_time < full.total_time,
            "closing at the quorum must beat waiting for the straggler ({} vs {})",
            quorum.total_time,
            full.total_time
        );
        assert!(quorum.total_straggler_drops() > 0);
    }

    /// The driver stamps the selection layer's stats into the reports and
    /// the run result.
    #[test]
    fn participation_census_reaches_the_run_result() {
        let result = Simulator::new(env_with(FlConfig::tiny())).run(&mut MiniFedAvg::new());
        let census = &result.client_participations;
        assert_eq!(census.len(), 8, "one entry per client");
        let dispatched: u64 = census.iter().sum();
        assert_eq!(
            dispatched as usize,
            FlConfig::tiny().rounds * FlConfig::tiny().clients_per_round,
            "synchronous rounds dispatch exactly the cohort"
        );
        assert_eq!(
            result.total_first_time_participants(),
            census.iter().filter(|&&n| n > 0).count() as u64,
            "every participating client is counted first-time exactly once"
        );
    }
}
