//! Run metrics: per-round traces and end-of-run summaries.
//!
//! The paper reports (i) final mean personalized accuracy and total FLOPs
//! (Table I), (ii) accuracy-versus-FLOPs and accuracy-versus-time curves
//! (Figures 3-4), (iii) time-to-accuracy (Figure 5) and (iv) per-level
//! accuracy/time summaries (Figures 6-8). All of those are derived from the
//! [`RunResult`] collected by the simulator.

use serde::{Deserialize, Error, Serialize, Value};

/// Metrics recorded at the end of one communication round.
///
/// Serde is hand-written rather than derived: the two `zone_*` fields and
/// the six fault-injection fields (`retry_attempts` through
/// `unavailable_wait_seconds`) are emitted only when nonzero, so
/// flat-topology, fault-free traces serialize to exactly the bytes the
/// pre-topology/pre-fault goldens pinned, while two-tier or fault-injected
/// traces carry their extra columns. Deserialization tolerates their
/// absence (defaulting to zero) for the same reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundMetrics {
    /// Round index `r` (in async mode: the server aggregation/version index).
    pub round: usize,
    /// Mean deployed-model accuracy across all clients (None on rounds where
    /// evaluation was skipped).
    pub mean_accuracy: Option<f64>,
    /// Mean training accuracy over the round's absorbed clients.
    pub train_accuracy: f64,
    /// Mean training loss over the round's absorbed clients.
    pub train_loss: f64,
    /// Virtual-clock duration of this round: the slowest selected client in
    /// synchronous mode (Eq. 18), at most the budget in deadline mode, the
    /// gap between aggregations in async mode.
    pub round_time: f64,
    /// Virtual time at which the round started.
    pub round_start_time: f64,
    /// Cumulative simulated time up to and including this round — i.e. the
    /// virtual clock when the round's aggregation happened.
    pub cumulative_time: f64,
    /// FLOPs spent by the selected clients this round.
    pub round_flops: f64,
    /// Cumulative FLOPs across the federation so far.
    pub cumulative_flops: f64,
    /// Bytes uploaded this round.
    pub round_upload_bytes: f64,
    /// Cumulative uploaded bytes.
    pub cumulative_upload_bytes: f64,
    /// Mean sparse ratio used by the selected clients.
    pub mean_sparse_ratio: f64,
    /// Mask-cache lookups served from the cache this round (0 for algorithms
    /// without mask caching).
    pub mask_cache_hits: u64,
    /// Mask-cache lookups that required a rebuild this round.
    pub mask_cache_misses: u64,
    /// Dispatched clients whose updates were lost this round: deadline-mode
    /// stragglers plus devices that churned offline mid-round. Always 0 in
    /// synchronous mode.
    pub straggler_drops: u64,
    /// Async-mode updates discarded for exceeding the staleness bound.
    pub stale_discards: u64,
    /// Async-mode histogram of absorbed-update staleness: entry `s` counts
    /// updates absorbed `s` aggregations after their model was dispatched.
    /// Empty outside async mode.
    pub staleness_hist: Vec<u64>,
    /// Mean selection utility (last loss × Eq. (14) speed term) of the
    /// round's absorbed clients — the quantity utility-based selection ranks
    /// by. 0.0 while the selection layer has no observations yet.
    pub mean_selection_utility: f64,
    /// Absorbed clients participating for the very first time this round —
    /// how fast the selection policy is still exploring the federation.
    pub first_time_participants: u64,
    /// Two-tier topology: uploads dropped at their zone aggregator because
    /// the zone's deadline had fired before they landed. Always 0 under the
    /// flat topology (and omitted from the serialized form when 0).
    pub zone_straggler_drops: u64,
    /// Two-tier topology: bytes the zone tier forwarded to the server this
    /// round — one combined pre-merged upload per active zone in the cohort
    /// modes (priced by the zone uplink in Eq. 14), individual
    /// store-and-forward uploads in async mode. Compare against
    /// `round_upload_bytes` (the client → zone tier) for the uplink saving.
    /// Always 0 under flat (and omitted from the serialized form when 0).
    pub zone_upload_bytes: f64,
    /// Upload retransmissions scheduled this round by the fault injector
    /// (each failed attempt that still had retry budget). Always 0 without
    /// fault injection (and omitted from the serialized form when 0).
    pub retry_attempts: u64,
    /// Updates dropped permanently after exhausting the upload retry cap.
    /// Counted separately from `straggler_drops` (omitted when 0).
    pub upload_failure_drops: u64,
    /// The subset of `straggler_drops` caused by i.i.d. mid-round offline
    /// churn rather than a deadline (omitted when 0).
    pub churn_drops: u64,
    /// Cohort rounds closed by the quorum knob before the full cohort
    /// reported — the graceful-degradation path (omitted when 0).
    pub quorum_closes: u64,
    /// Dispatches that found their client inside an availability window
    /// (diurnal night / burst outage) and had to wait it out (omitted
    /// when 0).
    pub unavailable_dispatches: u64,
    /// Total seconds those dispatches waited for availability before
    /// computing — the availability occupancy of the round (omitted
    /// when 0).
    pub unavailable_wait_seconds: f64,
}

impl Serialize for RoundMetrics {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("round".to_string(), self.round.to_value()),
            ("mean_accuracy".to_string(), self.mean_accuracy.to_value()),
            ("train_accuracy".to_string(), self.train_accuracy.to_value()),
            ("train_loss".to_string(), self.train_loss.to_value()),
            ("round_time".to_string(), self.round_time.to_value()),
            (
                "round_start_time".to_string(),
                self.round_start_time.to_value(),
            ),
            (
                "cumulative_time".to_string(),
                self.cumulative_time.to_value(),
            ),
            ("round_flops".to_string(), self.round_flops.to_value()),
            (
                "cumulative_flops".to_string(),
                self.cumulative_flops.to_value(),
            ),
            (
                "round_upload_bytes".to_string(),
                self.round_upload_bytes.to_value(),
            ),
            (
                "cumulative_upload_bytes".to_string(),
                self.cumulative_upload_bytes.to_value(),
            ),
            (
                "mean_sparse_ratio".to_string(),
                self.mean_sparse_ratio.to_value(),
            ),
            (
                "mask_cache_hits".to_string(),
                self.mask_cache_hits.to_value(),
            ),
            (
                "mask_cache_misses".to_string(),
                self.mask_cache_misses.to_value(),
            ),
            (
                "straggler_drops".to_string(),
                self.straggler_drops.to_value(),
            ),
            ("stale_discards".to_string(), self.stale_discards.to_value()),
            ("staleness_hist".to_string(), self.staleness_hist.to_value()),
            (
                "mean_selection_utility".to_string(),
                self.mean_selection_utility.to_value(),
            ),
            (
                "first_time_participants".to_string(),
                self.first_time_participants.to_value(),
            ),
        ];
        if self.zone_straggler_drops != 0 {
            fields.push((
                "zone_straggler_drops".to_string(),
                self.zone_straggler_drops.to_value(),
            ));
        }
        if self.zone_upload_bytes != 0.0 {
            fields.push((
                "zone_upload_bytes".to_string(),
                self.zone_upload_bytes.to_value(),
            ));
        }
        if self.retry_attempts != 0 {
            fields.push(("retry_attempts".to_string(), self.retry_attempts.to_value()));
        }
        if self.upload_failure_drops != 0 {
            fields.push((
                "upload_failure_drops".to_string(),
                self.upload_failure_drops.to_value(),
            ));
        }
        if self.churn_drops != 0 {
            fields.push(("churn_drops".to_string(), self.churn_drops.to_value()));
        }
        if self.quorum_closes != 0 {
            fields.push(("quorum_closes".to_string(), self.quorum_closes.to_value()));
        }
        if self.unavailable_dispatches != 0 {
            fields.push((
                "unavailable_dispatches".to_string(),
                self.unavailable_dispatches.to_value(),
            ));
        }
        if self.unavailable_wait_seconds != 0.0 {
            fields.push((
                "unavailable_wait_seconds".to_string(),
                self.unavailable_wait_seconds.to_value(),
            ));
        }
        Value::Obj(fields)
    }
}

impl<'de> Deserialize<'de> for RoundMetrics {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(RoundMetrics {
            round: Deserialize::from_value(value.field("round")?)?,
            mean_accuracy: Deserialize::from_value(value.field("mean_accuracy")?)?,
            train_accuracy: Deserialize::from_value(value.field("train_accuracy")?)?,
            train_loss: Deserialize::from_value(value.field("train_loss")?)?,
            round_time: Deserialize::from_value(value.field("round_time")?)?,
            round_start_time: Deserialize::from_value(value.field("round_start_time")?)?,
            cumulative_time: Deserialize::from_value(value.field("cumulative_time")?)?,
            round_flops: Deserialize::from_value(value.field("round_flops")?)?,
            cumulative_flops: Deserialize::from_value(value.field("cumulative_flops")?)?,
            round_upload_bytes: Deserialize::from_value(value.field("round_upload_bytes")?)?,
            cumulative_upload_bytes: Deserialize::from_value(
                value.field("cumulative_upload_bytes")?,
            )?,
            mean_sparse_ratio: Deserialize::from_value(value.field("mean_sparse_ratio")?)?,
            mask_cache_hits: Deserialize::from_value(value.field("mask_cache_hits")?)?,
            mask_cache_misses: Deserialize::from_value(value.field("mask_cache_misses")?)?,
            straggler_drops: Deserialize::from_value(value.field("straggler_drops")?)?,
            stale_discards: Deserialize::from_value(value.field("stale_discards")?)?,
            staleness_hist: Deserialize::from_value(value.field("staleness_hist")?)?,
            mean_selection_utility: Deserialize::from_value(
                value.field("mean_selection_utility")?,
            )?,
            first_time_participants: Deserialize::from_value(
                value.field("first_time_participants")?,
            )?,
            zone_straggler_drops: match value.field("zone_straggler_drops") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            zone_upload_bytes: match value.field("zone_upload_bytes") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0.0,
            },
            retry_attempts: match value.field("retry_attempts") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            upload_failure_drops: match value.field("upload_failure_drops") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            churn_drops: match value.field("churn_drops") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            quorum_closes: match value.field("quorum_closes") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            unavailable_dispatches: match value.field("unavailable_dispatches") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0,
            },
            unavailable_wait_seconds: match value.field("unavailable_wait_seconds") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => 0.0,
            },
        })
    }
}

/// The full trace of one federated run plus its summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Algorithm name (e.g. `"FedLPS"`).
    pub algorithm: String,
    /// Dataset scenario name.
    pub dataset: String,
    /// Per-round metrics.
    pub rounds: Vec<RoundMetrics>,
    /// Mean personalized accuracy after the final round.
    pub final_accuracy: f64,
    /// Best mean personalized accuracy observed at any evaluation point.
    pub best_accuracy: f64,
    /// Total FLOPs across the whole run.
    pub total_flops: f64,
    /// Total simulated time (seconds) across the whole run.
    pub total_time: f64,
    /// Total uploaded bytes across the whole run.
    pub total_upload_bytes: f64,
    /// Per-client dispatch counts over the whole run (selection-layer
    /// participation census; empty for results built without one).
    pub client_participations: Vec<u64>,
}

impl RunResult {
    /// Builds the summary fields from a trace.
    pub fn from_rounds(algorithm: String, dataset: String, rounds: Vec<RoundMetrics>) -> Self {
        let final_accuracy = rounds
            .iter()
            .rev()
            .find_map(|r| r.mean_accuracy)
            .unwrap_or(0.0);
        let best_accuracy = rounds
            .iter()
            .filter_map(|r| r.mean_accuracy)
            .fold(0.0, f64::max);
        let last = rounds.last();
        Self {
            algorithm,
            dataset,
            final_accuracy,
            best_accuracy,
            total_flops: last.map_or(0.0, |r| r.cumulative_flops),
            total_time: last.map_or(0.0, |r| r.cumulative_time),
            total_upload_bytes: last.map_or(0.0, |r| r.cumulative_upload_bytes),
            rounds,
            client_participations: Vec::new(),
        }
    }

    /// Attaches the selection layer's per-client participation census.
    pub fn with_client_participations(mut self, participations: Vec<u64>) -> Self {
        self.client_participations = participations;
        self
    }

    /// Share of dispatches that went to each client (empty when no census
    /// was recorded). Sums to 1 whenever anyone participated.
    pub fn participation_shares(&self) -> Vec<f64> {
        let total: u64 = self.client_participations.iter().sum();
        if total == 0 {
            return vec![0.0; self.client_participations.len()];
        }
        self.client_participations
            .iter()
            .map(|&n| n as f64 / total as f64)
            .collect()
    }

    /// Mean selection utility across all rounds (0 when never observed).
    pub fn mean_selection_utility(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds
            .iter()
            .map(|r| r.mean_selection_utility)
            .sum::<f64>()
            / self.rounds.len() as f64
    }

    /// Total first-time participants across the run: how many distinct
    /// clients the selection policy ever absorbed an update from.
    pub fn total_first_time_participants(&self) -> u64 {
        self.rounds.iter().map(|r| r.first_time_participants).sum()
    }

    /// Mean accuracy over the last `n` evaluation points — the paper reports
    /// "accuracy in the last three rounds" for the convergence comparison.
    pub fn mean_accuracy_last(&self, n: usize) -> f64 {
        let accs: Vec<f64> = self.rounds.iter().filter_map(|r| r.mean_accuracy).collect();
        if accs.is_empty() {
            return 0.0;
        }
        let take = n.min(accs.len());
        accs[accs.len() - take..].iter().sum::<f64>() / take as f64
    }

    /// Time-To-Accuracy (Figure 5): the simulated time at which the mean
    /// accuracy first reached `target`, or `None` if it never did.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.mean_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_time)
    }

    /// FLOPs-to-accuracy: cumulative FLOPs at which the mean accuracy first
    /// reached `target`.
    pub fn flops_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.mean_accuracy.is_some_and(|a| a >= target))
            .map(|r| r.cumulative_flops)
    }

    /// `(cumulative FLOPs, accuracy)` series for the Figure 3 curves.
    pub fn accuracy_vs_flops(&self) -> Vec<(f64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.mean_accuracy.map(|a| (r.cumulative_flops, a)))
            .collect()
    }

    /// `(cumulative time, accuracy)` series for the Figure 4 curves.
    pub fn accuracy_vs_time(&self) -> Vec<(f64, f64)> {
        self.rounds
            .iter()
            .filter_map(|r| r.mean_accuracy.map(|a| (r.cumulative_time, a)))
            .collect()
    }

    /// Mean sparse ratio actually used across the run.
    pub fn mean_sparse_ratio(&self) -> f64 {
        if self.rounds.is_empty() {
            return 1.0;
        }
        self.rounds.iter().map(|r| r.mean_sparse_ratio).sum::<f64>() / self.rounds.len() as f64
    }

    /// Mask-cache hit rate over the whole run (0 when the algorithm never
    /// consulted a cache).
    pub fn mask_cache_hit_rate(&self) -> f64 {
        self.mask_cache_hit_rate_from(0)
    }

    /// Total dropped clients (deadline stragglers + offline churn) over the
    /// whole run.
    pub fn total_straggler_drops(&self) -> u64 {
        self.rounds.iter().map(|r| r.straggler_drops).sum()
    }

    /// Total async updates discarded for exceeding the staleness bound.
    pub fn total_stale_discards(&self) -> u64 {
        self.rounds.iter().map(|r| r.stale_discards).sum()
    }

    /// Total upload retransmissions scheduled over the whole run (0 without
    /// fault injection).
    pub fn total_retry_attempts(&self) -> u64 {
        self.rounds.iter().map(|r| r.retry_attempts).sum()
    }

    /// Total updates dropped after exhausting the upload retry cap.
    pub fn total_upload_failure_drops(&self) -> u64 {
        self.rounds.iter().map(|r| r.upload_failure_drops).sum()
    }

    /// Total drops caused by i.i.d. mid-round offline churn (the churn
    /// subset of `total_straggler_drops`).
    pub fn total_churn_drops(&self) -> u64 {
        self.rounds.iter().map(|r| r.churn_drops).sum()
    }

    /// Total cohort rounds the quorum knob closed before the full cohort
    /// reported.
    pub fn total_quorum_closes(&self) -> u64 {
        self.rounds.iter().map(|r| r.quorum_closes).sum()
    }

    /// Total dispatches that had to wait out an availability window.
    pub fn total_unavailable_dispatches(&self) -> u64 {
        self.rounds.iter().map(|r| r.unavailable_dispatches).sum()
    }

    /// Total seconds dispatched clients spent waiting for availability.
    pub fn total_unavailable_wait_seconds(&self) -> f64 {
        self.rounds.iter().map(|r| r.unavailable_wait_seconds).sum()
    }

    /// The per-cause drop histogram of the whole run, as
    /// `(cause, count)` pairs in a fixed order: `churn` (i.i.d. mid-round
    /// disconnects), `deadline-straggler` (non-churn barrier drops),
    /// `zone-deadline`, `stale` (async staleness discards) and
    /// `upload-failure` (retry cap exhausted). Causes are disjoint; zero
    /// counts are kept so rows line up across configurations.
    pub fn drop_causes(&self) -> Vec<(&'static str, u64)> {
        let churn = self.total_churn_drops();
        vec![
            ("churn", churn),
            (
                "deadline-straggler",
                self.total_straggler_drops().saturating_sub(churn),
            ),
            ("zone-deadline", self.total_zone_straggler_drops()),
            ("stale", self.total_stale_discards()),
            ("upload-failure", self.total_upload_failure_drops()),
        ]
    }

    /// Total uploads dropped at a zone aggregator's deadline over the whole
    /// run (0 under the flat topology).
    pub fn total_zone_straggler_drops(&self) -> u64 {
        self.rounds.iter().map(|r| r.zone_straggler_drops).sum()
    }

    /// Total zone → server bytes over the whole run (0 under the flat
    /// topology). Compare with `total_upload_bytes` — the client → zone
    /// tier — for the uplink saving of zone pre-merging.
    pub fn total_zone_upload_bytes(&self) -> f64 {
        self.rounds.iter().map(|r| r.zone_upload_bytes).sum()
    }

    /// Elementwise sum of the per-round staleness histograms (empty for runs
    /// that never executed asynchronously).
    pub fn staleness_histogram(&self) -> Vec<u64> {
        let len = self
            .rounds
            .iter()
            .map(|r| r.staleness_hist.len())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0u64; len];
        for r in &self.rounds {
            for (h, v) in hist.iter_mut().zip(r.staleness_hist.iter()) {
                *h += v;
            }
        }
        hist
    }

    /// Mean staleness of absorbed async updates (0 for non-async runs).
    pub fn mean_staleness(&self) -> f64 {
        let hist = self.staleness_histogram();
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        hist.iter()
            .enumerate()
            .map(|(s, &n)| s as f64 * n as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Mask-cache hit rate counting only rounds `>= from_round` — the warm
    /// regime the ROADMAP's perf trajectory tracks (early rounds are all
    /// compulsory misses while the cache fills).
    pub fn mask_cache_hit_rate_from(&self, from_round: usize) -> f64 {
        let (hits, misses) = self
            .rounds
            .iter()
            .filter(|r| r.round >= from_round)
            .fold((0u64, 0u64), |(h, m), r| {
                (h + r.mask_cache_hits, m + r.mask_cache_misses)
            });
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(i: usize, acc: Option<f64>, flops: f64, time: f64) -> RoundMetrics {
        RoundMetrics {
            round: i,
            mean_accuracy: acc,
            train_accuracy: 0.5,
            train_loss: 1.0,
            round_time: time,
            round_start_time: time * i as f64,
            cumulative_time: time * (i + 1) as f64,
            round_flops: flops,
            cumulative_flops: flops * (i + 1) as f64,
            round_upload_bytes: 10.0,
            cumulative_upload_bytes: 10.0 * (i + 1) as f64,
            mean_sparse_ratio: 0.5,
            mask_cache_hits: i as u64,
            mask_cache_misses: 1,
            straggler_drops: (i % 2) as u64,
            stale_discards: 0,
            staleness_hist: vec![1, i as u64],
            mean_selection_utility: 0.5,
            first_time_participants: (i == 0) as u64,
            zone_straggler_drops: 0,
            zone_upload_bytes: 0.0,
            retry_attempts: 0,
            upload_failure_drops: 0,
            churn_drops: 0,
            quorum_closes: 0,
            unavailable_dispatches: 0,
            unavailable_wait_seconds: 0.0,
        }
    }

    fn result() -> RunResult {
        RunResult::from_rounds(
            "algo".into(),
            "data".into(),
            vec![
                round(0, Some(0.2), 100.0, 2.0),
                round(1, None, 100.0, 2.0),
                round(2, Some(0.5), 100.0, 2.0),
                round(3, Some(0.4), 100.0, 2.0),
            ],
        )
    }

    #[test]
    fn summary_fields() {
        let r = result();
        assert_eq!(r.final_accuracy, 0.4);
        assert_eq!(r.best_accuracy, 0.5);
        assert_eq!(r.total_flops, 400.0);
        assert_eq!(r.total_time, 8.0);
        assert_eq!(r.total_upload_bytes, 40.0);
    }

    #[test]
    fn time_and_flops_to_accuracy() {
        let r = result();
        assert_eq!(r.time_to_accuracy(0.45), Some(6.0));
        assert_eq!(r.flops_to_accuracy(0.45), Some(300.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn curves_skip_unevaluated_rounds() {
        let r = result();
        assert_eq!(r.accuracy_vs_flops().len(), 3);
        assert_eq!(r.accuracy_vs_time().len(), 3);
    }

    #[test]
    fn last_n_mean_accuracy() {
        let r = result();
        assert!((r.mean_accuracy_last(2) - 0.45).abs() < 1e-12);
        assert!((r.mean_accuracy_last(10) - (0.2 + 0.5 + 0.4) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let r = RunResult::from_rounds("a".into(), "d".into(), vec![]);
        assert_eq!(r.final_accuracy, 0.0);
        assert_eq!(r.time_to_accuracy(0.1), None);
        assert_eq!(r.mean_accuracy_last(3), 0.0);
        assert_eq!(r.mean_sparse_ratio(), 1.0);
        assert_eq!(r.mask_cache_hit_rate(), 0.0);
    }

    #[test]
    fn mask_cache_hit_rates() {
        // Rounds carry hits 0,1,2,3 and one miss each.
        let r = result();
        assert!((r.mask_cache_hit_rate() - 6.0 / 10.0).abs() < 1e-12);
        // From round 2 on: hits 2+3 = 5, misses 2.
        assert!((r.mask_cache_hit_rate_from(2) - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(r.mask_cache_hit_rate_from(99), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = result().with_client_participations(vec![3, 1]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn zone_fields_roundtrip_and_stay_out_of_flat_traces() {
        // Flat rounds (zone fields zero) serialize without any zone keys —
        // that invariant is what keeps the pre-topology goldens byte-exact.
        let flat = round(0, Some(0.2), 100.0, 2.0);
        let json = serde_json::to_string(&flat).unwrap();
        assert!(
            !json.contains("zone_"),
            "flat trace leaked zone keys: {json}"
        );
        for key in [
            "retry_attempts",
            "upload_failure_drops",
            "churn_drops",
            "quorum_closes",
            "unavailable",
        ] {
            assert!(
                !json.contains(key),
                "fault-free trace leaked `{key}`: {json}"
            );
        }
        let back: RoundMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(flat, back);

        // Two-tier rounds carry and roundtrip both zone fields.
        let mut tiered = round(1, None, 100.0, 2.0);
        tiered.zone_straggler_drops = 3;
        tiered.zone_upload_bytes = 4096.0;
        let json = serde_json::to_string(&tiered).unwrap();
        assert!(json.contains("\"zone_straggler_drops\":3"));
        assert!(json.contains("zone_upload_bytes"));
        let back: RoundMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(tiered, back);
    }

    #[test]
    fn fault_fields_roundtrip_and_feed_the_drop_histogram() {
        let mut faulty = round(0, Some(0.2), 100.0, 2.0);
        faulty.retry_attempts = 5;
        faulty.upload_failure_drops = 2;
        faulty.churn_drops = 1; // of this round's 0 straggler_drops below
        faulty.straggler_drops = 3;
        faulty.quorum_closes = 1;
        faulty.unavailable_dispatches = 4;
        faulty.unavailable_wait_seconds = 0.75;
        let json = serde_json::to_string(&faulty).unwrap();
        for key in [
            "retry_attempts",
            "upload_failure_drops",
            "churn_drops",
            "quorum_closes",
            "unavailable_dispatches",
            "unavailable_wait_seconds",
        ] {
            assert!(json.contains(key), "missing `{key}` in {json}");
        }
        let back: RoundMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(faulty, back);

        let r = RunResult::from_rounds("a".into(), "d".into(), vec![faulty]);
        assert_eq!(r.total_retry_attempts(), 5);
        assert_eq!(r.total_upload_failure_drops(), 2);
        assert_eq!(r.total_churn_drops(), 1);
        assert_eq!(r.total_quorum_closes(), 1);
        assert_eq!(r.total_unavailable_dispatches(), 4);
        assert!((r.total_unavailable_wait_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(
            r.drop_causes(),
            vec![
                ("churn", 1),
                ("deadline-straggler", 2),
                ("zone-deadline", 0),
                ("stale", 0),
                ("upload-failure", 2),
            ]
        );
    }

    #[test]
    fn zone_summaries() {
        let mut rounds = vec![round(0, Some(0.2), 100.0, 2.0), round(1, None, 100.0, 2.0)];
        rounds[0].zone_straggler_drops = 2;
        rounds[0].zone_upload_bytes = 100.0;
        rounds[1].zone_straggler_drops = 1;
        rounds[1].zone_upload_bytes = 50.0;
        let r = RunResult::from_rounds("a".into(), "d".into(), rounds);
        assert_eq!(r.total_zone_straggler_drops(), 3);
        assert!((r.total_zone_upload_bytes() - 150.0).abs() < 1e-12);
        assert_eq!(result().total_zone_straggler_drops(), 0);
        assert_eq!(result().total_zone_upload_bytes(), 0.0);
    }

    #[test]
    fn participation_and_utility_summaries() {
        let r = result().with_client_participations(vec![3, 1, 0]);
        let shares = r.participation_shares();
        assert_eq!(shares.len(), 3);
        assert!((shares[0] - 0.75).abs() < 1e-12);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(r.total_first_time_participants(), 1);
        assert!((r.mean_selection_utility() - 0.5).abs() < 1e-12);

        let empty = RunResult::from_rounds("a".into(), "d".into(), vec![]);
        assert!(empty.participation_shares().is_empty());
        assert_eq!(empty.mean_selection_utility(), 0.0);
        assert_eq!(
            empty
                .clone()
                .with_client_participations(vec![0, 0])
                .participation_shares(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn drop_and_staleness_summaries() {
        let r = result();
        // Rounds 0..4 carry drops 0,1,0,1 and histograms [1, i].
        assert_eq!(r.total_straggler_drops(), 2);
        assert_eq!(r.total_stale_discards(), 0);
        assert_eq!(r.staleness_histogram(), vec![4, 6]);
        // Mean staleness: 6 of 10 absorbed updates at staleness 1.
        assert!((r.mean_staleness() - 0.6).abs() < 1e-12);

        let empty = RunResult::from_rounds("a".into(), "d".into(), vec![]);
        assert_eq!(empty.staleness_histogram(), Vec::<u64>::new());
        assert_eq!(empty.mean_staleness(), 0.0);
    }
}
