//! The federated-learning simulator.
//!
//! Every FL framework in this workspace — FedLPS itself and the nineteen
//! baselines — is expressed as an implementation of [`algorithm::FlAlgorithm`]
//! and executed by [`runner::Simulator`], which owns the round loop of a
//! synchronous federation: sample clients, run their local work, aggregate,
//! and periodically evaluate every client's deployed model on its local test
//! data (the paper's personalized-accuracy metric). The runner also maintains
//! the cost accounting the paper reports: cumulative training FLOPs, uplink
//! bytes and the simulated wall-clock time of Eq. (14)/(18).
//!
//! Module map:
//!
//! * [`config`] — federation hyper-parameters (rounds, selection policy,
//!   execution backend, local iterations, batch size, …);
//! * [`env`](mod@env) — the immutable environment handed to algorithms:
//!   dataset, device fleet, model architecture, cost model;
//! * [`algorithm`] — the [`FlAlgorithm`] trait and the per-round
//!   [`ClientReport`];
//! * [`backend`] — the [`ExecutionBackend`] seam:
//!   where the pure client steps run (serial / thread pool);
//! * `driver` (private) — the single event-driven loop all three round
//!   modes share, wiring selection → execution → absorption;
//! * `absorb` (private) — mode-agnostic absorption/metrics accounting;
//! * `topology` (private) — the physical-topology overlay: the barrier
//!   absorption walk plus the two-tier zone tier's timing, traffic and
//!   deadline drops (configured via [`config::Topology`]);
//! * [`train`] — shared local-training helpers (masked/proximal SGD, FLOP and
//!   byte accounting) reused by every algorithm;
//! * [`metrics`] — per-round metrics, run results, time-to-accuracy;
//! * [`runner`] — the simulator facade.
//!
//! Client selection lives in its own crate, `fedlps_select`, re-exported
//! here through [`config::SelectionKind`].

pub mod algorithm;
pub mod backend;
pub mod config;
pub mod env;
pub mod metrics;
pub mod runner;
pub mod train;

mod absorb;
mod driver;
mod topology;

pub use algorithm::{ClientReport, FlAlgorithm};
pub use backend::{BackendKind, ExecutionBackend, SerialBackend, StepTask, ThreadPoolBackend};
pub use config::{FlConfig, RoundMode, SelectionKind, Topology};
pub use env::FlEnv;
pub use metrics::{RoundMetrics, RunResult};
pub use runner::Simulator;
