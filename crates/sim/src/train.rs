//! Shared local-training helpers.
//!
//! Every FL algorithm in the workspace performs some variant of "run `E`
//! minibatch SGD iterations on the client's data", optionally restricted to a
//! parameter mask (sparse training) and/or regularised towards the global
//! model (proximal term). Centralising that loop here keeps the nineteen
//! baseline implementations small and guarantees they all account FLOPs,
//! bytes and costs identically.

use fedlps_data::dataset::Dataset;
use fedlps_device::{CostModel, DeviceProfile, LocalCost};
use fedlps_nn::flops::params_to_bytes;
use fedlps_nn::model::ModelArch;
use fedlps_nn::pack::PackedModel;
use fedlps_nn::sgd::SgdConfig;
use fedlps_sparse::mask::UnitMask;
use fedlps_sparse::plan::SubmodelPlan;
use fedlps_tensor::Arena;
use rand::rngs::StdRng;
use rand::Rng;

/// Options for [`local_sgd`].
#[derive(Debug, Clone, Copy)]
pub struct LocalTrainOptions<'a> {
    /// Number of local iterations `E`.
    pub iterations: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimiser settings.
    pub sgd: SgdConfig,
    /// Optional parameter-level multiplicative mask (sparse training).
    pub param_mask: Option<&'a [f32]>,
    /// Optional proximal regularisation `(μ, global_params)`: adds
    /// `μ · (ω − ω_global)` to the gradient (FedProx / Ditto / Eq. 7).
    pub prox: Option<(f32, &'a [f32])>,
    /// Optional subset of parameter indices frozen during training (used by
    /// FedPer/FedRep-style personal heads held out of the shared update).
    pub frozen: Option<&'a [f32]>,
}

/// Summary of a local training pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalTrainSummary {
    /// Mean training loss over the executed iterations.
    pub mean_loss: f64,
    /// Mean training accuracy over the executed iterations.
    pub mean_accuracy: f64,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Number of samples processed.
    pub samples: usize,
}

/// Runs `E` iterations of (optionally masked / proximal) minibatch SGD on
/// `params` in place and returns the training summary.
pub fn local_sgd(
    arch: &dyn ModelArch,
    params: &mut [f32],
    data: &Dataset,
    options: &LocalTrainOptions<'_>,
    rng: &mut StdRng,
) -> LocalTrainSummary {
    if data.is_empty() || options.iterations == 0 {
        return LocalTrainSummary {
            mean_loss: 0.0,
            mean_accuracy: 0.0,
            iterations: 0,
            samples: 0,
        };
    }
    if let Some(mask) = options.param_mask {
        // Sparse training starts from the masked model (ω ⊙ m).
        for (p, m) in params.iter_mut().zip(mask.iter()) {
            *p *= m;
        }
    }
    let batch = options.batch_size.max(1).min(data.len());
    let mut arena = Arena::from_pool(params.len());
    let [grad] = arena.views([params.len()]);
    let mut indices = Vec::with_capacity(batch);
    let mut loss_sum = 0.0;
    let mut acc_sum = 0.0;
    for _ in 0..options.iterations {
        indices.clear();
        indices.extend((0..batch).map(|_| rng.gen_range(0..data.len())));
        grad.fill(0.0);
        let stats = arch.loss_and_grad(params, data, &indices, grad);
        if let Some((mu, global)) = options.prox {
            for ((g, p), gp) in grad.iter_mut().zip(params.iter()).zip(global.iter()) {
                *g += mu * (p - gp);
            }
        }
        if let Some(frozen) = options.frozen {
            for (g, f) in grad.iter_mut().zip(frozen.iter()) {
                if *f != 0.0 {
                    *g = 0.0;
                }
            }
        }
        match options.param_mask {
            Some(mask) => options.sgd.step_masked(params, grad, mask),
            None => options.sgd.step(params, grad),
        }
        loss_sum += stats.loss;
        acc_sum += stats.accuracy;
    }
    arena.release();
    LocalTrainSummary {
        mean_loss: loss_sum / options.iterations as f64,
        mean_accuracy: acc_sum / options.iterations as f64,
        iterations: options.iterations,
        samples: options.iterations * batch,
    }
}

/// Whether a masked [`local_sgd`] call can run on the physically packed
/// submodel instead and still be **bit-identical**.
///
/// The packed model carries only unit-owned parameters, so every full-vector
/// term the optimiser could read must vanish outside the packed set: the
/// proximal gradient `μ(ω − ω^r)` and weight decay are nonzero on frozen
/// coordinates, and a frozen-head mask cuts across unit boundaries — any of
/// those forces the masked-dense path.
pub fn packed_eligible(options: &LocalTrainOptions<'_>) -> bool {
    options.prox.is_none() && options.frozen.is_none() && options.sgd.weight_decay == 0.0
}

/// Compiles a client's unit mask into a packed submodel, when packed
/// execution is on, the options qualify ([`packed_eligible`]) and the mask
/// extracts a connected submodel. `None` falls back to masked-dense training.
pub fn compile_packed(
    arch: &dyn ModelArch,
    mask: &UnitMask,
    options: &LocalTrainOptions<'_>,
    packed_execution: bool,
) -> Option<PackedModel> {
    if !packed_execution || !packed_eligible(options) {
        return None;
    }
    SubmodelPlan::from_mask(arch.unit_layout(), mask).compile(arch)
}

/// Runs [`local_sgd`] on the physically packed submodel: gather the kept
/// parameters out of `params`, train the compact model, scatter the trained
/// values back. `params` ends bit-identical to what masked-dense [`local_sgd`]
/// would produce (dropped coordinates zeroed, frozen cross-connections
/// untouched, kept coordinates trained), because the packed forward/backward
/// accumulates exactly the same nonzero terms in the same order and the
/// gradient outside the packed set is exactly zero — see the per-architecture
/// equivalence tests in `fedlps-nn` and the property tests in this crate.
pub fn local_sgd_packed(
    packed: &PackedModel,
    params: &mut [f32],
    data: &Dataset,
    options: &LocalTrainOptions<'_>,
    rng: &mut StdRng,
) -> LocalTrainSummary {
    debug_assert!(packed_eligible(options), "options disqualify packing");
    if data.is_empty() || options.iterations == 0 {
        return LocalTrainSummary {
            mean_loss: 0.0,
            mean_accuracy: 0.0,
            iterations: 0,
            samples: 0,
        };
    }
    if let Some(mask) = options.param_mask {
        // Mirror the masked-dense prologue exactly: the dropped coordinates
        // of the caller's buffer are zeroed (they stay out of the packed
        // model, but downstream consumers read the full vector).
        for (p, m) in params.iter_mut().zip(mask.iter()) {
            *p *= m;
        }
    }
    // The packed model's parameters live in one flat pooled arena view for
    // the whole local pass — gather in, train, scatter out, recycle.
    let mut arena = Arena::from_pool(packed.packed_len());
    let [pp] = arena.views([packed.packed_len()]);
    packed.gather_params_into(params, pp);
    let summary = local_sgd_packed_values(packed, pp, data, options, rng);
    packed.scatter_params(pp, params);
    arena.release();
    summary
}

/// The core packed training loop on already-gathered packed values — used by
/// callers that never materialise a full-length buffer at all (the
/// width-scaling baselines gather straight from the `Arc`-shared global
/// snapshot and upload the trained values as a sparse contribution).
pub fn local_sgd_packed_values(
    packed: &PackedModel,
    values: &mut [f32],
    data: &Dataset,
    options: &LocalTrainOptions<'_>,
    rng: &mut StdRng,
) -> LocalTrainSummary {
    debug_assert!(packed_eligible(options), "options disqualify packing");
    if data.is_empty() || options.iterations == 0 {
        return LocalTrainSummary {
            mean_loss: 0.0,
            mean_accuracy: 0.0,
            iterations: 0,
            samples: 0,
        };
    }
    let batch = options.batch_size.max(1).min(data.len());
    let arch = packed.arch();
    let mut arena = Arena::from_pool(packed.packed_len());
    let [grad] = arena.views([packed.packed_len()]);
    let mut indices = Vec::with_capacity(batch);
    let mut loss_sum = 0.0;
    let mut acc_sum = 0.0;
    for _ in 0..options.iterations {
        indices.clear();
        indices.extend((0..batch).map(|_| rng.gen_range(0..data.len())));
        grad.fill(0.0);
        let stats = arch.loss_and_grad(values, data, &indices, grad);
        // The gradient outside the packed set is exactly zero, so clipping
        // the packed gradient computes the same norm the dense path clips,
        // and a plain step equals the masked step on the kept coordinates.
        options.sgd.step(values, grad);
        loss_sum += stats.loss;
        acc_sum += stats.accuracy;
    }
    arena.release();
    LocalTrainSummary {
        mean_loss: loss_sum / options.iterations as f64,
        mean_accuracy: acc_sum / options.iterations as f64,
        iterations: options.iterations,
        samples: options.iterations * batch,
    }
}

/// Resource accounting for one client round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundAccounting {
    /// Training FLOPs spent this round.
    pub flops: f64,
    /// Bytes uploaded.
    pub upload_bytes: f64,
    /// Bytes downloaded.
    pub download_bytes: f64,
    /// Eq. (14) local cost.
    pub local_cost: LocalCost,
}

/// Computes a client's round accounting from the structural facts of its local
/// work: which units it retained, how many parameters it uploaded/downloaded
/// and how many samples it touched.
#[allow(clippy::too_many_arguments)]
pub fn account_round(
    arch: &dyn ModelArch,
    cost: &CostModel,
    device: &DeviceProfile,
    mask: Option<&UnitMask>,
    iterations: usize,
    batch_size: usize,
    uploaded_params: usize,
    downloaded_params: usize,
) -> RoundAccounting {
    let retained = match mask {
        Some(m) => m.retained_per_layer(arch.unit_layout()),
        None => arch.unit_layout().units_per_layer(),
    };
    let samples = (iterations * batch_size) as f64;
    let flops = arch.train_flops_per_sample(&retained) * samples;
    let upload_bytes = params_to_bytes(uploaded_params);
    let download_bytes = params_to_bytes(downloaded_params);
    let local_cost = cost.local_cost(flops, upload_bytes, device);
    RoundAccounting {
        flops,
        upload_bytes,
        download_bytes,
        local_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::dataset::InputKind;
    use fedlps_device::CapabilityTier;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_tensor::{rng_from_seed, Matrix};

    fn toy() -> (Mlp, Dataset) {
        let mlp = Mlp::new(MlpConfig {
            input_dim: 6,
            hidden: vec![8],
            num_classes: 3,
        });
        let mut rng = rng_from_seed(3);
        let features = Matrix::random_normal(30, 6, 1.0, &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let data = Dataset::new(features, labels, 3, InputKind::Vector { dim: 6 });
        (mlp, data)
    }

    #[test]
    fn local_sgd_improves_loss() {
        let (mlp, data) = toy();
        let mut rng = rng_from_seed(1);
        let mut params = mlp.init_params(&mut rng);
        let before = mlp.evaluate(&params, &data).loss;
        let options = LocalTrainOptions {
            iterations: 30,
            batch_size: 16,
            sgd: SgdConfig::vision(),
            param_mask: None,
            prox: None,
            frozen: None,
        };
        let summary = local_sgd(&mlp, &mut params, &data, &options, &mut rng);
        let after = mlp.evaluate(&params, &data).loss;
        assert!(after < before);
        assert_eq!(summary.iterations, 30);
        assert!(summary.mean_loss.is_finite());
    }

    #[test]
    fn masked_training_keeps_masked_params_zero() {
        let (mlp, data) = toy();
        let mut rng = rng_from_seed(2);
        let mut params = mlp.init_params(&mut rng);
        let mut keep = vec![true; mlp.unit_layout().total_units()];
        keep[0] = false;
        keep[3] = false;
        let mask = UnitMask::from_keep(keep);
        let pmask = mask.param_mask(mlp.unit_layout());
        let options = LocalTrainOptions {
            iterations: 10,
            batch_size: 8,
            sgd: SgdConfig::vision(),
            param_mask: Some(&pmask),
            prox: None,
            frozen: None,
        };
        local_sgd(&mlp, &mut params, &data, &options, &mut rng);
        for (p, m) in params.iter().zip(pmask.iter()) {
            if *m == 0.0 {
                assert_eq!(*p, 0.0);
            }
        }
    }

    #[test]
    fn prox_term_keeps_params_closer_to_global() {
        let (mlp, data) = toy();
        let mut rng = rng_from_seed(4);
        let global = mlp.init_params(&mut rng);

        let run = |mu: f32, rng: &mut StdRng| {
            let mut params = global.clone();
            let options = LocalTrainOptions {
                iterations: 20,
                batch_size: 16,
                sgd: SgdConfig::vision(),
                param_mask: None,
                prox: if mu > 0.0 {
                    Some((mu, global.as_slice()))
                } else {
                    None
                },
                frozen: None,
            };
            local_sgd(&mlp, &mut params, &data, &options, rng);
            fedlps_tensor::ops::dist_sq(&params, &global)
        };
        let mut rng1 = rng_from_seed(5);
        let mut rng2 = rng_from_seed(5);
        let free_drift = run(0.0, &mut rng1);
        let prox_drift = run(5.0, &mut rng2);
        assert!(prox_drift < free_drift);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let (mlp, data) = toy();
        let mut rng = rng_from_seed(6);
        let mut params = mlp.init_params(&mut rng);
        // Freeze the classifier (everything past the hidden layer's units).
        let mut frozen = vec![0.0f32; params.len()];
        let hidden_params = 6 * 8 + 8;
        for f in frozen.iter_mut().skip(hidden_params) {
            *f = 1.0;
        }
        let before_tail = params[hidden_params..].to_vec();
        let options = LocalTrainOptions {
            iterations: 10,
            batch_size: 8,
            sgd: SgdConfig::vision(),
            param_mask: None,
            prox: None,
            frozen: Some(&frozen),
        };
        local_sgd(&mlp, &mut params, &data, &options, &mut rng);
        assert_eq!(&params[hidden_params..], before_tail.as_slice());
    }

    #[test]
    fn empty_data_is_a_noop() {
        let (mlp, _) = toy();
        let empty = Dataset::empty(3, InputKind::Vector { dim: 6 });
        let mut rng = rng_from_seed(7);
        let mut params = mlp.init_params(&mut rng);
        let copy = params.clone();
        let options = LocalTrainOptions {
            iterations: 5,
            batch_size: 8,
            sgd: SgdConfig::vision(),
            param_mask: None,
            prox: None,
            frozen: None,
        };
        let summary = local_sgd(&mlp, &mut params, &empty, &options, &mut rng);
        assert_eq!(summary.iterations, 0);
        assert_eq!(params, copy);
    }

    #[test]
    fn packed_local_sgd_is_bit_identical_to_masked_dense() {
        use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
        use fedlps_nn::model::ModelKind;
        use fedlps_sparse::pattern::PatternStrategy;

        for (kind, sgd) in [
            (DatasetKind::MnistLike, SgdConfig::vision()),
            (DatasetKind::Cifar10Like, SgdConfig::vision()),
            (DatasetKind::RedditLike, SgdConfig::text()),
        ] {
            let data = ScenarioConfig::tiny(kind).build();
            let arch = ModelKind::for_dataset(kind).build(data.input, data.num_classes);
            let client_data = &data.clients[0].train;
            let mut rng = rng_from_seed(31);
            let init = arch.init_params(&mut rng);
            let mask = PatternStrategy::Ordered.build_mask(
                arch.unit_layout(),
                &init,
                None,
                0.5,
                0,
                &mut rng,
            );
            let pmask = mask.param_mask(arch.unit_layout());
            let options = LocalTrainOptions {
                iterations: 4,
                batch_size: 6,
                sgd,
                param_mask: Some(&pmask),
                prox: None,
                frozen: None,
            };
            assert!(packed_eligible(&options));
            let packed =
                compile_packed(&*arch, &mask, &options, true).expect("tiny masks are packable");
            assert!(compile_packed(&*arch, &mask, &options, false).is_none());

            let mut dense_params = init.clone();
            let mut rng_dense = rng_from_seed(77);
            let dense = local_sgd(
                &*arch,
                &mut dense_params,
                client_data,
                &options,
                &mut rng_dense,
            );

            let mut packed_params = init.clone();
            let mut rng_packed = rng_from_seed(77);
            let summary = local_sgd_packed(
                &packed,
                &mut packed_params,
                client_data,
                &options,
                &mut rng_packed,
            );

            assert_eq!(dense.mean_loss.to_bits(), summary.mean_loss.to_bits());
            assert_eq!(dense.mean_accuracy, summary.mean_accuracy);
            for (i, (d, p)) in dense_params.iter().zip(packed_params.iter()).enumerate() {
                assert_eq!(
                    d.to_bits(),
                    p.to_bits(),
                    "{kind:?}: trained parameter {i} diverges"
                );
            }
        }
    }

    #[test]
    fn prox_and_decay_disqualify_packing() {
        let (mlp, _) = toy();
        let global = vec![0.0f32; mlp.param_count()];
        let base = LocalTrainOptions {
            iterations: 1,
            batch_size: 4,
            sgd: SgdConfig::vision(),
            param_mask: None,
            prox: None,
            frozen: None,
        };
        assert!(packed_eligible(&base));
        assert!(!packed_eligible(&LocalTrainOptions {
            prox: Some((0.5, &global)),
            ..base
        }));
        assert!(!packed_eligible(&LocalTrainOptions {
            frozen: Some(&global),
            ..base
        }));
        let mut decayed = base;
        decayed.sgd.weight_decay = 0.1;
        assert!(!packed_eligible(&decayed));
    }

    #[test]
    fn accounting_reflects_sparsity() {
        let (mlp, _) = toy();
        let cost = CostModel::default();
        let device = DeviceProfile::from_tier(CapabilityTier::Quarter);
        let dense = account_round(
            &mlp,
            &cost,
            &device,
            None,
            5,
            20,
            mlp.param_count(),
            mlp.param_count(),
        );
        let mask = UnitMask::from_keep((0..8).map(|i| i < 2).collect());
        let kept = mask.retained_params(mlp.unit_layout());
        let sparse = account_round(
            &mlp,
            &cost,
            &device,
            Some(&mask),
            5,
            20,
            kept,
            mlp.param_count(),
        );
        assert!(sparse.flops < dense.flops);
        assert!(sparse.upload_bytes < dense.upload_bytes);
        assert!(sparse.local_cost.total() < dense.local_cost.total());
        assert_eq!(sparse.download_bytes, dense.download_bytes);
    }
}
