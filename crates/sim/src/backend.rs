//! The execution-backend layer: *where* the pure client steps run.
//!
//! The driver hands a batch of [`StepTask`]s — clients scheduled to dispatch
//! at the same virtual instant, in event order — to an [`ExecutionBackend`]
//! and gets their [`ClientOutcome`]s back in input order. Because
//! [`FlAlgorithm::client_step`] is pure (`&self` plus a per-client RNG stream
//! derived only from the configuration), the backend choice is purely a
//! wall-clock knob: every backend produces bit-identical outcomes, and the
//! deterministic event schedule (never the thread schedule) fixes the order
//! in which they are absorbed.
//!
//! Two backends ship today: [`SerialBackend`] (plain in-thread loop) and
//! [`ThreadPoolBackend`] (a dedicated worker pool sized by
//! [`FlConfig::parallelism`](crate::config::FlConfig)). The trait is the seam
//! the ROADMAP's multi-backend item asked for: a process pool, a GPU queue or
//! a remote executor only has to map tasks to outcomes in order.
//!
//! Backends are normally resolved from the configuration, not constructed by
//! hand:
//!
//! ```
//! use fedlps_sim::backend::{BackendKind, ThreadPoolBackend};
//! use fedlps_sim::config::FlConfig;
//!
//! // `Auto` is the default: serial at parallelism 1, a pool above.
//! let serial = FlConfig::default().with_parallelism(1);
//! assert_eq!(BackendKind::Auto.build(&serial).name(), "serial");
//!
//! let sharded = FlConfig::default().with_parallelism(4);
//! assert_eq!(BackendKind::Auto.build(&sharded).name(), "thread-pool");
//!
//! // Kinds parse from the `FEDLPS_BACKEND` environment knob by name.
//! assert_eq!(BackendKind::from_name("threadpool"), Some(BackendKind::ThreadPool));
//!
//! // Explicit construction is available when a caller wants to pin a size.
//! assert_eq!(ThreadPoolBackend::new(3).threads(), 3);
//! ```

use fedlps_tensor::{rng_from_seed, split_seed};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::algorithm::{ClientOutcome, FlAlgorithm};
use crate::config::FlConfig;
use crate::env::FlEnv;

/// One client step scheduled by the driver: the client plus the RNG stream
/// index its step draws from (a pure function of the event schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepTask {
    /// The client to step.
    pub client: usize,
    /// Stream index mixed with the run seed to derive the step's RNG.
    pub stream: u64,
}

/// Which execution backend runs the client steps (the `FlConfig::backend`
/// knob). Results are bit-identical across all settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// Serial when `parallelism <= 1`, a thread pool otherwise (the
    /// historical behaviour).
    #[default]
    Auto,
    /// Always step clients serially, whatever `parallelism` says.
    Serial,
    /// Always build a worker pool of `effective_parallelism()` threads.
    ThreadPool,
}

impl BackendKind {
    /// Short name used in logs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Auto => "auto",
            BackendKind::Serial => "serial",
            BackendKind::ThreadPool => "thread-pool",
        }
    }

    /// Parses a backend name as used by `FEDLPS_BACKEND`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(BackendKind::Auto),
            "serial" => Some(BackendKind::Serial),
            "threadpool" | "thread-pool" => Some(BackendKind::ThreadPool),
            _ => None,
        }
    }

    /// Instantiates the backend this configuration asks for.
    pub fn build(&self, config: &FlConfig) -> Box<dyn ExecutionBackend> {
        let threads = config.effective_parallelism().max(1);
        match self {
            BackendKind::Auto if threads > 1 => Box::new(ThreadPoolBackend::new(threads)),
            BackendKind::Auto | BackendKind::Serial => Box::new(SerialBackend),
            BackendKind::ThreadPool => Box::new(ThreadPoolBackend::new(threads)),
        }
    }
}

/// Runs batches of pure client steps. Implementations must return outcomes in
/// input order and must not reorder, drop or duplicate tasks; all scheduling
/// freedom lives *inside* a batch, which is exactly the freedom purity grants.
pub trait ExecutionBackend: Send + Sync {
    /// Short name used in logs.
    fn name(&self) -> &'static str;

    /// Executes every task's `client_step` and returns the outcomes in task
    /// order.
    fn run_steps(
        &self,
        env: &FlEnv,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        tasks: &[StepTask],
    ) -> Vec<ClientOutcome>;
}

/// Sample-weighted mean deployed-model accuracy across every client,
/// evaluated on the global worker pool (evaluation dominates the simulator's
/// wall-clock cost, and unlike training it only needs `&` access to the
/// algorithm; the collected order is index order, so the reduction is
/// schedule-independent).
pub(crate) fn parallel_mean_accuracy(env: &FlEnv, algorithm: &dyn FlAlgorithm) -> f64 {
    let per_client: Vec<(f64, usize)> = (0..env.num_clients())
        .into_par_iter()
        .map(|k| {
            let stats = algorithm.evaluate_client(env, k);
            (stats.accuracy * stats.samples as f64, stats.samples)
        })
        .collect();
    let total_samples: usize = per_client.iter().map(|(_, n)| n).sum();
    if total_samples == 0 {
        return 0.0;
    }
    per_client.iter().map(|(a, _)| a).sum::<f64>() / total_samples as f64
}

/// Executes the leaves of a [`fedlps_topo::MergePlan`]: one closure call per
/// shard index, collected in index order. This is the merge tree's pass
/// through the execution-backend seam — the only file where parallelism may
/// live (lint rule D3). Each leaf is a pure function of its shard index
/// (a coordinate range of the aggregation walk), and `collect` on an indexed
/// parallel iterator returns results in index order whatever the thread
/// schedule, so the output is bit-identical to the serial loop at every
/// worker count. `shards <= 1` stays on the calling thread.
pub fn run_merge_shards<T, F>(shards: usize, leaf: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    if shards <= 1 {
        return (0..shards).map(leaf).collect();
    }
    (0..shards).into_par_iter().map(leaf).collect()
}

/// Runs one task on the calling thread (shared by both backends).
fn run_one(
    env: &FlEnv,
    algorithm: &dyn FlAlgorithm,
    round: usize,
    task: StepTask,
) -> ClientOutcome {
    let mut rng = rng_from_seed(split_seed(env.config.seed, task.stream));
    algorithm.client_step(env, round, task.client, &mut rng)
}

/// The trivial backend: steps run serially on the driver thread.
#[derive(Debug, Default)]
pub struct SerialBackend;

impl ExecutionBackend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run_steps(
        &self,
        env: &FlEnv,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        tasks: &[StepTask],
    ) -> Vec<ClientOutcome> {
        tasks
            .iter()
            .map(|&t| run_one(env, algorithm, round, t))
            .collect()
    }
}

/// Shards each batch across a dedicated worker pool.
#[derive(Debug)]
pub struct ThreadPoolBackend {
    pool: rayon::ThreadPool,
    threads: usize,
}

impl ThreadPoolBackend {
    /// Builds a pool of exactly `threads` workers.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self {
            pool: rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("rayon pool construction is infallible"),
            threads,
        }
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl ExecutionBackend for ThreadPoolBackend {
    fn name(&self) -> &'static str {
        "thread-pool"
    }

    fn run_steps(
        &self,
        env: &FlEnv,
        algorithm: &dyn FlAlgorithm,
        round: usize,
        tasks: &[StepTask],
    ) -> Vec<ClientOutcome> {
        self.pool.install(|| {
            tasks
                .to_vec()
                .into_par_iter()
                .map(|t| run_one(env, algorithm, round, t))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_parse_and_roundtrip() {
        for kind in [
            BackendKind::Auto,
            BackendKind::Serial,
            BackendKind::ThreadPool,
        ] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            let json = serde_json::to_string(&kind).unwrap();
            let back: BackendKind = serde_json::from_str(&json).unwrap();
            assert_eq!(kind, back);
        }
        assert_eq!(
            BackendKind::from_name("threadpool"),
            Some(BackendKind::ThreadPool)
        );
        assert_eq!(BackendKind::from_name("gpu"), None);
    }

    #[test]
    fn auto_resolves_by_parallelism() {
        let serial = FlConfig::default().with_parallelism(1);
        assert_eq!(BackendKind::Auto.build(&serial).name(), "serial");
        let sharded = FlConfig::default().with_parallelism(4);
        assert_eq!(BackendKind::Auto.build(&sharded).name(), "thread-pool");
        assert_eq!(BackendKind::Serial.build(&sharded).name(), "serial");
        assert_eq!(BackendKind::ThreadPool.build(&serial).name(), "thread-pool");
    }

    #[test]
    fn thread_pool_reports_its_size() {
        assert_eq!(ThreadPoolBackend::new(3).threads(), 3);
        assert_eq!(ThreadPoolBackend::new(0).threads(), 1, "clamps to one");
    }
}
