//! The physical-topology overlay of the driver: where client uploads meet
//! the server, and what the journey costs.
//!
//! Under [`Topology::Flat`] this module is a transparent pass-through — the
//! barrier absorption walk lives here (see [`absorb_arrivals`]) but behaves
//! exactly as the historical driver loop, so flat traces stay byte-identical
//! to the pre-topology goldens. Under [`Topology::TwoTier`] the module
//! overlays the zone tier on the same absorbed arithmetic:
//!
//! * every client maps to a zone aggregator by the seeded assignment of
//!   [`Topology::zone_of`];
//! * in the cohort modes each zone buffers its clients' arrivals, optionally
//!   drops intra-zone stragglers at a per-zone deadline
//!   ([`EventKind::ZoneDeadline`](fedlps_runtime::EventKind) events the
//!   driver routes here), and at the barrier forwards **one combined
//!   upload** — the pre-merged residual is dense, so `param_count × 4`
//!   bytes — priced by the zone aggregator's uplink in the Eq. (14) cost
//!   model ([`CostModel::local_cost`] with zero FLOPs against
//!   [`DeviceProfile::zone_aggregator`]);
//! * in async mode there is no barrier to pre-merge behind, so the zone
//!   tier degenerates to a store-and-forward hop: each upload is re-priced
//!   over the zone uplink on its way to the server, and zone deadlines do
//!   not apply (there is no round-relative timeline to anchor them to).
//!
//! The overlay changes *timing, traffic and drops* only. Absorption still
//! walks the surviving updates in ascending client-id order whatever the
//! topology — zone pre-merging is algebraically a partial sum of the same
//! Eq. (13) linear combination, and simulating the arithmetic in the
//! canonical order keeps every topology bit-identical across backends and
//! parallelism settings (CI diffs two-tier traces at parallelism 1 vs 4).

use std::collections::BTreeMap;

use fedlps_device::{CostModel, DeviceProfile};
use fedlps_topo::Topology;

use crate::absorb::{InFlight, RoundAccumulator};
use crate::algorithm::FlAlgorithm;
use crate::env::FlEnv;

/// Barrier absorption: hands the buffered survivors to the algorithm in
/// ascending client-id order (fixed by the `BTreeMap` iteration order, never
/// the thread schedule) and books their reports.
///
/// This walk is the absorption seam of the topology layer — the one place a
/// cohort round drives `absorb_update` — which is why lint rule D5's
/// allowlist names this module alongside `absorb.rs` and `driver.rs`.
pub(crate) fn absorb_arrivals(
    algorithm: &mut dyn FlAlgorithm,
    env: &FlEnv,
    round: usize,
    arrived: BTreeMap<usize, InFlight>,
    acc: &mut RoundAccumulator,
    mut on_report: impl FnMut(usize, f64, f64),
) {
    for (client, fl) in arrived {
        acc.round_upload += fl.report.upload_bytes;
        on_report(client, fl.report.train_loss, fl.report.local_cost.total());
        acc.reports.push(fl.report);
        algorithm.absorb_update(env, round, fl.update);
    }
}

/// Per-round state of one zone aggregator (two-tier cohort rounds only).
#[derive(Debug, Default, Clone)]
pub(crate) struct ZoneRound {
    /// Dispatched clients of this zone still unresolved (no arrival,
    /// offline, or drop yet).
    outstanding: usize,
    /// Updates buffered at this zone for the barrier.
    survivors: usize,
    /// Arrival time of the latest buffered survivor.
    last_arrival: f64,
    /// The zone deadline fired; later arrivals drop at the zone.
    closed: bool,
    /// The deadline fired while clients were outstanding: the aggregator
    /// waited out its full deadline before forwarding.
    deadline_bound: bool,
}

/// The driver's runtime view of the configured [`Topology`].
#[derive(Debug)]
pub(crate) enum TopologyState {
    /// Clients upload straight to the server.
    Flat,
    /// The zone/edge-aggregator tier.
    TwoTier {
        topology: Topology,
        /// Seed of the client → zone assignment (the run seed).
        seed: u64,
        /// Seconds one combined zone → server forward takes (Eq. 14 comm
        /// term over the zone aggregator's uplink).
        forward_seconds: f64,
        /// Bytes of one combined forward (dense parameters).
        forward_bytes: f64,
        /// Eq. 14 comm seconds per byte over the zone uplink (the async
        /// store-and-forward hop rate).
        per_byte_seconds: f64,
        /// Per-zone state of the open cohort round, keyed by zone id
        /// (sparse: only zones with dispatched clients are present).
        rounds: BTreeMap<usize, ZoneRound>,
    },
}

impl TopologyState {
    /// Resolves the configured topology against the environment.
    pub(crate) fn new(env: &FlEnv) -> Self {
        match env.config.topology {
            Topology::Flat => TopologyState::Flat,
            topology @ Topology::TwoTier { zone_uplink, .. } => {
                let aggregator = DeviceProfile::zone_aggregator(zone_uplink);
                let cost = CostModel::new(env.config.cost_alpha);
                let forward_bytes = (env.arch.param_count() * 4) as f64;
                TopologyState::TwoTier {
                    topology,
                    seed: env.config.seed,
                    forward_seconds: cost
                        .local_cost(0.0, forward_bytes, &aggregator)
                        .comm_seconds,
                    forward_bytes,
                    per_byte_seconds: cost.local_cost(0.0, 1.0, &aggregator).comm_seconds,
                    rounds: BTreeMap::new(),
                }
            }
        }
    }

    /// The zone of a client (`None` under the flat topology).
    fn zone_of(&self, client: usize) -> Option<usize> {
        match self {
            TopologyState::Flat => None,
            TopologyState::TwoTier { topology, seed, .. } => topology.zone_of(*seed, client),
        }
    }

    /// Registers a cohort round's dispatched clients with their zones and
    /// returns the `(zone, deadline)` events the driver must schedule.
    /// A no-op returning no events under the flat topology (and when no
    /// zone deadline is configured).
    pub(crate) fn open_cohort_round(&mut self, dispatched: &[usize]) -> Vec<(usize, f64)> {
        let TopologyState::TwoTier {
            topology,
            seed,
            rounds,
            ..
        } = self
        else {
            return Vec::new();
        };
        rounds.clear();
        for &client in dispatched {
            let zone = topology
                .zone_of(*seed, client)
                .expect("two-tier client has a zone");
            rounds.entry(zone).or_default().outstanding += 1;
        }
        let Topology::TwoTier {
            zone_deadline: Some(deadline),
            ..
        } = *topology
        else {
            return Vec::new();
        };
        rounds.keys().map(|&zone| (zone, deadline)).collect()
    }

    /// Whether an arriving cohort upload is dropped at its zone because the
    /// zone's deadline already fired. Always `false` under flat.
    pub(crate) fn zone_dropped(&self, client: usize) -> bool {
        let Some(zone) = self.zone_of(client) else {
            return false;
        };
        let TopologyState::TwoTier { rounds, .. } = self else {
            unreachable!("a zone assignment implies the two-tier state");
        };
        rounds.get(&zone).is_some_and(|z| z.closed)
    }

    /// Books a cohort arrival the server barrier actually buffered: the
    /// update passed through its zone, which now holds it for the combined
    /// forward.
    pub(crate) fn on_survivor(&mut self, client: usize, time: f64) {
        let Some(zone) = self.zone_of(client) else {
            return;
        };
        let TopologyState::TwoTier { rounds, .. } = self else {
            unreachable!("a zone assignment implies the two-tier state");
        };
        let z = rounds.entry(zone).or_default();
        z.outstanding = z.outstanding.saturating_sub(1);
        z.survivors += 1;
        z.last_arrival = z.last_arrival.max(time);
    }

    /// Books a cohort client resolving *without* contributing (offline
    /// churn, post-round-deadline straggler, zone-deadline drop).
    pub(crate) fn on_resolved(&mut self, client: usize) {
        let Some(zone) = self.zone_of(client) else {
            return;
        };
        let TopologyState::TwoTier { rounds, .. } = self else {
            unreachable!("a zone assignment implies the two-tier state");
        };
        let z = rounds.entry(zone).or_default();
        z.outstanding = z.outstanding.saturating_sub(1);
    }

    /// A zone's deadline fired: later arrivals of that zone drop at the
    /// zone, and if anyone was still outstanding the aggregator is deemed
    /// to have waited out the full deadline before forwarding.
    pub(crate) fn zone_deadline_fired(&mut self, zone: usize, _time: f64) {
        let TopologyState::TwoTier { rounds, .. } = self else {
            unreachable!("flat topologies never schedule zone deadlines");
        };
        let z = rounds.entry(zone).or_default();
        z.closed = true;
        if z.outstanding > 0 {
            z.deadline_bound = true;
        }
    }

    /// Barrier close: prices each active zone's combined forward over the
    /// zone uplink, books the zone-tier traffic into the accumulator and
    /// returns the round duration extended by the latest-landing forward.
    /// Under flat this is the identity on `base_duration`.
    pub(crate) fn close_cohort_round(
        &mut self,
        base_duration: f64,
        acc: &mut RoundAccumulator,
    ) -> f64 {
        let TopologyState::TwoTier {
            topology,
            forward_seconds,
            forward_bytes,
            rounds,
            ..
        } = self
        else {
            return base_duration;
        };
        let zone_deadline = match *topology {
            Topology::TwoTier { zone_deadline, .. } => zone_deadline,
            Topology::Flat => unreachable!("two-tier state holds a two-tier topology"),
        };
        let mut duration = base_duration;
        for z in rounds.values() {
            if z.survivors == 0 {
                continue;
            }
            // The zone forwards when its cohort is resolved: the last
            // buffered arrival, or the full zone deadline when it fired
            // with clients still outstanding.
            let flush = if z.deadline_bound {
                zone_deadline.expect("deadline_bound implies a configured deadline")
            } else {
                z.last_arrival
            };
            duration = duration.max(flush + *forward_seconds);
            acc.zone_upload += *forward_bytes;
        }
        rounds.clear();
        duration
    }

    /// The async store-and-forward hop: extra seconds an upload of
    /// `upload_bytes` spends on the zone → server leg (0 under flat).
    pub(crate) fn async_zone_hop(&self, upload_bytes: f64) -> f64 {
        match self {
            TopologyState::Flat => 0.0,
            TopologyState::TwoTier {
                per_byte_seconds, ..
            } => per_byte_seconds * upload_bytes,
        }
    }

    /// Zone-tier bytes of one async upload forwarded individually
    /// (0 under flat: there is no second tier to carry traffic).
    pub(crate) fn async_forward_bytes(&self, upload_bytes: f64) -> f64 {
        match self {
            TopologyState::Flat => 0.0,
            TopologyState::TwoTier { .. } => upload_bytes,
        }
    }
}
