//! The interface every federated-learning framework implements.

use fedlps_device::LocalCost;
use fedlps_nn::model::EvalStats;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::env::FlEnv;

/// What one selected client reports back to the server after a round: the
/// resource accounting the paper tracks plus its local training statistics.
/// The model update itself is exchanged through the algorithm's own state
/// (each algorithm defines its own aggregation rule and update format).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientReport {
    /// Which client produced the report.
    pub client_id: usize,
    /// Training FLOPs spent by the client this round.
    pub flops: f64,
    /// Bytes uploaded to the server this round.
    pub upload_bytes: f64,
    /// Bytes downloaded from the server this round.
    pub download_bytes: f64,
    /// Eq. (14) local cost breakdown.
    pub local_cost: LocalCost,
    /// Average local training accuracy over the round (`a_k^r`).
    pub train_accuracy: f64,
    /// Average local training loss over the round.
    pub train_loss: f64,
    /// The sparse ratio the client actually used (1.0 for dense baselines).
    pub sparse_ratio: f64,
}

impl ClientReport {
    /// A zeroed report for a client that did no work (e.g. dropped out).
    pub fn idle(client_id: usize) -> Self {
        Self {
            client_id,
            flops: 0.0,
            upload_bytes: 0.0,
            download_bytes: 0.0,
            local_cost: LocalCost::default(),
            train_accuracy: 0.0,
            train_loss: 0.0,
            sparse_ratio: 1.0,
        }
    }
}

/// A federated-learning framework: FedLPS or one of the baselines.
///
/// The [`Simulator`](crate::runner::Simulator) drives implementations through
/// the synchronous round loop of Algorithm 1: `select_clients` →
/// `run_client` for each selected client → `aggregate` → periodic
/// `evaluate_client` over the whole federation.
pub trait FlAlgorithm: Send + Sync {
    /// Human-readable name used in tables (e.g. `"FedLPS"`, `"FedAvg"`).
    fn name(&self) -> String;

    /// One-time initialisation with access to the environment (draw initial
    /// global parameters, create per-client state, …).
    fn setup(&mut self, env: &FlEnv);

    /// Chooses the clients participating in `round`. The default implements
    /// the paper's uniform random selection of `C` clients.
    fn select_clients(&mut self, env: &FlEnv, round: usize, rng: &mut StdRng) -> Vec<usize> {
        let _ = round;
        fedlps_tensor::rng::sample_without_replacement(
            env.num_clients(),
            env.config.clients_per_round,
            rng,
        )
    }

    /// Executes one selected client's local work for the round and returns its
    /// report. Implementations store whatever update payload their
    /// `aggregate` needs in their own state.
    fn run_client(
        &mut self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientReport;

    /// Server-side aggregation at the end of the round.
    fn aggregate(&mut self, env: &FlEnv, round: usize, reports: &[ClientReport]);

    /// Evaluates the model this algorithm would *deploy on client `k`* on that
    /// client's local test data. Personalized methods evaluate the client's
    /// personal (possibly sparse) model; conventional methods evaluate the
    /// shared global model.
    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats;

    /// Mean deployed-model accuracy across every client in the federation —
    /// the headline metric of the paper's Table I.
    fn mean_accuracy(&self, env: &FlEnv) -> f64 {
        let mut acc = 0.0;
        let mut samples = 0usize;
        for k in 0..env.num_clients() {
            let stats = self.evaluate_client(env, k);
            acc += stats.accuracy * stats.samples as f64;
            samples += stats.samples;
        }
        if samples == 0 {
            0.0
        } else {
            acc / samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_report_is_zeroed() {
        let r = ClientReport::idle(3);
        assert_eq!(r.client_id, 3);
        assert_eq!(r.flops, 0.0);
        assert_eq!(r.local_cost.total(), 0.0);
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = ClientReport {
            client_id: 1,
            flops: 2.0,
            upload_bytes: 3.0,
            download_bytes: 4.0,
            local_cost: LocalCost {
                compute_seconds: 0.5,
                comm_seconds: 0.25,
            },
            train_accuracy: 0.8,
            train_loss: 0.4,
            sparse_ratio: 0.5,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ClientReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
