//! The interface every federated-learning framework implements.

use std::any::Any;

use fedlps_device::LocalCost;
use fedlps_nn::model::EvalStats;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::env::FlEnv;

/// What one selected client reports back to the server after a round: the
/// resource accounting the paper tracks plus its local training statistics.
/// The model update itself is exchanged through the algorithm's own state
/// (each algorithm defines its own aggregation rule and update format).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientReport {
    /// Which client produced the report.
    pub client_id: usize,
    /// Training FLOPs spent by the client this round.
    pub flops: f64,
    /// Bytes uploaded to the server this round.
    pub upload_bytes: f64,
    /// Bytes downloaded from the server this round.
    pub download_bytes: f64,
    /// Eq. (14) local cost breakdown.
    pub local_cost: LocalCost,
    /// Average local training accuracy over the round (`a_k^r`).
    pub train_accuracy: f64,
    /// Average local training loss over the round.
    pub train_loss: f64,
    /// The sparse ratio the client actually used (1.0 for dense baselines).
    pub sparse_ratio: f64,
    /// The selection layer's utility estimate for this client at dispatch
    /// time (last observed training loss × the Eq. (14) speed term; 0 until
    /// the client's first absorbed report). Stamped by the driver.
    pub selection_utility: f64,
    /// How many times this client has been dispatched, including this round
    /// (1 = first participation). Stamped by the driver.
    pub participations: u64,
    /// Mask-cache lookups served from the cache during this client's step
    /// (0 for algorithms without mask caching).
    pub mask_cache_hits: u32,
    /// Mask-cache lookups that required a rebuild during this client's step.
    pub mask_cache_misses: u32,
}

impl ClientReport {
    /// A zeroed report for a client that did no work (e.g. dropped out).
    pub fn idle(client_id: usize) -> Self {
        Self {
            client_id,
            flops: 0.0,
            upload_bytes: 0.0,
            download_bytes: 0.0,
            local_cost: LocalCost::default(),
            train_accuracy: 0.0,
            train_loss: 0.0,
            sparse_ratio: 1.0,
            selection_utility: 0.0,
            participations: 0,
            mask_cache_hits: 0,
            mask_cache_misses: 0,
        }
    }
}

/// The opaque, algorithm-defined payload a pure client step hands back to the
/// server: staged model updates, new per-client state, bandit feedback, … The
/// round loop never inspects it — it only carries it from the (possibly
/// parallel) [`client_step`](FlAlgorithm::client_step) to the serial
/// [`absorb_update`](FlAlgorithm::absorb_update), in ascending client-id
/// order, so every algorithm keeps full control of its own update format.
pub type ClientUpdate = Box<dyn Any + Send>;

/// Everything a pure client step produces: the resource/statistics report the
/// simulator aggregates into [`RoundMetrics`](crate::metrics::RoundMetrics)
/// plus the algorithm's own update payload.
pub struct ClientOutcome {
    /// The paper's per-round client report.
    pub report: ClientReport,
    /// The algorithm-defined update absorbed after the parallel phase.
    pub update: ClientUpdate,
}

impl std::fmt::Debug for ClientOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientOutcome")
            .field("report", &self.report)
            .field("update", &"<dyn ClientUpdate>")
            .finish()
    }
}

impl ClientOutcome {
    /// Bundles a report with its update payload.
    pub fn new(report: ClientReport, update: impl Any + Send) -> Self {
        Self {
            report,
            update: Box::new(update),
        }
    }
}

/// A federated-learning framework: FedLPS or one of the baselines.
///
/// The [`Simulator`](crate::runner::Simulator) drives implementations through
/// the synchronous round loop of Algorithm 1: `select_clients` →
/// `begin_round` → `client_step` for each selected client (sharded across
/// threads when [`FlConfig::parallelism`](crate::config::FlConfig) > 1) →
/// `absorb_update` for each outcome in ascending client-id order →
/// `aggregate` → periodic `evaluate_client` over the whole federation.
///
/// `client_step` takes `&self`: it must be a *pure* function of the immutable
/// algorithm state, the environment and the per-client RNG stream, so the
/// simulator may execute the selected clients in any order and on any number
/// of threads while remaining bit-identical to the serial schedule. All
/// mutation belongs in `begin_round` (round-level, e.g. refreshing a shared
/// mask), `absorb_update` (per-client, deterministic order) and `aggregate`.
pub trait FlAlgorithm: Send + Sync {
    /// Human-readable name used in tables (e.g. `"FedLPS"`, `"FedAvg"`).
    fn name(&self) -> String;

    /// One-time initialisation with access to the environment (draw initial
    /// global parameters, create per-client state, …).
    fn setup(&mut self, env: &FlEnv);

    /// Chooses the clients participating in `round`, or `None` to defer to
    /// the configured [`SelectionPolicy`](fedlps_select::SelectionPolicy)
    /// (`FlConfig::selection`), which is the default. Algorithms whose
    /// selection rule is part of the method itself (Oort's utility-guided
    /// sampling, REFL's freshness ranking) override this and return `Some`;
    /// everything else inherits the run-level policy, so uniform,
    /// utility-based and power-of-choice selection compose with any
    /// algorithm.
    fn select_clients(
        &mut self,
        env: &FlEnv,
        round: usize,
        rng: &mut StdRng,
    ) -> Option<Vec<usize>> {
        let _ = (env, round, rng);
        None
    }

    /// Round-level mutable preparation executed *before* the client steps
    /// fan out (e.g. PruneFL's periodic re-pruning of the shared mask). The
    /// RNG stream is deterministic per round and independent of parallelism.
    fn begin_round(&mut self, env: &FlEnv, round: usize, selected: &[usize], rng: &mut StdRng) {
        let _ = (env, round, selected, rng);
    }

    /// Executes one selected client's local work for the round: immutable
    /// global state + per-client RNG stream in, report + update payload out.
    /// Must not mutate shared state (enforced by `&self`) so the simulator
    /// can shard clients across threads.
    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome;

    /// Applies one client's update payload to the algorithm state. The round
    /// loop calls this serially in ascending client-id order regardless of
    /// the parallelism level, which is what keeps sharded runs bit-identical
    /// to serial ones.
    fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate);

    /// Applies an update that arrived `staleness` aggregations after the
    /// model it was computed against was dispatched (the async round mode).
    /// `weight` is the server's staleness discount `alpha^staleness` in
    /// `(0, 1]`; algorithms that aggregate with per-client weights should
    /// scale them by it. The default ignores the discount and performs the
    /// ordinary serial absorb, which keeps every existing algorithm correct
    /// (if staleness-blind) under asynchronous execution.
    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        staleness: u32,
        weight: f64,
    ) {
        let _ = (staleness, weight);
        self.absorb_update(env, round, update);
    }

    /// Server-side aggregation at the end of the round.
    fn aggregate(&mut self, env: &FlEnv, round: usize, reports: &[ClientReport]);

    /// Evaluates the model this algorithm would *deploy on client `k`* on that
    /// client's local test data. Personalized methods evaluate the client's
    /// personal (possibly sparse) model; conventional methods evaluate the
    /// shared global model.
    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats;

    /// Mean deployed-model accuracy across every client in the federation —
    /// the headline metric of the paper's Table I.
    fn mean_accuracy(&self, env: &FlEnv) -> f64 {
        let mut acc = 0.0;
        let mut samples = 0usize;
        for k in 0..env.num_clients() {
            let stats = self.evaluate_client(env, k);
            acc += stats.accuracy * stats.samples as f64;
            samples += stats.samples;
        }
        if samples == 0 {
            0.0
        } else {
            acc / samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_report_is_zeroed() {
        let r = ClientReport::idle(3);
        assert_eq!(r.client_id, 3);
        assert_eq!(r.flops, 0.0);
        assert_eq!(r.local_cost.total(), 0.0);
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = ClientReport {
            client_id: 1,
            flops: 2.0,
            upload_bytes: 3.0,
            download_bytes: 4.0,
            local_cost: LocalCost {
                compute_seconds: 0.5,
                comm_seconds: 0.25,
            },
            train_accuracy: 0.8,
            train_loss: 0.4,
            sparse_ratio: 0.5,
            selection_utility: 0.3,
            participations: 2,
            mask_cache_hits: 1,
            mask_cache_misses: 0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: ClientReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
