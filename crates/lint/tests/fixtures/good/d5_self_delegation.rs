// Known-good: an algorithm forwarding between its own absorb entry points
// (the stale hook defaulting to the fresh one) stays inside its impl.
impl FlAlgorithm for MyAlgo {
    fn absorb_update(&mut self, env: &FlEnv, round: usize, update: ClientUpdate) {
        self.inner.absorb_update(env, round, update);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        _weight: f64,
    ) {
        self.absorb_update(env, round, update);
    }
}
