// Known-good: the virtual clock and seeded per-stream RNGs replay exactly.
fn measure(clock: &VirtualClock, seed: u64) -> f64 {
    let mut rng = rng_from_seed(split_seed(seed, STREAM_SELECTION));
    clock.now() + rng.gen::<f64>()
}
