// Known-good: BTreeMap iterates in key order; sorted vecs are fine too.
use std::collections::BTreeMap;

fn tally(clients: &[usize]) -> Vec<(usize, usize)> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for &c in clients {
        *counts.entry(c).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
