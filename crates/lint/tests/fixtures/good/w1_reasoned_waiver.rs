// Known-good: a reasoned waiver suppresses exactly its rule on its line.
// fedlps-lint: allow(D1, fixture demonstrating a well-formed waiver; entries are drained in sorted order)
use std::collections::HashMap;
