// Known-good: trailing waiver form, consumed by the finding on its line.
fn timed() -> Instant {
    Instant::now() // fedlps-lint: allow(D2, fixture demonstrating the trailing waiver form)
}
