// Known-good: serial iteration, and naming an enum variant `ThreadPool` is
// not a rayon use (the backend *kind* is config, not parallelism).
fn step_all(tasks: Vec<Task>) -> Vec<Outcome> {
    let kind = BackendKind::ThreadPool;
    let _ = kind;
    tasks.into_iter().map(run_one).collect()
}
