// Known-good: an ordered slice walk fixes the accumulation order, and
// integer sums are associative regardless of order.
fn total_loss(reports: &[Report]) -> f32 {
    let _count: u64 = reports.iter().map(|r| r.steps).sum::<u64>();
    reports.iter().map(|r| r.loss).sum::<f32>()
}
