// Known-bad: the waiver suppresses nothing — the allow-list is rotting.
// fedlps-lint: allow(D2, there used to be a wall-clock read here)
fn nothing_to_waive() -> u64 {
    42
}
