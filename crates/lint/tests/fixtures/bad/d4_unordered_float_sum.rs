// Known-bad: float addition is not associative, so a sum over a parallel
// iterator depends on the thread schedule (also a D3 hit: rayon leaked out
// of the backend seam — compound by construction).
fn total_loss(reports: Vec<Report>) -> f32 {
    reports.into_par_iter().map(|r| r.loss).sum::<f32>()
}
