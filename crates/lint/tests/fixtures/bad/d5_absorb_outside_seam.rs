// Known-bad: driving absorption from outside crates/sim/src/{absorb,driver,topology}.rs
// bypasses the event-ordered absorption point the bit-identity proof fixes.
fn shortcut(algorithm: &mut dyn FlAlgorithm, env: &FlEnv, update: ClientUpdate) {
    algorithm.absorb_update(env, 0, update);
}
