// Known-bad: wall-clock reads and ambient RNG make runs unreproducible.
use std::time::{Instant, SystemTime};

fn measure() -> f64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    let noise: f64 = rand::random();
    std::thread::spawn(|| {});
    let mut rng = thread_rng();
    start.elapsed().as_secs_f64() + noise + rng.gen::<f64>()
}
