// Known-bad: hash collections iterate in a per-process seeded order, so any
// walk over them breaks replayability. D1 must flag construction and use.
use std::collections::HashMap;

fn tally(clients: &[usize]) -> Vec<(usize, usize)> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &c in clients {
        *counts.entry(c).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
