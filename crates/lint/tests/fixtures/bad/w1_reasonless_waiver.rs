// Known-bad: the waiver has no reason, so the D1 finding stays live and the
// waiver itself is flagged.
// fedlps-lint: allow(D1)
use std::collections::HashMap;
