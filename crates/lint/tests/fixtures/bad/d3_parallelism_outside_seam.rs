// Known-bad: this file is not crates/sim/src/backend.rs, so any rayon use
// escapes the one seam where the thread schedule is provably absorbed.
use rayon::prelude::*;

fn step_all(tasks: Vec<Task>) -> Vec<Outcome> {
    tasks.into_par_iter().map(run_one).collect()
}
