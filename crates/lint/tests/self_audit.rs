//! The live workspace must pass its own determinism audit: zero findings,
//! zero reasonless waivers, and every waiver both reasoned and consumed.
//! This is the test-suite twin of the CI `determinism-lint` job.

use fedlps_lint::{audit_workspace, workspace_root};

#[test]
fn workspace_passes_determinism_audit() {
    let root = workspace_root();
    let report = audit_workspace(&root).expect("walk the workspace");
    assert!(
        report.files_scanned > 50,
        "the walk found the real tree, not an empty dir ({} files)",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "determinism audit found violations:\n{}",
        fedlps_lint::render_text(&report)
    );
}

#[test]
fn workspace_has_zero_reasonless_waivers() {
    let report = audit_workspace(&workspace_root()).expect("walk the workspace");
    let reasonless: Vec<_> = report
        .waivers
        .iter()
        .filter(|w| w.reason.is_empty() || w.rule.is_none())
        .collect();
    assert!(
        reasonless.is_empty(),
        "every waiver must carry a rule and a reason: {reasonless:?}"
    );
    // Every waiver in the live tree must also have earned its keep: the
    // audit being clean (above) means W2 flagged none as stale, so each
    // waiver suppressed at least one real finding.
    assert!(
        report.waived.len() >= report.waivers.len(),
        "every waiver suppresses at least one finding ({} waived, {} waivers)",
        report.waived.len(),
        report.waivers.len()
    );
}
