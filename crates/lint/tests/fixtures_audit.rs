//! Fixture-driven rule tests: every known-bad snippet must flag its rule,
//! every known-good twin must pass clean, and the CLI must exit nonzero on
//! the bad set with the expected rule IDs in its report.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use fedlps_lint::{audit_source, AuditReport, RuleId};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The rule a fixture exercises, from its `d1_…` / `w2_…` filename prefix.
fn expected_rule(name: &str) -> RuleId {
    let prefix = name.split('_').next().unwrap().to_uppercase();
    RuleId::parse(&prefix).unwrap_or_else(|| panic!("fixture `{name}` names no rule"))
}

fn audit_fixture(dir: &str, name: &str) -> AuditReport {
    let path = fixtures_dir().join(dir).join(name);
    let src = fs::read_to_string(&path).unwrap();
    let mut report = AuditReport::default();
    // Audited under a neutral simulated path so file-scoped exemptions
    // (backend seam, absorb/driver) do not apply.
    audit_source(&format!("crates/sim/src/{name}"), &src, &mut report);
    report
}

#[test]
fn every_rule_has_a_bad_and_a_good_fixture() {
    for dir in ["bad", "good"] {
        let mut prefixes: Vec<String> = fs::read_dir(fixtures_dir().join(dir))
            .unwrap()
            .map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                expected_rule(&name).to_string()
            })
            .collect();
        prefixes.sort();
        let all: Vec<String> = RuleId::ALL.iter().map(|r| r.to_string()).collect();
        assert_eq!(prefixes, all, "one {dir} fixture per rule ID");
    }
}

#[test]
fn bad_fixtures_flag_their_rule() {
    for entry in fs::read_dir(fixtures_dir().join("bad")).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let expected = expected_rule(&name);
        let report = audit_fixture("bad", &name);
        let rules: Vec<RuleId> = report.findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&expected),
            "bad/{name} should flag {expected}, found {rules:?}"
        );
    }
}

#[test]
fn good_fixtures_pass_clean() {
    for entry in fs::read_dir(fixtures_dir().join("good")).unwrap() {
        let name = entry.unwrap().file_name().into_string().unwrap();
        let report = audit_fixture("good", &name);
        assert!(
            report.clean(),
            "good/{name} should pass, found {:?}",
            report.findings
        );
    }
}

#[test]
fn cli_exits_nonzero_on_bad_fixtures_with_rule_ids() {
    let output = Command::new(env!("CARGO_BIN_EXE_fedlps_lint"))
        .args(["--root"])
        .arg(fixtures_dir().join("bad"))
        .output()
        .expect("run fedlps_lint");
    assert_eq!(
        output.status.code(),
        Some(1),
        "bad fixtures must fail the audit"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in RuleId::ALL {
        assert!(
            stdout.contains(&format!(" {rule} ")),
            "report should carry a {rule} finding:\n{stdout}"
        );
    }
}

#[test]
fn cli_exits_zero_on_good_fixtures_with_json_report() {
    let output = Command::new(env!("CARGO_BIN_EXE_fedlps_lint"))
        .args(["--format", "json", "--root"])
        .arg(fixtures_dir().join("good"))
        .output()
        .expect("run fedlps_lint");
    assert_eq!(output.status.code(), Some(0), "good fixtures must pass");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"clean\": true"), "json: {stdout}");
    assert!(stdout.contains("\"findings\": []"), "json: {stdout}");
}
