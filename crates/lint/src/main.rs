//! CLI for the workspace determinism auditor.
//!
//! ```text
//! cargo run -p fedlps_lint                       # text report, exit 1 on findings
//! cargo run -p fedlps_lint -- --format json      # CI artifact to stdout
//! cargo run -p fedlps_lint -- --out report.json --format json
//! cargo run -p fedlps_lint -- --root path/to/ws  # audit another tree
//! cargo run -p fedlps_lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use fedlps_lint::{audit_workspace, render_json, render_text, workspace_root, RuleId};

struct Options {
    root: PathBuf,
    json: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: workspace_root(),
        json: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                opts.root = PathBuf::from(value);
            }
            "--format" => match args.next().as_deref() {
                Some("json") => opts.json = true,
                Some("text") => opts.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--out" => {
                let value = args.next().ok_or("--out needs a path")?;
                opts.out = Some(PathBuf::from(value));
            }
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{rule}: {}", rule.describe());
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!(
                    "fedlps_lint: workspace determinism auditor (rules D1-D5)\n\n\
                     USAGE: fedlps_lint [--root DIR] [--format text|json] [--out FILE] [--list-rules]\n\n\
                     Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n\
                     Waive a finding with `// fedlps-lint: allow(RULE, reason)` — reason mandatory."
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fedlps_lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match audit_workspace(&opts.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "fedlps_lint: audit of {} failed: {err}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };

    let rendered = if opts.json {
        render_json(&report)
    } else {
        render_text(&report)
    };
    match &opts.out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("fedlps_lint: cannot write {}: {err}", path.display());
                return ExitCode::from(2);
            }
            // Keep the pass/fail summary visible even when the report goes
            // to a file.
            if opts.json {
                eprint!("{}", render_text(&report));
            }
        }
        None => print!("{rendered}"),
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
