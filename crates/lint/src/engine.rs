//! The audit engine: walks the workspace, lexes every `.rs` file, applies
//! the rules and then the inline waivers.
//!
//! Waiver syntax, parsed from any comment:
//!
//! ```text
//! // fedlps-lint: allow(D2, wall-clock timing is this bench's entire job)
//! ```
//!
//! A waiver on its own line covers the next line that carries code (stacked
//! waivers all cover that line); a trailing waiver covers its own line. The
//! reason is mandatory — `allow(D2)` is itself a W1 finding — and a waiver
//! that suppresses nothing is a W2 finding, so stale allows surface instead
//! of rotting.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Comment, Lexed};
use crate::rules::{check_file, Finding, RuleId};

/// A parsed `fedlps-lint: allow(...)` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub file: String,
    /// Line of the waiver comment itself.
    pub line: u32,
    /// The line whose findings this waiver suppresses.
    pub target_line: u32,
    pub rule: Option<RuleId>,
    pub reason: String,
    /// Raw rule text, kept for the W-finding message when unparseable.
    pub rule_text: String,
}

/// The complete result of one workspace audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Findings that survived waiver application, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Findings suppressed by a (reasoned) waiver.
    pub waived: Vec<Finding>,
    /// Every waiver encountered, used or not.
    pub waivers: Vec<Waiver>,
    pub files_scanned: usize,
}

impl AuditReport {
    /// Whether the audit passed (no live findings).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Path suffixes excluded from the audit: the lint crate's own fixtures are
/// known-bad snippets by design.
const SKIP_SUFFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Recursively collects every auditable `.rs` file under `root`, sorted so
/// reports (and the JSON artifact) are byte-stable across filesystems.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                    continue;
                }
                let rel = relative_unix(root, &path);
                if SKIP_SUFFIXES.iter().any(|s| rel.ends_with(s)) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Parses every waiver out of a file's comments. `lexed` supplies both the
/// comments and the token lines needed to resolve each waiver's target.
pub fn parse_waivers(file: &str, lexed: &Lexed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for comment in &lexed.comments {
        // Doc comments only *describe* the waiver syntax; a real waiver is
        // a plain `//` comment at the use site.
        if comment.doc {
            continue;
        }
        let Some((rule_text, reason)) = parse_allow(&comment.text) else {
            continue;
        };
        out.push(Waiver {
            file: file.to_string(),
            line: comment.line,
            target_line: waiver_target(comment, lexed),
            rule: RuleId::parse(&rule_text),
            reason,
            rule_text,
        });
    }
    out
}

/// Extracts `(rule, reason)` from a comment containing
/// `fedlps-lint: allow(RULE, reason…)`. The reason may be empty (W1 catches
/// that later); returns `None` when the comment is not a waiver at all.
fn parse_allow(text: &str) -> Option<(String, String)> {
    let rest = text.split("fedlps-lint:").nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let body = rest.rfind(')').map_or(rest, |end| &rest[..end]);
    match body.split_once(',') {
        Some((rule, reason)) => Some((rule.trim().to_string(), reason.trim().to_string())),
        None => Some((body.trim().to_string(), String::new())),
    }
}

/// The line a waiver suppresses: its own line when code precedes it (a
/// trailing comment), otherwise the next line that carries any token.
fn waiver_target(comment: &Comment, lexed: &Lexed) -> u32 {
    let trailing = lexed
        .tokens
        .iter()
        .any(|t| t.line == comment.line && t.col < comment.col);
    if trailing {
        return comment.line;
    }
    lexed
        .tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment.line)
        .min()
        .unwrap_or(comment.line)
}

/// Audits one file's source text.
pub fn audit_source(file: &str, src: &str, report: &mut AuditReport) {
    let lexed = lex(src);
    let findings = check_file(file, &lexed);
    let waivers = parse_waivers(file, &lexed);
    let mut used = vec![false; waivers.len()];

    for finding in findings {
        let waiver = waivers.iter().position(|w| {
            w.rule == Some(finding.rule) && w.target_line == finding.line && !w.reason.is_empty()
        });
        match waiver {
            Some(i) => {
                used[i] = true;
                report.waived.push(finding);
            }
            None => report.findings.push(finding),
        }
    }

    for (waiver, used) in waivers.iter().zip(&used) {
        if waiver.reason.is_empty() || waiver.rule.is_none() {
            report.findings.push(Finding {
                rule: RuleId::W1,
                file: file.to_string(),
                line: waiver.line,
                col: 1,
                message: if waiver.rule.is_none() {
                    format!("waiver names unknown rule `{}`", waiver.rule_text)
                } else {
                    format!(
                        "waiver for {} has no reason; write \
                         `fedlps-lint: allow({}, why this is safe)`",
                        waiver.rule_text, waiver.rule_text
                    )
                },
            });
        } else if !used {
            report.findings.push(Finding {
                rule: RuleId::W2,
                file: file.to_string(),
                line: waiver.line,
                col: 1,
                message: format!(
                    "waiver for {} suppresses nothing on line {}; remove the stale allow",
                    waiver.rule_text, waiver.target_line
                ),
            });
        }
    }
    report.waivers.extend(waivers);
}

/// Audits the whole workspace rooted at `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    for path in collect_files(root)? {
        let rel = relative_unix(root, &path);
        let src = fs::read_to_string(&path)?;
        audit_source(&rel, &src, &mut report);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> AuditReport {
        let mut report = AuditReport::default();
        audit_source("crates/sim/src/x.rs", src, &mut report);
        report
    }

    #[test]
    fn waiver_suppresses_next_line() {
        let report = audit(
            "// fedlps-lint: allow(D1, ordering is re-sorted two lines down)\n\
             let m = HashMap::new();\n",
        );
        assert!(report.clean(), "findings: {:?}", report.findings);
        assert_eq!(report.waived.len(), 1);
    }

    #[test]
    fn trailing_waiver_suppresses_own_line() {
        let report = audit("let t = Instant::now(); // fedlps-lint: allow(D2, test-only timing)\n");
        assert!(report.clean(), "findings: {:?}", report.findings);
    }

    #[test]
    fn reasonless_waiver_is_w1_and_suppresses_nothing() {
        let report = audit("// fedlps-lint: allow(D1)\nlet m = HashMap::new();\n");
        let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::D1), "the violation stays live");
        assert!(rules.contains(&RuleId::W1), "and the waiver is flagged");
    }

    #[test]
    fn stale_waiver_is_w2() {
        let report = audit("// fedlps-lint: allow(D1, nothing here anymore)\nlet x = 1;\n");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, RuleId::W2);
    }

    #[test]
    fn unknown_rule_is_w1() {
        let report = audit("// fedlps-lint: allow(D9, no such rule)\nlet x = 1;\n");
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, RuleId::W1);
    }

    #[test]
    fn waiver_is_rule_specific() {
        let report = audit(
            "// fedlps-lint: allow(D1, wrong rule for this line)\n\
             let t = Instant::now();\n",
        );
        let rules: Vec<_> = report.findings.iter().map(|f| f.rule).collect();
        assert!(
            rules.contains(&RuleId::D2),
            "D2 stays live under a D1 waiver"
        );
        assert!(rules.contains(&RuleId::W2), "and the D1 waiver is stale");
    }

    #[test]
    fn stacked_waivers_cover_one_line() {
        let report = audit(
            "// fedlps-lint: allow(D1, buffered then drained in sorted order)\n\
             // fedlps-lint: allow(D2, virtual-time shim boundary)\n\
             let t = (HashMap::<u32, u32>::new(), Instant::now());\n",
        );
        assert!(report.clean(), "findings: {:?}", report.findings);
        assert_eq!(report.waived.len(), 2);
    }
}
