//! `fedlps_lint` — the workspace determinism auditor.
//!
//! Every guarantee this repository ships is a *determinism* contract:
//! serial == 4-shard, packed == masked-dense, sync/deadline/async all diffed
//! byte-for-byte in CI. Those contracts are enforced dynamically by
//! proptests and the CI quickstart-JSON diff gate — but a dynamic gate only
//! covers the configurations it samples. A single `HashMap` iteration,
//! ambient `thread_rng()`, wall-clock read or stray `par_iter` outside the
//! backend seam can break bit-identity in a configuration no gate runs.
//!
//! This crate makes the invariants *statically checkable*: a hand-rolled
//! lexer (no registry access, so no `syn` — the same vendored-shim
//! philosophy as `vendor/`) walks every `.rs` file in the workspace and
//! enforces rules D1–D5 (see [`rules`]), with inline waivers
//! (`// fedlps-lint: allow(RULE, reason)`) whose reasons are mandatory and
//! whose staleness is itself a finding.
//!
//! Run it as `cargo run -p fedlps_lint` (text) or
//! `cargo run -p fedlps_lint -- --format json` (the CI artifact).

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{audit_source, audit_workspace, AuditReport, Waiver};
pub use lexer::{lex, Lexed, Token, TokenKind};
pub use report::{render_json, render_text};
pub use rules::{check_file, Finding, RuleId};

use std::path::PathBuf;

/// Locates the workspace root: the nearest ancestor of this crate's
/// manifest directory whose `Cargo.toml` declares a `[workspace]`. Works
/// from `cargo run -p fedlps_lint` in any subdirectory and from tests.
pub fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            // Fall back to the manifest dir's grandparent (crates/lint -> repo).
            return PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("crates/lint has a grandparent")
                .to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_has_the_workspace_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
        assert!(root.join("crates/lint/Cargo.toml").is_file());
    }
}
