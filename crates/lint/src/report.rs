//! Report rendering: `file:line:col RULE message` text for humans and a
//! machine-readable JSON document for the CI artifact.
//!
//! The JSON is hand-written (the crate is deliberately dependency-free); the
//! schema is flat and additive-stable:
//!
//! ```json
//! {
//!   "clean": true,
//!   "files_scanned": 120,
//!   "findings": [{"file": "...", "line": 1, "col": 1, "rule": "D1", "message": "..."}],
//!   "waived": [...same shape...],
//!   "waivers": [{"file": "...", "line": 1, "rule": "D2", "reason": "..."}]
//! }
//! ```

use crate::engine::AuditReport;
use crate::rules::Finding;

/// Renders the human-readable report.
pub fn render_text(report: &AuditReport) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&format!(
            "{}:{}:{} {} {}\n",
            finding.file, finding.line, finding.col, finding.rule, finding.message
        ));
    }
    out.push_str(&format!(
        "fedlps_lint: {} file(s) scanned, {} finding(s), {} waived\n",
        report.files_scanned,
        report.findings.len(),
        report.waived.len()
    ));
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
        escape_json(&f.file),
        f.line,
        f.col,
        f.rule,
        escape_json(&f.message)
    )
}

/// Renders the machine-readable report.
pub fn render_json(report: &AuditReport) -> String {
    let findings: Vec<_> = report.findings.iter().map(finding_json).collect();
    let waived: Vec<_> = report.waived.iter().map(finding_json).collect();
    let waivers: Vec<_> = report
        .waivers
        .iter()
        .map(|w| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
                escape_json(&w.file),
                w.line,
                escape_json(&w.rule_text),
                escape_json(&w.reason)
            )
        })
        .collect();
    format!(
        "{{\n  \"clean\": {},\n  \"files_scanned\": {},\n  \"findings\": [{}],\n  \"waived\": [{}],\n  \"waivers\": [{}]\n}}\n",
        report.clean(),
        report.files_scanned,
        findings.join(","),
        waived.join(","),
        waivers.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::audit_source;

    #[test]
    fn text_report_has_grep_friendly_lines() {
        let mut report = AuditReport::default();
        audit_source(
            "crates/sim/src/x.rs",
            "let m = HashMap::new();",
            &mut report,
        );
        report.files_scanned = 1;
        let text = render_text(&report);
        assert!(
            text.starts_with("crates/sim/src/x.rs:1:9 D1 "),
            "got: {text}"
        );
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn json_report_escapes_and_parses_shape() {
        let mut report = AuditReport::default();
        audit_source(
            "crates/sim/src/x.rs",
            "let t = Instant::now(); // fedlps-lint: allow(D2, reason \"quoted\")\n",
            &mut report,
        );
        report.files_scanned = 1;
        let json = render_json(&report);
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("reason \\\"quoted\\\""));
        assert!(json.contains("\"files_scanned\": 1"));
    }
}
