//! A minimal Rust lexer with source positions.
//!
//! The determinism rules (see [`crate::rules`]) operate on token *sequences*
//! — `Instant :: now`, `. sum :: < f32 >` — so the lexer only has to get the
//! things right that would otherwise produce false positives: comments
//! (where waivers live and where prose mentions `HashMap` legitimately),
//! string literals (rule tables quote the banned names), char literals vs
//! lifetimes, and raw strings/identifiers. It makes no attempt to parse.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `fn`, `self`, …). Raw
    /// identifiers (`r#type`) carry the name without the `r#` prefix.
    Ident(String),
    /// A numeric literal, consumed as one unit (`1.0e-5`, `0xff`, `3f64`).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// The `::` path separator (lexed as one token so rules can match
    /// `Ident PathSep Ident` without counting colons).
    PathSep,
    /// Any other single punctuation character (`.`, `;`, `{`, `(`, `<`, …).
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A `//` comment with its position; block comments are recorded too so the
/// waiver scanner sees every comment form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` delimiters, trimmed.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`). Waivers
    /// are only honoured in plain comments; docs may quote the syntax.
    pub doc: bool,
    pub line: u32,
    pub col: u32,
}

/// The output of lexing one file: code tokens and comments, separately.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one file into tokens and comments. Invalid UTF-8 inside literals is
/// impossible (the input is `&str`); malformed code degrades to punctuation
/// tokens rather than errors — the auditor lints source that `rustc` will
/// compile anyway, so recovery beats rejection.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let mut text = Vec::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                // Strip the `//` (and doc-comment `///` / `//!`) prefix.
                let mut s = String::from_utf8_lossy(&text).into_owned();
                let mut slashes = 0usize;
                while let Some(rest) = s.strip_prefix('/') {
                    slashes += 1;
                    s = rest.to_string();
                }
                let mut doc = slashes >= 3;
                if let Some(rest) = s.strip_prefix('!') {
                    doc = true;
                    s = rest.to_string();
                }
                out.comments.push(Comment {
                    text: s.trim().to_string(),
                    doc,
                    line,
                    col,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                let mut text = Vec::new();
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let raw = String::from_utf8_lossy(&text);
                let doc = raw.starts_with('*') || raw.starts_with('!');
                out.comments.push(Comment {
                    text: raw.trim_start_matches(['*', '!']).trim().to_string(),
                    doc,
                    line,
                    col,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(&cur) => {
                lex_raw_or_byte_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
            }
            b'r' if cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`.
                cur.bump();
                cur.bump();
                let name = lex_ident_text(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    line,
                    col,
                });
            }
            b'\'' => {
                if lex_char_or_lifetime(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokenKind::Char,
                        line,
                        col,
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                        col,
                    });
                }
            }
            b':' if cur.peek_at(1) == Some(b':') => {
                cur.bump();
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::PathSep,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let name = lex_ident_text(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn lex_ident_text(cur: &mut Cursor<'_>) -> String {
    let mut name = Vec::new();
    while let Some(c) = cur.peek() {
        if !is_ident_continue(c) {
            break;
        }
        name.push(c);
        cur.bump();
    }
    String::from_utf8_lossy(&name).into_owned()
}

/// `"…"` with escape handling; the opening quote is still pending.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Whether the cursor sits on `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'`-like
/// raw/byte string openings (byte char literals are rare enough to lump in).
fn starts_raw_or_byte_string(cur: &Cursor<'_>) -> bool {
    let mut i = 0;
    if cur.peek() == Some(b'b') {
        i += 1;
    }
    if cur.peek_at(i) == Some(b'r') {
        i += 1;
        let mut j = i;
        while cur.peek_at(j) == Some(b'#') {
            j += 1;
        }
        return cur.peek_at(j) == Some(b'"');
    }
    // `b"…"` byte string (no `r`).
    cur.peek() == Some(b'b') && cur.peek_at(1) == Some(b'"')
}

fn lex_raw_or_byte_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
                    // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        loop {
            match cur.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    } else {
        // Plain byte string `b"…"`, escapes as in normal strings.
        lex_string(cur);
    }
}

/// Disambiguates `'x'` / `'\n'` (char literal, returns `true`) from `'a`
/// (lifetime, returns `false`). The opening quote is still pending.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> bool {
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then scan to closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == b'\'' {
                    break;
                }
            }
            true
        }
        Some(c) if is_ident_start(c) => {
            // `'a` (lifetime) or `'a'` (char). Look past the identifier.
            let mut j = 1;
            while cur.peek_at(j).is_some_and(is_ident_continue) {
                j += 1;
            }
            let is_char = cur.peek_at(j) == Some(b'\'');
            for _ in 0..j {
                cur.bump();
            }
            if is_char {
                cur.bump(); // closing quote
            }
            is_char
        }
        Some(_) => {
            // `'+'`-style single-char literal.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            true
        }
        None => true,
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Digits, underscores, type suffixes, hex/binary prefixes and exponents
    // in one gulp; a `.` is part of the number only when followed by a digit
    // (so `1..n` and `1.sum()` keep their dots as punctuation).
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            // `1e-5` / `1E+3`: pull the sign in with the exponent.
            let is_exp = (c == b'e' || c == b'E')
                && matches!(cur.peek_at(1), Some(b'+') | Some(b'-'))
                && cur.peek_at(2).is_some_and(|d| d.is_ascii_digit());
            cur.bump();
            if is_exp {
                cur.bump();
            }
        } else if c == b'.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            cur.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("// HashMap in prose\nlet x = 1; /* SystemTime */");
        assert!(idents("// HashMap in prose\nlet x = 1;")
            .iter()
            .all(|i| i != "HashMap"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "HashMap in prose");
        assert_eq!(lexed.comments[1].text, "SystemTime");
    }

    #[test]
    fn string_literals_are_opaque() {
        let names = idents(r##"let s = "HashMap"; let r = r#"thread_rng"#;"##);
        assert!(names.iter().all(|i| i != "HashMap" && i != "thread_rng"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let names = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(names.contains(&"str".to_string()));
        let kinds: Vec<_> = lex("&'a str").tokens.into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Lifetime));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lexed = lex("let c = 'x'; let s: &'static str = \"\";");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(chars, 1);
        assert_eq!(lifetimes, 1);
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("Instant::now()");
        let kinds: Vec<_> = lexed.tokens.iter().map(|t| &t.kind).collect();
        assert_eq!(
            kinds[..3],
            [
                &TokenKind::Ident("Instant".into()),
                &TokenKind::PathSep,
                &TokenKind::Ident("now".into())
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn numbers_keep_range_dots() {
        let lexed = lex("for i in 0..10 { let x = 1.5e-3f64; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` of the range survives as two dots");
        let numbers = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .count();
        assert_eq!(numbers, 3);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let x = r#\"one \"quoted\" HashSet\"#; done";
        let names = idents(src);
        assert!(names.contains(&"done".to_string()));
        assert!(!names.contains(&"HashSet".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ code");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].ident(), Some("code"));
    }
}
