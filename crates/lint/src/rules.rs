//! The determinism rule set (D1–D5) and the per-file checker.
//!
//! Every guarantee the workspace ships — serial == 4-shard, packed ==
//! masked-dense, sync/deadline/async diffed byte-equal in CI — is a
//! *determinism* contract. These rules make the contract statically
//! checkable: each one bans a construct that is known to break bit-identity
//! in a configuration the dynamic gates might not sample.
//!
//! | Rule | Bans | Why |
//! |------|------|-----|
//! | D1 | `HashMap`/`HashSet` (and friends) | iteration order is seeded per-process |
//! | D2 | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random`, `thread::spawn` | ambient nondeterminism |
//! | D3 | `rayon`/`par_iter`/`ThreadPoolBuilder` outside the backend seam | parallelism must stay confined |
//! | D4 | float `sum`/`fold`/`product` over unordered or parallel sources | reassociation invalidates packed-vs-dense proofs |
//! | D5 | `absorb_update{,_stale}` calls outside the absorption seam | absorption order is the bit-identity linchpin |
//!
//! Waivers: `// fedlps-lint: allow(D2, reason)` on the offending line or the
//! line(s) above it. The reason is mandatory (W1 flags reasonless waivers)
//! and waivers that match nothing are themselves findings (W2), so the
//! allow-list can never rot silently.

use crate::lexer::{Lexed, Token, TokenKind};

/// A rule identifier. `D*` are the determinism rules; `W*` police the
/// waiver mechanism itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    D1,
    D2,
    D3,
    D4,
    D5,
    /// A waiver without a reason.
    W1,
    /// A waiver that matched no finding (stale allow).
    W2,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::W1,
        RuleId::W2,
    ];

    /// The stable textual id used in reports and waivers.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::W1 => "W1",
            RuleId::W2 => "W2",
        }
    }

    /// Parses a textual rule id (as written in a waiver).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// One-line description, shown by `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "unordered-iteration collection (HashMap/HashSet): use BTreeMap/BTreeSet \
                 or a sorted Vec so iteration order is deterministic"
            }
            RuleId::D2 => {
                "ambient nondeterminism (Instant::now / SystemTime / thread_rng / \
                 rand::random / thread::spawn): thread time, wall time and ambient RNG \
                 break replayability; use the virtual clock and seeded streams"
            }
            RuleId::D3 => {
                "parallelism outside the backend seam: rayon/par_iter/ThreadPoolBuilder \
                 may appear only in crates/sim/src/backend.rs so every other layer stays \
                 provably serial-deterministic"
            }
            RuleId::D4 => {
                "float accumulation over an unordered or parallel source: reassociated \
                 sums are not bit-identical; accumulate over an ordered slice walk"
            }
            RuleId::D5 => {
                "absorption seam violation: absorb_update/absorb_update_stale may be \
                 driven only from crates/sim/src/{absorb,driver,topology}.rs \
                 (self-delegation inside an algorithm impl is fine)"
            }
            RuleId::W1 => "fedlps-lint waiver without a reason: the reason is mandatory",
            RuleId::W2 => "fedlps-lint waiver that matched no finding: remove the stale allow",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// Identifiers banned everywhere by D1. The exotic ones are future-proofing:
/// swapping the std hasher for a faster one does not make it ordered.
const D1_BANNED: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
    "IndexMap",
    "IndexSet",
];

/// Identifier *sequences* banned by D2 (matched across `::` / `.`).
const D2_BANNED_PATHS: &[&[&str]] = &[
    &["Instant", "now"],
    &["SystemTime", "now"],
    &["thread", "spawn"],
    &["rand", "random"],
];

/// Bare identifiers banned by D2 wherever they appear.
const D2_BANNED_IDENTS: &[&str] = &["thread_rng", "SystemTime", "ThreadRng"];

/// Identifiers banned by D3 outside the backend seam.
const D3_BANNED_IDENTS: &[&str] = &[
    "rayon",
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
    "ThreadPoolBuilder",
];

/// Files (path suffixes) where D3 parallelism is the whole point.
const D3_ALLOWED_FILES: &[&str] = &["crates/sim/src/backend.rs"];

/// Sources that make a float accumulation order-unstable (D4): parallel
/// iteration reassociates, hash iteration reorders. `BTreeMap::values()` is
/// an ordered walk and deliberately not listed.
const D4_UNORDERED_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "HashMap",
    "HashSet",
];

/// Files (path suffixes) allowed to *drive* absorption (D5). `topology.rs`
/// joined the seam when the barrier absorption walk moved there: the
/// topology layer owns where uploads meet the server, so it hosts the one
/// ascending-client-order loop cohort rounds absorb through, and the walk's
/// determinism obligations travelled with the code.
const D5_ALLOWED_FILES: &[&str] = &[
    "crates/sim/src/absorb.rs",
    "crates/sim/src/driver.rs",
    "crates/sim/src/topology.rs",
];

const D5_SEAM_METHODS: &[&str] = &["absorb_update", "absorb_update_stale"];

/// Static per-file allowlist: `(rule, path suffix)` pairs exempted without
/// an inline waiver. Deliberately empty — even `crates/bench` carries inline
/// waivers (with reasons) instead of a blanket exemption, so every escape
/// hatch is visible at the use site and audited by W1/W2. The mechanism
/// stays so a future, genuinely file-wide exemption has somewhere to live.
const FILE_ALLOWLIST: &[(RuleId, &str)] = &[];

fn path_matches(file: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| file.ends_with(s))
}

fn allowlisted(rule: RuleId, file: &str) -> bool {
    FILE_ALLOWLIST
        .iter()
        .any(|(r, suffix)| *r == rule && file.ends_with(suffix))
}

/// Runs every rule over one lexed file. `file` is the workspace-relative
/// path; waivers are applied later by the engine so the self-audit can also
/// count what was waived.
pub fn check_file(file: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &lexed.tokens;
    check_d1(file, tokens, &mut findings);
    check_d2(file, tokens, &mut findings);
    check_d3(file, tokens, &mut findings);
    check_d4(file, tokens, &mut findings);
    check_d5(file, tokens, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

fn push(findings: &mut Vec<Finding>, rule: RuleId, file: &str, tok: &Token, message: String) {
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    });
}

fn check_d1(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if allowlisted(RuleId::D1, file) {
        return;
    }
    for tok in tokens {
        if let Some(name) = tok.ident() {
            if D1_BANNED.contains(&name) {
                push(
                    findings,
                    RuleId::D1,
                    file,
                    tok,
                    format!(
                        "`{name}` iterates in hash order; use BTreeMap/BTreeSet or a sorted Vec"
                    ),
                );
            }
        }
    }
}

/// Matches `path` (a sequence of identifiers) against the token stream at
/// `i`, crossing `::` and `.` separators: `Instant::now`, `std::thread::
/// spawn` and `time.now` styles all reach the same sequence.
fn path_matches_at(tokens: &[Token], i: usize, path: &[&str]) -> bool {
    if tokens[i].ident() != Some(path[0]) {
        return false;
    }
    let mut j = i;
    for want in &path[1..] {
        // Step over exactly one separator then expect the next segment.
        let Some(sep) = tokens.get(j + 1) else {
            return false;
        };
        let is_sep = sep.kind == TokenKind::PathSep || sep.is_punct('.');
        if !is_sep || tokens.get(j + 2).and_then(Token::ident) != Some(want) {
            return false;
        }
        j += 2;
    }
    true
}

fn check_d2(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if allowlisted(RuleId::D2, file) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if D2_BANNED_IDENTS.contains(&name) {
            push(
                findings,
                RuleId::D2,
                file,
                tok,
                format!("`{name}` is ambient nondeterminism; use the virtual clock / seeded RNG streams"),
            );
            continue;
        }
        for path in D2_BANNED_PATHS {
            // Bare-ident hits above already reported `SystemTime`.
            if path_matches_at(tokens, i, path) && !D2_BANNED_IDENTS.contains(&path[0]) {
                push(
                    findings,
                    RuleId::D2,
                    file,
                    tok,
                    format!(
                        "`{}` is ambient nondeterminism; use the virtual clock / seeded RNG streams",
                        path.join("::")
                    ),
                );
            }
        }
    }
}

fn check_d3(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if path_matches(file, D3_ALLOWED_FILES) || allowlisted(RuleId::D3, file) {
        return;
    }
    for tok in tokens {
        if let Some(name) = tok.ident() {
            if D3_BANNED_IDENTS.contains(&name) {
                push(
                    findings,
                    RuleId::D3,
                    file,
                    tok,
                    format!(
                        "`{name}` outside the backend seam; parallelism lives only in crates/sim/src/backend.rs"
                    ),
                );
            }
        }
    }
}

fn check_d4(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if allowlisted(RuleId::D4, file) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        let is_accumulator = matches!(name, "sum" | "fold" | "product");
        // Only method-call position: `.sum`, `.fold(`, `.product` — a local
        // named `sum` is fine.
        if !is_accumulator || i == 0 || !tokens[i - 1].is_punct('.') {
            continue;
        }
        // `sum`/`product` are only order-sensitive for floats: when the
        // turbofish names an integer type the reassociation is exact.
        if matches!(name, "sum" | "product") && turbofish_is_integer(tokens, i) {
            continue;
        }
        // Walk back to the start of the statement; if the chain crosses an
        // unordered or parallel source, the accumulation order is unstable.
        let start = statement_start(tokens, i);
        if let Some(source) = tokens[start..i]
            .iter()
            .filter_map(Token::ident)
            .find(|id| D4_UNORDERED_SOURCES.contains(id))
        {
            push(
                findings,
                RuleId::D4,
                file,
                tok,
                format!(
                    "float `{name}` over `{source}`: accumulation order is not fixed, \
                     which breaks bit-identity; walk an ordered slice instead"
                ),
            );
        }
    }
}

/// Index of the first token of the statement containing `i` (best effort:
/// scans back to the nearest `;`, `{` or `}`).
fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    j
}

/// Whether `.sum::<uN/iN/usize>()` names an integer accumulator.
fn turbofish_is_integer(tokens: &[Token], i: usize) -> bool {
    let Some(sep) = tokens.get(i + 1) else {
        return false;
    };
    if sep.kind != TokenKind::PathSep || !tokens.get(i + 2).is_some_and(|t| t.is_punct('<')) {
        return false;
    }
    match tokens.get(i + 3).and_then(Token::ident) {
        Some(ty) => {
            matches!(
                ty,
                "u8" | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
            )
        }
        None => false,
    }
}

fn check_d5(file: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if path_matches(file, D5_ALLOWED_FILES) || allowlisted(RuleId::D5, file) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        let Some(name) = tok.ident() else { continue };
        if !D5_SEAM_METHODS.contains(&name) {
            continue;
        }
        // Only calls: the next token must open the argument list.
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Definitions (`fn absorb_update(…)`) are fine anywhere.
        if i > 0 && tokens[i - 1].ident() == Some("fn") {
            continue;
        }
        // Self-delegation (`self.absorb_update(…)`, `self.inner.absorb_update(…)`)
        // is an algorithm forwarding within its own impl — allowed. Any other
        // receiver is a foreign driver of the absorption seam.
        if i > 0 && tokens[i - 1].is_punct('.') && receiver_head_is_self(tokens, i - 1) {
            continue;
        }
        push(
            findings,
            RuleId::D5,
            file,
            tok,
            format!(
                "`{name}` driven outside the absorption seam; only \
                 crates/sim/src/{{absorb,driver,topology}}.rs may invoke it \
                 (self-delegation excepted)"
            ),
        );
    }
}

/// Walks a dotted receiver chain backwards from the `.` at `dot` and reports
/// whether its head identifier is `self`.
fn receiver_head_is_self(tokens: &[Token], dot: usize) -> bool {
    let mut j = dot; // tokens[j] is a '.'
    loop {
        // Expect an identifier before the dot.
        if j == 0 {
            return false;
        }
        let Some(name) = tokens[j - 1].ident() else {
            return false;
        };
        // Is there another link (`x.` or `x::`) before it?
        if j >= 2 {
            let prev = &tokens[j - 2];
            if prev.is_punct('.') {
                j -= 2;
                continue;
            }
        }
        return name == "self";
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_hit(src: &str) -> Vec<RuleId> {
        let mut ids: Vec<_> = check_file("crates/sim/src/x.rs", &lex(src))
            .into_iter()
            .map(|f| f.rule)
            .collect();
        ids.dedup();
        ids
    }

    #[test]
    fn d1_flags_hash_collections() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec![RuleId::D1]
        );
        assert_eq!(
            rules_hit("let s: HashSet<u32> = HashSet::new();"),
            vec![RuleId::D1]
        );
        assert!(rules_hit("let m = BTreeMap::new();").is_empty());
    }

    #[test]
    fn d2_flags_ambient_nondeterminism() {
        assert_eq!(rules_hit("let t = Instant::now();"), vec![RuleId::D2]);
        assert_eq!(
            rules_hit("let r = rand::random::<f64>();"),
            vec![RuleId::D2]
        );
        assert_eq!(rules_hit("let mut rng = thread_rng();"), vec![RuleId::D2]);
        assert_eq!(rules_hit("std::thread::spawn(|| {});"), vec![RuleId::D2]);
        assert!(rules_hit("let t = clock.now();").is_empty());
        assert!(
            rules_hit("tokio::spawn(fut);").is_empty(),
            "bare spawn is not banned"
        );
    }

    #[test]
    fn d3_confined_to_backend() {
        assert_eq!(rules_hit("use rayon::prelude::*;"), vec![RuleId::D3]);
        assert_eq!(
            rules_hit("v.into_par_iter().map(f).collect()"),
            vec![RuleId::D3]
        );
        let in_backend = check_file(
            "crates/sim/src/backend.rs",
            &lex("v.into_par_iter().map(f).collect()"),
        );
        assert!(in_backend.is_empty());
        // `BackendKind::ThreadPool` is an enum variant, not rayon.
        assert!(rules_hit("let k = BackendKind::ThreadPool;").is_empty());
    }

    #[test]
    fn d4_flags_unordered_float_accumulation() {
        assert_eq!(
            rules_hit("let s = v.into_par_iter().map(f).sum::<f32>();"),
            vec![RuleId::D3, RuleId::D4]
        );
        assert!(rules_hit("let s = v.iter().sum::<f32>();").is_empty());
        assert!(
            !rules_hit("let n = v.into_par_iter().map(f).sum::<u64>();").contains(&RuleId::D4),
            "integer sums are associative"
        );
        assert!(rules_hit("let prev = done; let s = v.iter().sum::<f64>();").is_empty());
    }

    #[test]
    fn d5_guards_the_absorption_seam() {
        assert_eq!(
            rules_hit("algorithm.absorb_update(env, round, update);"),
            vec![RuleId::D5]
        );
        // Self-delegation within an impl is fine, as is the defining `fn`.
        assert!(rules_hit("self.absorb_update(env, round, update);").is_empty());
        assert!(rules_hit("self.inner.absorb_update(env, round, update);").is_empty());
        assert!(rules_hit("fn absorb_update(&mut self) {}").is_empty());
        let in_driver = check_file(
            "crates/sim/src/driver.rs",
            &lex("algorithm.absorb_update(env, round, update);"),
        );
        assert!(in_driver.is_empty());
    }

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("D9"), None);
    }
}
