//! Property tests for the round planner: the event schedule is a
//! deterministic pure function of its inputs, and every dispatched client
//! resolves exactly once.

use fedlps_device::fleet::DynamicsConfig;
use fedlps_device::{CostModel, DeviceFleet, HeterogeneityLevel};
use fedlps_runtime::{DispatchSpec, RoundPlan};
use proptest::prelude::*;

/// Builds a realistic spec set from a sampled fleet: per-client FLOPs over
/// tier compute plus upload bytes over tier bandwidth (the Eq. (14) terms the
/// simulator feeds the planner), with deterministic offline churn.
fn specs_from(seed: u64, clients: usize, offline: bool) -> Vec<DispatchSpec> {
    let mut fleet = DeviceFleet::sample(clients, HeterogeneityLevel::High, seed);
    if offline {
        fleet = fleet.with_dynamics(
            DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            }
            .with_offline_prob(0.3),
        );
    }
    let cost = CostModel::new(1.0);
    (0..clients)
        .map(|k| {
            let profile = fleet.static_profile(k);
            let flops = 1.0e9 * ((seed % 13) + 1) as f64 * (k + 1) as f64;
            let upload = 1.0e5 * ((seed % 5) + 1) as f64;
            let lc = cost.local_cost(flops, upload, &profile);
            DispatchSpec {
                client: k,
                compute_seconds: lc.compute_seconds,
                upload_seconds: lc.comm_seconds,
                offline_frac: if offline {
                    fleet.offline_churn(k, seed)
                } else {
                    None
                },
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replaying a schedule produces an identical plan and event log — the
    /// planner reads no clocks, no RNG and no thread state.
    #[test]
    fn schedules_replay_identically(
        seed in 0u64..10_000,
        clients in 1usize..14,
        budget in 0.01f64..10.0,
    ) {
        let specs = specs_from(seed, clients, true);
        let a = RoundPlan::schedule(&specs, Some(budget));
        let b = RoundPlan::schedule(&specs, Some(budget));
        prop_assert_eq!(a.log.fingerprint(), b.log.fingerprint());
        prop_assert_eq!(a, b);
    }

    /// Conservation: each dispatched client either arrives or drops, never
    /// both, never neither; arrivals are time-ordered and inside the budget.
    #[test]
    fn every_dispatch_resolves_exactly_once(
        seed in 0u64..10_000,
        clients in 1usize..14,
        budget in 0.01f64..10.0,
    ) {
        let specs = specs_from(seed, clients, true);
        let plan = RoundPlan::schedule(&specs, Some(budget));
        prop_assert_eq!(plan.arrivals.len() + plan.drops.len(), specs.len());
        let mut resolved: Vec<usize> = plan
            .arrivals
            .iter()
            .map(|a| a.client)
            .chain(plan.drops.iter().map(|d| d.client))
            .collect();
        resolved.sort_unstable();
        let mut expected: Vec<usize> = specs.iter().map(|s| s.client).collect();
        expected.sort_unstable();
        prop_assert_eq!(resolved, expected);

        let mut prev = 0.0f64;
        for arrival in &plan.arrivals {
            prop_assert!(arrival.offset >= prev);
            prop_assert!(arrival.offset <= budget);
            prev = arrival.offset;
        }
        prop_assert!(plan.duration <= budget + 1e-12);
    }

    /// Synchronous plans (no deadline) are exactly Eq. (18): everyone
    /// arrives and the round costs the slowest client's total latency.
    #[test]
    fn synchronous_plans_wait_for_everyone(seed in 0u64..10_000, clients in 1usize..14) {
        let specs = specs_from(seed, clients, false);
        let plan = RoundPlan::schedule(&specs, None);
        prop_assert_eq!(plan.drops.len(), 0);
        prop_assert_eq!(plan.arrivals.len(), specs.len());
        let worst = specs
            .iter()
            .map(|s| s.total_seconds())
            .fold(0.0f64, f64::max);
        prop_assert_eq!(plan.duration, worst);
    }

    /// A roomy budget with churn disabled behaves exactly like the
    /// synchronous plan except that it is allowed to end early.
    #[test]
    fn roomy_deadlines_match_synchronous_outcomes(seed in 0u64..10_000, clients in 1usize..14) {
        let specs = specs_from(seed, clients, false);
        let sync = RoundPlan::schedule(&specs, None);
        let worst = sync.duration;
        let roomy = RoundPlan::schedule(&specs, Some(worst.max(1e-9) * 2.0));
        prop_assert_eq!(roomy.drops.len(), 0);
        prop_assert_eq!(&roomy.arrivals, &sync.arrivals);
        prop_assert_eq!(roomy.duration, sync.duration);
    }
}
