//! Cross-crate determinism contract: for any seed, the event-driven modes
//! yield bit-identical `RunResult`s at every `parallelism` setting.
//!
//! This file dev-depends on `fedlps_sim` / `fedlps_core` (cargo permits the
//! dev-cycle) so the property is pinned where the scheduling substrate lives:
//! if an event ever ordered by thread schedule instead of virtual time, these
//! replays would diverge.

use fedlps_core::FedLps;
use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
use fedlps_device::HeterogeneityLevel;
use fedlps_sim::config::{
    AvailabilityModel, FaultConfig, FlConfig, RoundMode, SelectionKind, Topology,
};
use fedlps_sim::env::FlEnv;
use fedlps_sim::metrics::RunResult;
use fedlps_sim::runner::Simulator;
use proptest::prelude::*;

fn run_selected(
    seed: u64,
    mode: RoundMode,
    selection: SelectionKind,
    parallelism: usize,
) -> RunResult {
    let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike);
    let config = FlConfig {
        rounds: 3,
        clients_per_round: 3,
        local_iterations: 2,
        batch_size: 8,
        eval_every: 3,
        ..FlConfig::default()
    }
    .with_seed(seed)
    .with_parallelism(parallelism)
    .with_round_mode(mode)
    .with_selection(selection);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn run(seed: u64, mode: RoundMode, parallelism: usize) -> RunResult {
    run_selected(seed, mode, SelectionKind::Uniform, parallelism)
}

proptest! {
    // Each case trains up to three full (tiny) federations, so the case
    // count is pinned — deliberately NOT scaled by the nightly
    // PROPTEST_CASES crank, which would turn this file into an hour of
    // training. The cheap schedule-level properties in
    // `proptest_schedule.rs` take the crank instead.
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Async absorption at parallelism 1 vs 4 is bit-identical: the event
    /// queue, not the thread pool, orders every absorb.
    #[test]
    fn async_runs_are_bit_identical_across_parallelism(seed in 0u64..100_000) {
        let mode = RoundMode::asynchronous(3, 0.6);
        let serial = run(seed, mode, 1);
        let sharded = run(seed, mode, 4);
        prop_assert_eq!(serial, sharded);
    }

    /// Deadline rounds (budget sized from a synchronous probe so it bites on
    /// some fleets and not others) are equally schedule-independent.
    #[test]
    fn deadline_runs_are_bit_identical_across_parallelism(seed in 0u64..100_000) {
        let probe = run(seed, RoundMode::Synchronous, 1);
        let worst = probe.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
        let mode = RoundMode::deadline(worst * 0.6, 2);
        let serial = run(seed, mode, 1);
        let sharded = run(seed, mode, 4);
        prop_assert_eq!(serial, sharded);
    }

    /// Fault schedules are part of the determinism contract too: correlated
    /// availability (diurnal waves, zone-correlated bursts), transient
    /// upload retries and the quorum early-close must all replay through the
    /// event queue — for any seed, in every round mode and both topologies,
    /// a faulted run is bit-identical at parallelism 1 vs 4.
    #[test]
    fn fault_schedules_are_bit_identical_across_parallelism(seed in 0u64..100_000) {
        let faults = FaultConfig {
            upload_failure_prob: 0.3,
            max_retries: 2,
            ..FaultConfig::default()
        };
        for availability in [
            AvailabilityModel::from_name("diurnal").unwrap(),
            AvailabilityModel::from_name("burst").unwrap(),
        ] {
            for mode in [
                RoundMode::Synchronous,
                RoundMode::deadline(0.5, 2),
                RoundMode::asynchronous(3, 0.6),
            ] {
                for topology in [Topology::Flat, Topology::two_tier()] {
                    let go = |parallelism| {
                        let scenario = ScenarioConfig::tiny(DatasetKind::MnistLike);
                        let config = FlConfig {
                            rounds: 3,
                            clients_per_round: 3,
                            local_iterations: 2,
                            batch_size: 8,
                            eval_every: 3,
                            ..FlConfig::default()
                        }
                        .with_seed(seed)
                        .with_parallelism(parallelism)
                        .with_round_mode(mode)
                        .with_topology(topology)
                        .with_availability(availability)
                        .with_faults(faults)
                        .with_quorum(0.85);
                        let env =
                            FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, config);
                        let sim = Simulator::new(env);
                        let mut algo = FedLps::for_env(sim.env());
                        sim.run(&mut algo)
                    };
                    prop_assert_eq!(
                        go(1),
                        go(4),
                        "{}/{}/{} fault schedule must be schedule-independent",
                        mode.name(),
                        topology.name(),
                        availability.name()
                    );
                }
            }
        }
    }

    /// Every selection policy is a pure function of `(tracker, rng)`: for any
    /// seed, in every round mode, a run is reproducible and bit-identical at
    /// parallelism 1 vs 4 (cohorts, deadline over-selection and async
    /// refills all route through the policy, so this covers every
    /// `select_*` entry point).
    #[test]
    fn selection_policies_are_bit_identical_across_parallelism(seed in 0u64..100_000) {
        for selection in [SelectionKind::utility(), SelectionKind::power_of_choice()] {
            for mode in [
                RoundMode::Synchronous,
                RoundMode::deadline(0.5, 2),
                RoundMode::asynchronous(3, 0.6),
            ] {
                let serial = run_selected(seed, mode, selection, 1);
                prop_assert_eq!(
                    &serial,
                    &run_selected(seed, mode, selection, 1),
                    "{}/{} must be deterministic for a seed",
                    mode.name(),
                    selection.name()
                );
                prop_assert_eq!(
                    &serial,
                    &run_selected(seed, mode, selection, 4),
                    "{}/{} must be schedule-independent",
                    mode.name(),
                    selection.name()
                );
            }
        }
    }
}
