//! The event queue and the replayable event log.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// A deterministic min-heap of [`Event`]s.
///
/// Insertion assigns each event a monotone sequence number, so even two
/// events that agree on `(time, kind, client)` pop in insertion order. The
/// queue rejects non-finite times: a NaN timestamp would silently poison the
/// ordering.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event and returns it (with its assigned `seq`).
    pub fn push(&mut self, time: f64, client: usize, kind: EventKind) -> Event {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let event = Event {
            time,
            client,
            kind,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(event));
        event
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The ordered record of every event a scheduler processed.
///
/// Two runs of the same configuration must produce `==` logs; the runtime's
/// property tests replay schedules and compare logs (and their
/// [`fingerprint`](Self::fingerprint)s) to pin that contract.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a processed event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The recorded events in processing order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// An order- and bit-pattern-sensitive digest (FNV-1a over the event
    /// fields, times hashed by their IEEE-754 bits). Equal logs have equal
    /// fingerprints; schedule divergence flips it with high probability.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in &self.events {
            mix(e.time.to_bits());
            mix(e.client as u64);
            mix(e.kind as u64);
            mix(e.seq);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_stable_ties() {
        let mut q = EventQueue::new();
        q.push(2.0, 1, EventKind::UploadFinish);
        q.push(1.0, 5, EventKind::Dispatch);
        q.push(2.0, 1, EventKind::UploadFinish); // exact duplicate, later seq
        q.push(2.0, 0, EventKind::Dispatch); // dispatch ranks after arrivals

        let order: Vec<(f64, usize, EventKind, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.client, e.kind, e.seq))
            .collect();
        assert_eq!(order[0], (1.0, 5, EventKind::Dispatch, 1));
        assert_eq!(order[1], (2.0, 1, EventKind::UploadFinish, 0));
        assert_eq!(order[2], (2.0, 1, EventKind::UploadFinish, 2));
        assert_eq!(order[3], (2.0, 0, EventKind::Dispatch, 3));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, 0, EventKind::Dispatch);
    }

    #[test]
    fn log_equality_and_fingerprint_track_content() {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        let mut q = EventQueue::new();
        q.push(1.0, 0, EventKind::Dispatch);
        q.push(1.5, 0, EventKind::UploadFinish);
        while let Some(e) = q.pop() {
            a.record(e);
            b.record(e);
        }
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());

        b.record(Event {
            time: 2.0,
            client: 1,
            kind: EventKind::Offline,
            seq: 9,
        });
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn log_serde_roundtrip() {
        let mut log = EventLog::new();
        log.record(Event {
            time: 0.25,
            client: 3,
            kind: EventKind::ComputeFinish,
            seq: 0,
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
