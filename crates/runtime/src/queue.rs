//! The event queue and the replayable event log.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};

/// A deterministic min-heap of [`Event`]s.
///
/// Insertion assigns each event a monotone sequence number, so even two
/// events that agree on `(time, kind, client)` pop in insertion order. The
/// queue rejects non-finite times: a NaN timestamp would silently poison the
/// ordering.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event and returns it (with its assigned `seq`).
    pub fn push(&mut self, time: f64, client: usize, kind: EventKind) -> Event {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let event = Event {
            time,
            client,
            kind,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(event));
        event
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// The earliest event without removing it.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|Reverse(e)| e)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The ordered record of every event a scheduler processed.
///
/// Two runs of the same configuration must produce `==` logs; the runtime's
/// property tests replay schedules and compare logs (and their
/// [`fingerprint`](Self::fingerprint)s) to pin that contract.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a processed event.
    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    /// The recorded events in processing order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the log as a human-readable table, one processed event per
    /// line: `time  kind  client  seq`. Round-scoped events (deadlines)
    /// print `-` in the client column. Every [`EventKind`] renders by its
    /// [`name`](EventKind::name), including the fault-injection kinds
    /// (`upload-retry`).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 48 + 48);
        out.push_str(&format!(
            "{:>12}  {:<15} {:>8} {:>6}\n",
            "time", "kind", "client", "seq"
        ));
        for e in &self.events {
            let client = if e.client == Event::ROUND_SCOPE {
                "-".to_string()
            } else {
                e.client.to_string()
            };
            out.push_str(&format!(
                "{:>12.6}  {:<15} {:>8} {:>6}\n",
                e.time,
                e.kind.name(),
                client,
                e.seq
            ));
        }
        out
    }

    /// An order- and bit-pattern-sensitive digest (FNV-1a over the event
    /// fields, times hashed by their IEEE-754 bits). Equal logs have equal
    /// fingerprints; schedule divergence flips it with high probability.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in &self.events {
            mix(e.time.to_bits());
            mix(e.client as u64);
            mix(e.kind as u64);
            mix(e.seq);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_stable_ties() {
        let mut q = EventQueue::new();
        q.push(2.0, 1, EventKind::UploadFinish);
        q.push(1.0, 5, EventKind::Dispatch);
        q.push(2.0, 1, EventKind::UploadFinish); // exact duplicate, later seq
        q.push(2.0, 0, EventKind::Dispatch); // dispatch ranks after arrivals

        let order: Vec<(f64, usize, EventKind, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.client, e.kind, e.seq))
            .collect();
        assert_eq!(order[0], (1.0, 5, EventKind::Dispatch, 1));
        assert_eq!(order[1], (2.0, 1, EventKind::UploadFinish, 0));
        assert_eq!(order[2], (2.0, 1, EventKind::UploadFinish, 2));
        assert_eq!(order[3], (2.0, 0, EventKind::Dispatch, 3));
        assert!(q.is_empty());
    }

    #[test]
    fn upload_retry_total_order_is_pinned_in_the_queue() {
        // Pin the full tie-break rank chain at one instant, with the new
        // fault kind in place: arrivals, then failed-attempt retries, then
        // churn, then the zone and round deadlines, then dispatches —
        // regardless of insertion order.
        let mut q = EventQueue::new();
        q.push(1.0, 0, EventKind::Dispatch);
        q.push(1.0, Event::ROUND_SCOPE, EventKind::RoundDeadline);
        q.push(1.0, 3, EventKind::Offline);
        q.push(1.0, 2, EventKind::UploadRetry);
        q.push(1.0, 1, EventKind::ZoneDeadline);
        q.push(1.0, 4, EventKind::UploadFinish);

        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::UploadFinish,
                EventKind::UploadRetry,
                EventKind::Offline,
                EventKind::ZoneDeadline,
                EventKind::RoundDeadline,
                EventKind::Dispatch,
            ]
        );
    }

    #[test]
    fn render_names_every_event_kind() {
        let mut log = EventLog::new();
        let mut q = EventQueue::new();
        q.push(0.5, 7, EventKind::UploadFinish);
        q.push(0.5, 7, EventKind::UploadRetry);
        q.push(0.75, Event::ROUND_SCOPE, EventKind::RoundDeadline);
        while let Some(e) = q.pop() {
            log.record(e);
        }
        let table = log.render();
        assert!(table.contains("upload-finish"));
        assert!(table.contains("upload-retry"));
        assert!(table.contains("round-deadline"));
        // Round-scoped events render `-` instead of a client id.
        let deadline_line = table
            .lines()
            .find(|l| l.contains("round-deadline"))
            .unwrap();
        assert!(deadline_line.contains(" - "));
        // One header plus one line per event.
        assert_eq!(table.lines().count(), 1 + log.len());
    }

    #[test]
    #[should_panic]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, 0, EventKind::Dispatch);
    }

    #[test]
    fn log_equality_and_fingerprint_track_content() {
        let mut a = EventLog::new();
        let mut b = EventLog::new();
        let mut q = EventQueue::new();
        q.push(1.0, 0, EventKind::Dispatch);
        q.push(1.5, 0, EventKind::UploadFinish);
        while let Some(e) = q.pop() {
            a.record(e);
            b.record(e);
        }
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());

        b.record(Event {
            time: 2.0,
            client: 1,
            kind: EventKind::Offline,
            seq: 9,
        });
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn log_serde_roundtrip() {
        let mut log = EventLog::new();
        log.record(Event {
            time: 0.25,
            client: 3,
            kind: EventKind::ComputeFinish,
            seq: 0,
        });
        let json = serde_json::to_string(&log).unwrap();
        let back: EventLog = serde_json::from_str(&json).unwrap();
        assert_eq!(log, back);
    }
}
