//! The pure per-round planner for cohort-shaped rounds.
//!
//! Given each dispatched client's latency breakdown (compute seconds + upload
//! seconds, both derived from the Eq. (14) cost model) and an optional round
//! deadline, [`RoundPlan::schedule`] computes — with no RNG, no clock reads
//! and no thread-schedule dependence — when each update arrives, which
//! clients drop (straggling past the deadline or churning offline mid-round)
//! and how long the round takes. The async pipeline uses the same [`Event`]
//! ordering but schedules incrementally through an
//! [`EventQueue`] because its dispatch times depend
//! on earlier arrivals.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};
use crate::queue::{EventLog, EventQueue};

/// One dispatched client's latency facts, all in seconds relative to the
/// round start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispatchSpec {
    /// The client being dispatched.
    pub client: usize,
    /// Local compute time `F̂_k / F_k`.
    pub compute_seconds: f64,
    /// Upload time `α · B̂_k / B_k`.
    pub upload_seconds: f64,
    /// If the device churns offline this round, the fraction of its own
    /// latency it completes before disconnecting (from
    /// `fedlps_device::DeviceFleet::offline_churn`).
    pub offline_frac: Option<f64>,
}

impl DispatchSpec {
    /// Total latency from dispatch to the update landing at the server.
    pub fn total_seconds(&self) -> f64 {
        self.compute_seconds + self.upload_seconds
    }
}

/// Why a dispatched client's update never got absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Still computing or uploading when the round deadline fired.
    Straggler,
    /// The device went offline mid-round.
    Offline,
}

/// An update landing at the server, `offset` seconds after the round start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    pub client: usize,
    pub offset: f64,
}

/// A dispatched client whose update was lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DroppedClient {
    pub client: usize,
    pub offset: f64,
    pub reason: DropReason,
}

/// The fully resolved schedule of one cohort round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPlan {
    /// Updates that reached the server before the deadline, in arrival order
    /// (ties broken by client id). Note the cohort runner still *absorbs*
    /// the survivors in ascending client-id order at the round barrier —
    /// arrival order decides only who makes the cut.
    pub arrivals: Vec<Arrival>,
    /// Clients whose updates were lost, in drop order.
    pub drops: Vec<DroppedClient>,
    /// Round duration in virtual seconds: the last arrival for a full house,
    /// the deadline as soon as anyone is outstanding (the server cannot
    /// distinguish a straggler from a dead device and must wait it out).
    pub duration: f64,
    /// Every event the scheduler processed, in processing order.
    pub log: EventLog,
}

impl RoundPlan {
    /// Plans a cohort round. `deadline` is `None` for synchronous rounds
    /// (the server waits for everyone) and `Some(budget)` for deadline
    /// rounds.
    ///
    /// Synchronous rounds ignore offline churn by construction — a
    /// synchronous server waits until the device comes back and re-uploads,
    /// which is exactly the legacy Eq. (18) behaviour — so passing
    /// `offline_frac` with no deadline is rejected rather than silently
    /// hanging the round.
    pub fn schedule(specs: &[DispatchSpec], deadline: Option<f64>) -> RoundPlan {
        if let Some(budget) = deadline {
            assert!(
                budget.is_finite() && budget > 0.0,
                "round budget must be positive, got {budget}"
            );
        }

        let mut queue = EventQueue::new();
        for spec in specs {
            assert!(
                spec.compute_seconds >= 0.0 && spec.upload_seconds >= 0.0,
                "client {} has negative latency",
                spec.client
            );
            queue.push(0.0, spec.client, EventKind::Dispatch);
            let total = spec.total_seconds();
            match spec.offline_frac {
                Some(frac) => {
                    assert!(
                        deadline.is_some(),
                        "offline churn requires a deadline round (synchronous servers wait)"
                    );
                    assert!(
                        (0.0..1.0).contains(&frac),
                        "offline fraction must be in [0, 1), got {frac}"
                    );
                    let off = frac * total;
                    if off > spec.compute_seconds {
                        // The device finished computing before dying.
                        queue.push(spec.compute_seconds, spec.client, EventKind::ComputeFinish);
                    }
                    queue.push(off, spec.client, EventKind::Offline);
                }
                None => {
                    queue.push(spec.compute_seconds, spec.client, EventKind::ComputeFinish);
                    queue.push(total, spec.client, EventKind::UploadFinish);
                }
            }
        }
        if let Some(budget) = deadline {
            queue.push(budget, Event::ROUND_SCOPE, EventKind::RoundDeadline);
        }

        let mut log = EventLog::new();
        let mut arrivals = Vec::new();
        let mut drops = Vec::new();
        let mut duration = 0.0f64;
        let mut deadline_fired = false;
        while let Some(event) = queue.pop() {
            if deadline_fired {
                // Post-deadline events never fire: the server moved on.
                match event.kind {
                    EventKind::UploadFinish => drops.push(DroppedClient {
                        client: event.client,
                        offset: deadline.unwrap(),
                        reason: DropReason::Straggler,
                    }),
                    EventKind::Offline => drops.push(DroppedClient {
                        client: event.client,
                        offset: deadline.unwrap(),
                        reason: DropReason::Straggler,
                    }),
                    _ => {}
                }
                continue;
            }
            log.record(event);
            match event.kind {
                // The pure planner models a flat, zone-free, fault-free
                // round; the driver's topology layer owns zone deadlines and
                // its fault layer owns upload retries.
                EventKind::Dispatch
                | EventKind::ComputeFinish
                | EventKind::ZoneDeadline
                | EventKind::UploadRetry => {}
                EventKind::UploadFinish => {
                    arrivals.push(Arrival {
                        client: event.client,
                        offset: event.time,
                    });
                    duration = duration.max(event.time);
                }
                EventKind::Offline => {
                    drops.push(DroppedClient {
                        client: event.client,
                        offset: event.time,
                        reason: DropReason::Offline,
                    });
                }
                EventKind::RoundDeadline => {
                    deadline_fired = true;
                    // The server waits the full budget iff anyone is missing.
                    if arrivals.len() + drops.len() < specs.len() || !drops.is_empty() {
                        duration = event.time;
                    }
                }
            }
        }
        // A deadline round with every update in early still ends at the last
        // arrival (handled above); an empty cohort takes no time at all.
        RoundPlan {
            arrivals,
            drops,
            duration,
            log,
        }
    }

    /// The clients that arrived, in absorb order.
    pub fn arrived_clients(&self) -> Vec<usize> {
        self.arrivals.iter().map(|a| a.client).collect()
    }

    /// Number of dropped clients.
    pub fn dropped(&self) -> usize {
        self.drops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(client: usize, compute: f64, upload: f64) -> DispatchSpec {
        DispatchSpec {
            client,
            compute_seconds: compute,
            upload_seconds: upload,
            offline_frac: None,
        }
    }

    #[test]
    fn synchronous_round_waits_for_the_straggler() {
        let plan = RoundPlan::schedule(
            &[spec(0, 1.0, 0.5), spec(1, 4.0, 1.0), spec(2, 0.2, 0.1)],
            None,
        );
        assert_eq!(plan.arrived_clients(), vec![2, 0, 1]);
        assert_eq!(plan.dropped(), 0);
        assert_eq!(plan.duration, 5.0); // Eq. 18: the slowest client
        assert!(!plan.log.is_empty());
    }

    #[test]
    fn deadline_drops_stragglers_and_ends_at_the_budget() {
        let plan = RoundPlan::schedule(
            &[spec(0, 1.0, 0.5), spec(1, 4.0, 1.0), spec(2, 0.2, 0.1)],
            Some(2.0),
        );
        assert_eq!(plan.arrived_clients(), vec![2, 0]);
        assert_eq!(plan.drops.len(), 1);
        assert_eq!(plan.drops[0].client, 1);
        assert_eq!(plan.drops[0].reason, DropReason::Straggler);
        assert_eq!(plan.duration, 2.0);
    }

    #[test]
    fn deadline_round_with_a_full_house_ends_early() {
        let plan = RoundPlan::schedule(&[spec(0, 1.0, 0.5), spec(1, 0.5, 0.2)], Some(10.0));
        assert_eq!(plan.dropped(), 0);
        assert_eq!(plan.duration, 1.5);
    }

    #[test]
    fn offline_clients_drop_at_their_churn_time() {
        let mut s = spec(0, 2.0, 1.0);
        s.offline_frac = Some(0.5);
        let plan = RoundPlan::schedule(&[s, spec(1, 0.5, 0.1)], Some(4.0));
        assert_eq!(plan.arrived_clients(), vec![1]);
        assert_eq!(plan.drops.len(), 1);
        assert_eq!(plan.drops[0].reason, DropReason::Offline);
        assert!((plan.drops[0].offset - 1.5).abs() < 1e-12);
        // The server cannot observe the disconnect: it waits the budget out.
        assert_eq!(plan.duration, 4.0);
    }

    #[test]
    #[should_panic]
    fn offline_churn_requires_a_deadline() {
        let mut s = spec(0, 1.0, 1.0);
        s.offline_frac = Some(0.3);
        RoundPlan::schedule(&[s], None);
    }

    #[test]
    fn arrival_ties_break_by_client_id() {
        let plan = RoundPlan::schedule(&[spec(3, 1.0, 0.0), spec(1, 1.0, 0.0)], None);
        assert_eq!(plan.arrived_clients(), vec![1, 3]);
    }

    #[test]
    fn empty_cohort_is_instant() {
        let plan = RoundPlan::schedule(&[], Some(5.0));
        assert!(plan.arrivals.is_empty());
        assert_eq!(plan.duration, 0.0);
    }

    #[test]
    fn replay_produces_identical_logs() {
        let specs = [spec(0, 1.0, 0.25), spec(1, 3.0, 0.5), spec(2, 0.4, 0.2)];
        let a = RoundPlan::schedule(&specs, Some(2.0));
        let b = RoundPlan::schedule(&specs, Some(2.0));
        assert_eq!(a, b);
        assert_eq!(a.log.fingerprint(), b.log.fingerprint());
    }
}
