//! Event-driven federation runtime.
//!
//! The synchronous round loop of Algorithm 1 hides the very thing FedLPS is
//! about: system heterogeneity makes stragglers dominate wall-clock round
//! time. This crate supplies the scheduling substrate that lets the simulator
//! *execute* the paper's cost model instead of merely reporting it:
//!
//! * [`clock`] — a monotone virtual clock measured in simulated seconds;
//! * [`event`] — timestamped events (`dispatch`, `compute-finish`,
//!   `upload-finish`, `offline`, `round-deadline`) with a *total* and
//!   schedule-independent ordering;
//! * [`queue`] — a binary-heap event queue plus an [`EventLog`]
//!   used to assert that schedules replay identically;
//! * [`mode`] — the [`RoundMode`] selector stored in the
//!   simulator's `FlConfig`: synchronous rounds, deadline rounds with
//!   over-selection, or staleness-aware asynchronous absorption;
//! * [`schedule`] — the pure per-round planner mapping client latencies
//!   (FLOPs ÷ tier compute + upload bytes ÷ tier bandwidth, i.e. the Eq. (14)
//!   terms) onto arrival/drop times under a round deadline.
//!
//! Everything here is a pure function of its inputs: no wall-clock reads, no
//! thread-schedule dependence, no hidden RNG. That is what lets the simulator
//! promise bit-identical `RunResult`s at any `parallelism` setting in every
//! round mode.

pub mod clock;
pub mod event;
pub mod mode;
pub mod queue;
pub mod schedule;

pub use clock::VirtualClock;
pub use event::{Event, EventKind};
pub use mode::RoundMode;
pub use queue::{EventLog, EventQueue};
pub use schedule::{Arrival, DispatchSpec, DropReason, DroppedClient, RoundPlan};
