//! Round execution semantics.

use serde::{Deserialize, Serialize};

/// How the server turns selected clients into absorbed updates — the
/// execution semantics of one communication round.
///
/// All three modes run over the same virtual clock and the same latency
/// model: a client's compute time is its round FLOPs divided by its tier's
/// FLOPs/s and its upload time is its uploaded bytes over its tier's
/// bandwidth (Eq. 14), so a sparser submodel directly shortens the client's
/// critical path.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RoundMode {
    /// The paper's Algorithm 1: the server waits for every selected client;
    /// the round costs as much as its slowest straggler (Eq. 18).
    #[default]
    Synchronous,
    /// Deadline rounds: the server over-selects `over_select` extra clients,
    /// absorbs whatever lands within `budget` virtual seconds of the round
    /// start and drops the stragglers (their work is spent but never
    /// aggregated).
    Deadline {
        /// Round budget in virtual seconds.
        budget: f64,
        /// Extra clients selected beyond `clients_per_round` to compensate
        /// for the expected drops.
        over_select: usize,
    },
    /// Staleness-aware asynchrony: the server keeps `clients_per_round`
    /// clients in flight, absorbs updates the moment they arrive with weight
    /// `alpha^staleness` (staleness = server aggregations since the update's
    /// model was dispatched), discards updates staler than `max_staleness`,
    /// and aggregates every `clients_per_round` absorbed updates.
    Async {
        /// Updates staler than this are discarded (bounded staleness).
        max_staleness: u32,
        /// Per-aggregation staleness discount base in `(0, 1]`.
        alpha: f64,
    },
}

impl RoundMode {
    /// A deadline mode with the given budget (virtual seconds) and
    /// over-selection.
    pub fn deadline(budget: f64, over_select: usize) -> Self {
        assert!(
            budget.is_finite() && budget > 0.0,
            "deadline budget must be a positive number of virtual seconds"
        );
        RoundMode::Deadline {
            budget,
            over_select,
        }
    }

    /// An async mode with bounded staleness `max_staleness` and discount base
    /// `alpha`.
    pub fn asynchronous(max_staleness: u32, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "staleness discount base must be in (0, 1], got {alpha}"
        );
        RoundMode::Async {
            max_staleness,
            alpha,
        }
    }

    /// Short name used in tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            RoundMode::Synchronous => "sync",
            RoundMode::Deadline { .. } => "deadline",
            RoundMode::Async { .. } => "async",
        }
    }

    /// Whether rounds are cohort-shaped (synchronous / deadline) as opposed
    /// to the continuous async pipeline.
    pub fn is_cohort(&self) -> bool {
        !matches!(self, RoundMode::Async { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_synchronous() {
        assert_eq!(RoundMode::default(), RoundMode::Synchronous);
        assert!(RoundMode::default().is_cohort());
        assert_eq!(RoundMode::default().name(), "sync");
    }

    #[test]
    fn constructors_validate_and_name() {
        let d = RoundMode::deadline(2.5, 3);
        assert_eq!(d.name(), "deadline");
        assert!(d.is_cohort());
        let a = RoundMode::asynchronous(4, 0.5);
        assert_eq!(a.name(), "async");
        assert!(!a.is_cohort());
    }

    #[test]
    #[should_panic]
    fn zero_budget_rejected() {
        RoundMode::deadline(0.0, 1);
    }

    #[test]
    #[should_panic]
    fn alpha_above_one_rejected() {
        RoundMode::asynchronous(2, 1.5);
    }

    #[test]
    fn serde_roundtrip_all_variants() {
        for mode in [
            RoundMode::Synchronous,
            RoundMode::deadline(1.5, 2),
            RoundMode::asynchronous(3, 0.7),
        ] {
            let json = serde_json::to_string(&mode).unwrap();
            let back: RoundMode = serde_json::from_str(&json).unwrap();
            assert_eq!(mode, back);
        }
    }
}
