//! The virtual clock: simulated seconds since the start of the federation.

/// A monotone clock measured in simulated seconds.
///
/// The runtime never reads wall-clock time; every timestamp is derived from
/// the analytic cost model, so two runs of the same configuration see the
/// exact same sequence of instants (bit-for-bit — times are plain `f64`s
/// produced by the same arithmetic in the same order).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock to `t`. Panics on attempts to move backwards —
    /// an event popped out of order is a scheduler bug, never recoverable
    /// data.
    pub fn advance_to(&mut self, t: f64) {
        assert!(
            t >= self.now,
            "virtual clock cannot run backwards ({} -> {t})",
            self.now
        );
        self.now = t;
    }

    /// Advances the clock by a non-negative duration and returns the new time.
    pub fn advance_by(&mut self, seconds: f64) -> f64 {
        assert!(seconds >= 0.0, "negative duration {seconds}");
        self.now += seconds;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), 0.0);
        clock.advance_to(1.5);
        assert_eq!(clock.now(), 1.5);
        assert_eq!(clock.advance_by(0.5), 2.0);
        clock.advance_to(2.0); // equal time is fine
    }

    #[test]
    #[should_panic]
    fn rejects_time_travel() {
        let mut clock = VirtualClock::new();
        clock.advance_to(3.0);
        clock.advance_to(2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_durations() {
        VirtualClock::new().advance_by(-1.0);
    }
}
