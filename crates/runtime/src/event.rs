//! Timestamped scheduler events with a total, schedule-independent order.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// What happened at an instant of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A client finished its local compute (the `F̂/F` term of Eq. 14).
    ComputeFinish,
    /// A client's upload landed at the server (the `α·B̂/B` term): in every
    /// mode this is the instant the update becomes absorbable.
    UploadFinish,
    /// A transient upload fault: the attempt that would have landed at this
    /// instant failed on the wire. The driver either schedules a
    /// retransmission after an exponential backoff or, once the retry cap is
    /// exhausted, drops the update permanently.
    UploadRetry,
    /// The device went offline mid-round (availability churn); its update is
    /// lost.
    Offline,
    /// A zone aggregator's per-zone deadline fired (two-tier topology);
    /// the zone's outstanding clients are dropped at the zone.
    ZoneDeadline,
    /// The round's deadline fired; outstanding clients are dropped.
    RoundDeadline,
    /// The server hands a client the current global model and it starts
    /// computing. Ordered *after* the other kinds at an equal timestamp so a
    /// dispatch triggered by an arrival at time `t` runs against the state
    /// all time-`t` absorptions produced.
    Dispatch,
}

impl EventKind {
    /// Tie-break rank at equal timestamps (see [`Event`]'s ordering).
    fn rank(&self) -> u8 {
        match self {
            EventKind::ComputeFinish => 0,
            EventKind::UploadFinish => 1,
            // A failed attempt resolves right after successful arrivals at
            // the same instant, and *before* churn/deadline bookkeeping: the
            // retransmission must be scheduled against the pre-deadline
            // round state it raced.
            EventKind::UploadRetry => 2,
            EventKind::Offline => 3,
            // Zone deadlines close *before* the round deadline at an equal
            // timestamp: the edge tier resolves ahead of the server tier.
            EventKind::ZoneDeadline => 4,
            EventKind::RoundDeadline => 5,
            EventKind::Dispatch => 6,
        }
    }

    /// Short name used in logs.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ComputeFinish => "compute-finish",
            EventKind::UploadFinish => "upload-finish",
            EventKind::UploadRetry => "upload-retry",
            EventKind::Offline => "offline",
            EventKind::ZoneDeadline => "zone-deadline",
            EventKind::RoundDeadline => "round-deadline",
            EventKind::Dispatch => "dispatch",
        }
    }
}

/// One scheduled occurrence: `(virtual_time, client, kind)` plus the insertion
/// sequence number the queue assigned.
///
/// Events are *totally* ordered by `(time, kind rank, client, seq)` using
/// [`f64::total_cmp`], so a heap of events pops in the same order on every
/// machine and at every thread count — the root determinism guarantee of the
/// runtime. Times must be finite (the queue asserts it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual time of the occurrence, in simulated seconds.
    pub time: f64,
    /// The client the event concerns (`usize::MAX` for round-level events
    /// such as the deadline).
    pub client: usize,
    /// What occurred.
    pub kind: EventKind,
    /// Queue insertion number, the final tie-breaker.
    pub seq: u64,
}

impl Event {
    /// A round-level event not tied to a client.
    pub const ROUND_SCOPE: usize = usize::MAX;
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.kind.rank().cmp(&other.kind.rank()))
            .then_with(|| self.client.cmp(&other.client))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, client: usize, kind: EventKind, seq: u64) -> Event {
        Event {
            time,
            client,
            kind,
            seq,
        }
    }

    #[test]
    fn orders_by_time_first() {
        let a = ev(1.0, 9, EventKind::Dispatch, 5);
        let b = ev(2.0, 0, EventKind::ComputeFinish, 0);
        assert!(a < b);
    }

    #[test]
    fn arrivals_precede_dispatches_at_equal_time() {
        let arrive = ev(3.0, 7, EventKind::UploadFinish, 10);
        let dispatch = ev(3.0, 0, EventKind::Dispatch, 1);
        assert!(arrive < dispatch);
        let deadline = ev(3.0, Event::ROUND_SCOPE, EventKind::RoundDeadline, 2);
        assert!(arrive < deadline && deadline < dispatch);
    }

    #[test]
    fn zone_deadlines_precede_the_round_deadline_at_equal_time() {
        // An update landing at its zone exactly at both deadlines is
        // resolved in tier order: buffered by the zone, then the zone
        // closes, then the round closes, then new dispatches run.
        let arrive = ev(2.0, 4, EventKind::UploadFinish, 0);
        let zone = ev(2.0, 1, EventKind::ZoneDeadline, 1);
        let round = ev(2.0, Event::ROUND_SCOPE, EventKind::RoundDeadline, 2);
        let dispatch = ev(2.0, 0, EventKind::Dispatch, 3);
        assert!(arrive < zone && zone < round && round < dispatch);
    }

    #[test]
    fn upload_retries_resolve_between_arrivals_and_churn() {
        // At one instant: landed uploads buffer first, then failed attempts
        // schedule their retransmissions, then churn and the deadlines
        // resolve, then new dispatches run.
        let arrive = ev(4.0, 2, EventKind::UploadFinish, 0);
        let retry = ev(4.0, 5, EventKind::UploadRetry, 1);
        let offline = ev(4.0, 1, EventKind::Offline, 2);
        let deadline = ev(4.0, Event::ROUND_SCOPE, EventKind::RoundDeadline, 3);
        assert!(arrive < retry && retry < offline);
        assert!(offline < deadline);
    }

    #[test]
    fn client_then_seq_break_remaining_ties() {
        let a = ev(1.0, 2, EventKind::UploadFinish, 9);
        let b = ev(1.0, 3, EventKind::UploadFinish, 1);
        assert!(a < b);
        let c = ev(1.0, 2, EventKind::UploadFinish, 10);
        assert!(a < c);
    }

    #[test]
    fn ordering_is_total_for_negative_zero() {
        // total_cmp distinguishes -0.0 < 0.0; all we need is *a* total order.
        let a = ev(-0.0, 0, EventKind::Dispatch, 0);
        let b = ev(0.0, 0, EventKind::Dispatch, 0);
        assert!(a < b);
    }
}
