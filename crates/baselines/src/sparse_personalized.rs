//! Personalized *sparse* FL baselines: LotteryFL, Hermes, FedSpa and FedP3.
//!
//! These methods give every client its own sparse submodel (like FedLPS) but
//! derive the pattern heuristically and the ratio rigidly:
//!
//! * **LotteryFL** — dense-to-sparse: each client prunes its lowest-magnitude
//!   units by a fixed rate whenever its local accuracy crosses a threshold,
//!   down to a floor ratio; the personal "lottery ticket" is deployed locally.
//! * **Hermes** — the structured variant of the same idea (channel pruning),
//!   aggregating only the parameters the retained channels share.
//! * **FedSpa** — sparse-to-sparse dynamic sparse training with a *uniform
//!   constant* ratio: every round the personal mask drops its lowest-magnitude
//!   units and regrows random ones.
//! * **FedP3** — resource-based ratios (ordered pattern capped at the client's
//!   capability) combined with a personal classifier head.

use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sparse::mask::UnitMask;
use fedlps_sparse::pattern::PatternStrategy;
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::{
    baseline_client_round, body_indicator, copy_head, coverage_aggregate, ContribParams,
    Contribution,
};

/// Payload of one personalized-sparse client step: the shared contribution
/// plus the client's next personal state.
struct SparsePersonalizedUpdate {
    contribution: Contribution,
    state: PersonalState,
}

/// Which personalized sparse baseline to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparsePersonalizedVariant {
    /// LotteryFL: prune by `prune_step` whenever training accuracy exceeds
    /// `accuracy_threshold`, never below `floor_ratio`.
    LotteryFl {
        prune_step: f64,
        accuracy_threshold: f64,
        floor_ratio: f64,
    },
    /// Hermes: the structured counterpart with the same schedule.
    Hermes {
        prune_step: f64,
        accuracy_threshold: f64,
        floor_ratio: f64,
    },
    /// FedSpa with a constant uniform ratio and per-round prune-and-regrow.
    FedSpa { ratio: f64, regrow_fraction: f64 },
    /// FedP3: capability-capped ordered submodels plus a personal head.
    FedP3,
}

impl SparsePersonalizedVariant {
    fn label(&self) -> &'static str {
        match self {
            SparsePersonalizedVariant::LotteryFl { .. } => "LotteryFL",
            SparsePersonalizedVariant::Hermes { .. } => "Hermes",
            SparsePersonalizedVariant::FedSpa { .. } => "FedSpa",
            SparsePersonalizedVariant::FedP3 => "FedP3",
        }
    }
}

/// Per-client personalized sparse state.
#[derive(Debug, Clone)]
struct PersonalState {
    params: Vec<f32>,
    mask: Option<UnitMask>,
    ratio: f64,
}

/// Driver for the personalized sparse family.
#[derive(Debug)]
pub struct SparsePersonalized {
    variant: SparsePersonalizedVariant,
    global: Vec<f32>,
    states: Vec<Option<PersonalState>>,
    staged: Vec<Contribution>,
}

impl SparsePersonalized {
    /// Creates a driver for the given variant.
    pub fn new(variant: SparsePersonalizedVariant) -> Self {
        Self {
            variant,
            global: Vec::new(),
            states: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// LotteryFL with its published schedule (prune 10% past 50% accuracy,
    /// floor at 30% of the model).
    pub fn lotteryfl() -> Self {
        Self::new(SparsePersonalizedVariant::LotteryFl {
            prune_step: 0.1,
            accuracy_threshold: 0.5,
            floor_ratio: 0.3,
        })
    }

    /// Hermes with the same schedule as LotteryFL but structured pruning.
    pub fn hermes() -> Self {
        Self::new(SparsePersonalizedVariant::Hermes {
            prune_step: 0.1,
            accuracy_threshold: 0.5,
            floor_ratio: 0.3,
        })
    }

    /// FedSpa at the paper's uniform 0.5 ratio.
    pub fn fedspa() -> Self {
        Self::new(SparsePersonalizedVariant::FedSpa {
            ratio: 0.5,
            regrow_fraction: 0.2,
        })
    }

    /// FedP3.
    pub fn fedp3() -> Self {
        Self::new(SparsePersonalizedVariant::FedP3)
    }

    /// Decides the client's ratio and pattern for this round, based on the
    /// variant's heuristic and the client's previous state.
    fn next_mask(
        &self,
        env: &FlEnv,
        client: usize,
        prev: Option<&PersonalState>,
        round: usize,
        rng: &mut StdRng,
    ) -> (UnitMask, f64) {
        let layout = env.arch.unit_layout();
        let reference = prev.map(|s| s.params.as_slice()).unwrap_or(&self.global);
        match self.variant {
            SparsePersonalizedVariant::LotteryFl { floor_ratio, .. }
            | SparsePersonalizedVariant::Hermes { floor_ratio, .. } => {
                // The ratio itself is adjusted in `client_step` (it depends
                // on the achieved accuracy); here we only build the magnitude
                // mask at the client's current ratio.
                let ratio = prev.map(|s| s.ratio).unwrap_or(1.0).max(floor_ratio);
                let mask = PatternStrategy::Magnitude
                    .build_mask(layout, reference, None, ratio, round, rng);
                (mask, ratio)
            }
            SparsePersonalizedVariant::FedSpa {
                ratio,
                regrow_fraction,
            } => {
                // Prune-and-regrow: start from a magnitude mask and randomly
                // swap a fraction of retained units for dropped ones.
                let mut mask = PatternStrategy::Magnitude
                    .build_mask(layout, reference, None, ratio, round, rng);
                let total = layout.total_units();
                let mut keep: Vec<bool> = (0..total).map(|j| mask.is_kept(j)).collect();
                let kept_idx: Vec<usize> = (0..total).filter(|&j| keep[j]).collect();
                let dropped_idx: Vec<usize> = (0..total).filter(|&j| !keep[j]).collect();
                let swaps = ((kept_idx.len() as f64) * regrow_fraction) as usize;
                for _ in 0..swaps.min(dropped_idx.len()) {
                    let from = kept_idx[rng.gen_range(0..kept_idx.len())];
                    let to = dropped_idx[rng.gen_range(0..dropped_idx.len())];
                    keep[from] = false;
                    keep[to] = true;
                }
                mask = UnitMask::from_keep(keep);
                (mask, ratio)
            }
            SparsePersonalizedVariant::FedP3 => {
                let ratio = env.fleet.static_profile(client).capability;
                let mask =
                    PatternStrategy::Ordered.build_mask(layout, reference, None, ratio, round, rng);
                (mask, ratio)
            }
        }
    }
}

impl FlAlgorithm for SparsePersonalized {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        self.states = vec![None; env.num_clients()];
        self.staged.clear();
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let device = env.fleet.available_profile(client, round);
        let layout = env.arch.unit_layout();
        let (mask, mut ratio) =
            self.next_mask(env, client, self.states[client].as_ref(), round, rng);

        // Local model: start from the global body, but keep personal pieces
        // where the method defines them.
        let mut params = self.global.clone();
        if matches!(self.variant, SparsePersonalizedVariant::FedP3) {
            if let Some(state) = &self.states[client] {
                copy_head(env, &mut params, &state.params);
            }
        }

        let (report, summary) = baseline_client_round(
            env,
            client,
            &device,
            &mut params,
            Some(&mask),
            None,
            None,
            ratio,
            rng,
        );

        // LotteryFL / Hermes dense-to-sparse schedule: prune further once the
        // local accuracy clears the threshold.
        match self.variant {
            SparsePersonalizedVariant::LotteryFl {
                prune_step,
                accuracy_threshold,
                floor_ratio,
            }
            | SparsePersonalizedVariant::Hermes {
                prune_step,
                accuracy_threshold,
                floor_ratio,
            } if summary.mean_accuracy >= accuracy_threshold => {
                ratio = (ratio - prune_step).max(floor_ratio);
            }
            _ => {}
        }

        // The body (or the overlapping retained parameters) is shared; FedP3
        // additionally withholds the head from aggregation.
        let mut shared_mask = mask.param_mask(layout);
        if matches!(self.variant, SparsePersonalizedVariant::FedP3) {
            let body = body_indicator(env);
            for (m, b) in shared_mask.iter_mut().zip(body.iter()) {
                *m *= b;
            }
        }
        ClientOutcome::new(
            report,
            SparsePersonalizedUpdate {
                contribution: Contribution {
                    client_id: client,
                    weight: env.train_size(client).max(1.0),
                    update: ContribParams::Dense {
                        params: params.clone(),
                        param_mask: Some(shared_mask),
                    },
                },
                state: PersonalState {
                    params,
                    mask: Some(mask),
                    ratio,
                },
            },
        )
    }

    fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
        let update = *update
            .downcast::<SparsePersonalizedUpdate>()
            .expect("sparse-personalized payload");
        self.states[update.contribution.client_id] = Some(update.state);
        self.staged.push(update.contribution);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        // Async absorption: discount the shared contribution's aggregation
        // weight; the client's personal state is its own and stays undiluted.
        let mut update = *update
            .downcast::<SparsePersonalizedUpdate>()
            .expect("sparse-personalized payload");
        update.contribution.weight *= weight;
        self.absorb_update(env, round, Box::new(update));
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        coverage_aggregate(&mut self.global, &self.staged, env.arch.unit_layout());
        self.staged.clear();
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        match &self.states[client] {
            Some(state) => {
                let deployed = match &state.mask {
                    Some(mask) => mask.apply(env.arch.unit_layout(), &state.params),
                    None => state.params.clone(),
                };
                env.arch.evaluate(&deployed, env.test_data(client))
            }
            None => env.arch.evaluate(&self.global, env.test_data(client)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn sim() -> Simulator {
        Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        ))
    }

    #[test]
    fn all_variants_run() {
        for mk in [
            SparsePersonalized::lotteryfl,
            SparsePersonalized::hermes,
            SparsePersonalized::fedspa,
            SparsePersonalized::fedp3,
        ] {
            let s = sim();
            let mut algo = mk();
            let result = s.run(&mut algo);
            assert_eq!(
                result.rounds.len(),
                FlConfig::tiny().rounds,
                "{}",
                algo.name()
            );
            assert!(result.final_accuracy >= 0.0);
        }
    }

    #[test]
    fn fedspa_keeps_a_constant_ratio() {
        let s = sim();
        let mut algo = SparsePersonalized::fedspa();
        let result = s.run(&mut algo);
        for r in &result.rounds {
            assert!((r.mean_sparse_ratio - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn lotteryfl_ratio_decays_once_accuracy_clears_threshold() {
        // Use a threshold of zero so pruning triggers immediately.
        let s = sim();
        let mut algo = SparsePersonalized::new(SparsePersonalizedVariant::LotteryFl {
            prune_step: 0.2,
            accuracy_threshold: 0.0,
            floor_ratio: 0.3,
        });
        let result = s.run(&mut algo);
        let first = result.rounds.first().unwrap().mean_sparse_ratio;
        let last = result.rounds.last().unwrap().mean_sparse_ratio;
        assert!(last < first, "ratio should decay: {first} -> {last}");
        // And never below the floor.
        for state in algo.states.iter().flatten() {
            assert!(state.ratio >= 0.3 - 1e-9);
        }
    }

    #[test]
    fn fedp3_submodels_track_capability() {
        let s = sim();
        let caps = s.env().capabilities();
        let mut algo = SparsePersonalized::fedp3();
        let _ = s.run(&mut algo);
        for (k, state) in algo.states.iter().enumerate() {
            if let Some(state) = state {
                assert!((state.ratio - caps[k]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn personalized_masks_differ_across_clients() {
        let s = sim();
        let mut algo = SparsePersonalized::hermes();
        let _ = s.run(&mut algo);
        let masks: Vec<&UnitMask> = algo
            .states
            .iter()
            .flatten()
            .filter_map(|s| s.mask.as_ref())
            .collect();
        assert!(masks.len() >= 2);
        let all_identical = masks.windows(2).all(|w| w[0] == w[1]);
        assert!(
            !all_identical,
            "personalized patterns should differ across non-IID clients"
        );
    }
}
