//! Name-based registry of every baseline, using the labels of the paper's
//! Table I so the benchmark harness can sweep the full comparison by name.

use fedlps_sim::algorithm::FlAlgorithm;

use crate::dense::{DenseFl, DenseVariant};
use crate::global_sparse::GlobalSparse;
use crate::personalized::{PersonalizedFl, PersonalizedVariant};
use crate::sparse_personalized::SparsePersonalized;
use crate::width::{WidthScaling, WidthVariant};

/// The baseline names in the order of the paper's Table I.
pub fn baseline_names() -> Vec<&'static str> {
    vec![
        "FedAvg",
        "FedProx",
        "Oort",
        "REFL",
        "PruneFL",
        "CS",
        "Fjord",
        "HeteroFL",
        "FedRolex",
        "FedMP",
        "DepthFL",
        "Ditto",
        "FedPer",
        "FedRep",
        "Per-FedAvg",
        "LotteryFL",
        "Hermes",
        "FedSpa",
        "FedP3",
    ]
}

/// Builds a baseline by its Table-I name. Returns `None` for unknown names.
pub fn baseline_by_name(name: &str) -> Option<Box<dyn FlAlgorithm>> {
    let algo: Box<dyn FlAlgorithm> = match name {
        "FedAvg" => Box::new(DenseFl::new(DenseVariant::FedAvg)),
        "FedProx" => Box::new(DenseFl::new(DenseVariant::FedProx { mu: 0.1 })),
        "Oort" => Box::new(DenseFl::new(DenseVariant::Oort)),
        "REFL" => Box::new(DenseFl::new(DenseVariant::Refl)),
        "PruneFL" => Box::new(GlobalSparse::prunefl()),
        "CS" => Box::new(GlobalSparse::cs()),
        "Fjord" => Box::new(WidthScaling::new(WidthVariant::Fjord)),
        "HeteroFL" => Box::new(WidthScaling::new(WidthVariant::HeteroFl)),
        "FedRolex" => Box::new(WidthScaling::new(WidthVariant::FedRolex)),
        "FedMP" => Box::new(WidthScaling::new(WidthVariant::FedMp)),
        "DepthFL" => Box::new(WidthScaling::new(WidthVariant::DepthFl)),
        "Ditto" => Box::new(PersonalizedFl::ditto()),
        "FedPer" => Box::new(PersonalizedFl::new(PersonalizedVariant::FedPer)),
        "FedRep" => Box::new(PersonalizedFl::new(PersonalizedVariant::FedRep)),
        "Per-FedAvg" => Box::new(PersonalizedFl::per_fedavg()),
        "LotteryFL" => Box::new(SparsePersonalized::lotteryfl()),
        "Hermes" => Box::new(SparsePersonalized::hermes()),
        "FedSpa" => Box::new(SparsePersonalized::fedspa()),
        "FedP3" => Box::new(SparsePersonalized::fedp3()),
        _ => return None,
    };
    Some(algo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in baseline_names() {
            let algo = baseline_by_name(name).unwrap_or_else(|| panic!("missing baseline {name}"));
            assert_eq!(algo.name(), name);
        }
    }

    #[test]
    fn unknown_names_return_none() {
        assert!(baseline_by_name("NotAMethod").is_none());
    }

    #[test]
    fn nineteen_baselines_are_registered() {
        assert_eq!(baseline_names().len(), 19);
    }
}
