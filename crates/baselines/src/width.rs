//! Heterogeneous sparse-training baselines that scale the model's width (or
//! depth) to each client's capability: Fjord, HeteroFL, FedRolex, FedMP and
//! DepthFL.
//!
//! All of them (i) pick a sparse ratio from the client's resources — the rigid
//! RCR rule for Fjord / HeteroFL / FedRolex / DepthFL, a discrete UCB for
//! FedMP — (ii) extract a submodel with a heuristic pattern (ordered prefix,
//! rolling window, magnitude, or dropping the deepest layers), (iii) train the
//! submodel locally and (iv) aggregate coverage-wise into the shared global
//! model, which is what every client deploys for inference.

use fedlps_bandit::ratio_policy::{RatioController, RatioFeedback, RatioPolicy};
use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sparse::mask::UnitMask;
use fedlps_sparse::pattern::PatternStrategy;
use fedlps_sparse::ratio::retained_units;
use rand::rngs::StdRng;

use std::sync::Arc;

use crate::common::{baseline_client_round_shared, coverage_aggregate, Contribution};

/// Payload of one width-scaling client step: the staged contribution plus the
/// ratio feedback forwarded to the controller at aggregation time.
struct WidthUpdate {
    contribution: Contribution,
    feedback: RatioFeedback,
}

/// Which width/depth-scaling baseline to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WidthVariant {
    /// Fjord: ordered dropout, ratio = capability, re-randomised each round by
    /// sampling a ratio uniformly below the capability.
    Fjord,
    /// HeteroFL: static ordered prefix submodel with ratio = capability.
    HeteroFl,
    /// FedRolex: rolling ordered window advancing every round.
    FedRolex,
    /// FedMP: magnitude-based pattern with a discrete-UCB ratio decision.
    FedMp,
    /// DepthFL: drops the deepest sparsifiable layers instead of thinning
    /// every layer.
    DepthFl,
}

impl WidthVariant {
    fn label(&self) -> &'static str {
        match self {
            WidthVariant::Fjord => "Fjord",
            WidthVariant::HeteroFl => "HeteroFL",
            WidthVariant::FedRolex => "FedRolex",
            WidthVariant::FedMp => "FedMP",
            WidthVariant::DepthFl => "DepthFL",
        }
    }

    fn pattern(&self) -> PatternStrategy {
        match self {
            WidthVariant::Fjord | WidthVariant::HeteroFl => PatternStrategy::Ordered,
            WidthVariant::FedRolex => PatternStrategy::RollingOrdered,
            WidthVariant::FedMp => PatternStrategy::Magnitude,
            // DepthFL builds its own layer-dropping mask.
            WidthVariant::DepthFl => PatternStrategy::Ordered,
        }
    }

    fn ratio_policy(&self) -> RatioPolicy {
        match self {
            WidthVariant::FedMp => RatioPolicy::DiscreteUcb { exploration: 2.0 },
            _ => RatioPolicy::ResourceControlled,
        }
    }
}

/// Driver for the width/depth-scaling family.
#[derive(Debug)]
pub struct WidthScaling {
    variant: WidthVariant,
    /// The immutable global snapshot, `Arc`-shared with every in-flight
    /// client task and packed contribution instead of being cloned per task.
    global: Arc<Vec<f32>>,
    controller: Option<RatioController>,
    staged: Vec<Contribution>,
    feedback: Vec<(usize, RatioFeedback)>,
}

impl WidthScaling {
    /// Creates a driver for the given variant.
    pub fn new(variant: WidthVariant) -> Self {
        Self {
            variant,
            global: Arc::new(Vec::new()),
            controller: None,
            staged: Vec::new(),
            feedback: Vec::new(),
        }
    }

    /// DepthFL's mask: keep the earliest layers fully dense and drop the
    /// deepest sparsifiable layers so that roughly `ratio` of the units (and
    /// hence compute) remains.
    fn depth_mask(env: &FlEnv, ratio: f64) -> UnitMask {
        let layout = env.arch.unit_layout();
        let per_layer = layout.units_per_layer();
        let total: usize = per_layer.iter().sum();
        let budget = retained_units(total, ratio);
        let mut keep = Vec::with_capacity(total);
        let mut used = 0usize;
        for &units in &per_layer {
            // Keep whole layers until the budget runs out; always keep at
            // least one unit of the first layer to stay connected.
            let keep_layer = used < budget;
            let kept_here = if keep_layer {
                units.min(budget - used)
            } else {
                0
            };
            for j in 0..units {
                keep.push(j < kept_here.max(if keep.is_empty() { 1 } else { 0 }));
            }
            used += kept_here;
        }
        UnitMask::from_keep(keep)
    }
}

impl FlAlgorithm for WidthScaling {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = Arc::new(env.initial_params());
        let capabilities = env.capabilities();
        let initial_accuracy = vec![0.0; env.num_clients()];
        self.controller = Some(RatioController::new(
            self.variant.ratio_policy(),
            &capabilities,
            &initial_accuracy,
            env.config.seed,
        ));
        self.staged.clear();
        self.feedback.clear();
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let device = env.fleet.available_profile(client, round);
        let controller = self.controller.as_ref().expect("setup() not called");
        let mut ratio = controller.ratio_for(client);
        if matches!(self.variant, WidthVariant::Fjord) {
            // Fjord samples the dropout rate uniformly up to the capability.
            ratio *= 0.5 + 0.5 * rand::Rng::gen::<f64>(rng);
        }
        ratio = ratio.clamp(0.05, 1.0);

        let mask = if matches!(self.variant, WidthVariant::DepthFl) {
            Self::depth_mask(env, ratio)
        } else {
            self.variant.pattern().build_mask(
                env.arch.unit_layout(),
                &self.global,
                None,
                ratio,
                round,
                rng,
            )
        };

        // The packed path trains the physically small submodel on values
        // gathered straight from the shared snapshot — no full-model clone,
        // no full-size mask expansion inside the parallel task.
        let (report, summary, update) =
            baseline_client_round_shared(env, client, &device, &self.global, mask, ratio, rng);

        ClientOutcome::new(
            report,
            WidthUpdate {
                contribution: Contribution {
                    client_id: client,
                    weight: env.train_size(client).max(1.0),
                    update,
                },
                feedback: RatioFeedback {
                    ratio,
                    local_cost: report.local_cost.total(),
                    accuracy: summary.mean_accuracy,
                },
            },
        )
    }

    fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
        let update = *update.downcast::<WidthUpdate>().expect("width payload");
        self.feedback
            .push((update.contribution.client_id, update.feedback));
        self.staged.push(update.contribution);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        // Async absorption: discount the coverage-aggregation weight; the
        // ratio feedback reports what actually happened and stays untouched.
        let mut update = *update.downcast::<WidthUpdate>().expect("width payload");
        update.contribution.weight *= weight;
        self.absorb_update(env, round, Box::new(update));
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        // Staged packed contributions hold clones of the `Arc`, so mutate a
        // detached copy and republish it as the next shared snapshot.
        let mut next = (*self.global).clone();
        coverage_aggregate(&mut next, &self.staged, env.arch.unit_layout());
        self.global = Arc::new(next);
        self.staged.clear();
        if let Some(controller) = self.controller.as_mut() {
            for (client, feedback) in self.feedback.drain(..) {
                controller.report(client, feedback);
            }
        }
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        env.arch.evaluate(&self.global, env.test_data(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn sim() -> Simulator {
        Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        ))
    }

    #[test]
    fn all_variants_run_and_use_sparsity() {
        for variant in [
            WidthVariant::Fjord,
            WidthVariant::HeteroFl,
            WidthVariant::FedRolex,
            WidthVariant::FedMp,
            WidthVariant::DepthFl,
        ] {
            let s = sim();
            let mut algo = WidthScaling::new(variant);
            let result = s.run(&mut algo);
            assert_eq!(
                result.rounds.len(),
                FlConfig::tiny().rounds,
                "{}",
                algo.name()
            );
            assert!(
                result.mean_sparse_ratio() < 0.999,
                "{} should train submodels on a heterogeneous fleet",
                algo.name()
            );
        }
    }

    #[test]
    fn packed_execution_is_bit_identical_for_every_width_variant() {
        // The whole family rides the packed submodel path; flipping the knob
        // must not move a single bit of the metric trace — the HeteroFL-style
        // physically-small execution is pure wall-clock.
        for variant in [
            WidthVariant::Fjord,
            WidthVariant::HeteroFl,
            WidthVariant::FedRolex,
            WidthVariant::FedMp,
            WidthVariant::DepthFl,
        ] {
            let run = |packed: bool| {
                let s = Simulator::new(FlEnv::from_scenario(
                    &ScenarioConfig::tiny(DatasetKind::MnistLike),
                    HeterogeneityLevel::High,
                    FlConfig::tiny().with_packed_execution(packed),
                ));
                s.run(&mut WidthScaling::new(variant))
            };
            assert_eq!(run(true), run(false), "{variant:?} diverged");
        }
    }

    #[test]
    fn sparse_ratios_never_exceed_static_capability_for_rcr_variants() {
        let s = sim();
        let caps = s.env().capabilities();
        let mut algo = WidthScaling::new(WidthVariant::HeteroFl);
        let result = s.run(&mut algo);
        // Every round's mean ratio must be below the best capability.
        let max_cap = caps.iter().cloned().fold(0.0, f64::max);
        for r in &result.rounds {
            assert!(r.mean_sparse_ratio <= max_cap + 1e-9);
        }
    }

    #[test]
    fn depth_mask_keeps_early_layers_and_respects_budget() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::None,
            FlConfig::tiny(),
        );
        let mask = WidthScaling::depth_mask(&env, 0.5);
        let layout = env.arch.unit_layout();
        let retained = mask.retained_per_layer(layout);
        let per_layer = layout.units_per_layer();
        // The first layer keeps more (or equal) share than the last layer.
        let first_share = retained[0] as f64 / per_layer[0] as f64;
        let last_share = *retained.last().unwrap() as f64 / *per_layer.last().unwrap() as f64;
        assert!(first_share >= last_share);
        assert!(mask.retained_units() >= 1);
    }
}
