//! Helpers shared across the baseline families.

use fedlps_device::DeviceProfile;
use fedlps_sim::algorithm::ClientReport;
use fedlps_sim::env::FlEnv;
use fedlps_sim::train::{account_round, local_sgd, LocalTrainOptions, LocalTrainSummary};
use fedlps_sparse::mask::UnitMask;
use rand::rngs::StdRng;

/// A staged contribution from one client: its aggregation weight, its full
/// local parameter vector and (for sparse methods) the parameter mask telling
/// the server which coordinates the client actually trained.
pub struct Contribution {
    pub client_id: usize,
    pub weight: f64,
    pub params: Vec<f32>,
    pub param_mask: Option<Vec<f32>>,
}

/// Coverage-aware weighted aggregation: every parameter is averaged over the
/// clients whose mask covered it; uncovered parameters keep their previous
/// global value. With dense contributions this reduces to FedAvg.
///
/// This is the aggregation rule of HeteroFL / Fjord / FedRolex / Hermes: each
/// submodel only updates the slice of the global model it trained.
pub fn coverage_aggregate(global: &mut [f32], contributions: &[Contribution]) {
    if contributions.is_empty() {
        return;
    }
    let dim = global.len();
    let mut num = vec![0.0f64; dim];
    let mut den = vec![0.0f64; dim];
    for c in contributions {
        assert_eq!(c.params.len(), dim);
        match &c.param_mask {
            None => {
                for i in 0..dim {
                    num[i] += c.weight * c.params[i] as f64;
                    den[i] += c.weight;
                }
            }
            Some(mask) => {
                assert_eq!(mask.len(), dim);
                for i in 0..dim {
                    if mask[i] != 0.0 {
                        num[i] += c.weight * c.params[i] as f64;
                        den[i] += c.weight;
                    }
                }
            }
        }
    }
    for i in 0..dim {
        if den[i] > 0.0 {
            global[i] = (num[i] / den[i]) as f32;
        }
    }
}

/// Runs a plain (optionally masked / proximal) local training pass for a
/// baseline client and assembles its [`ClientReport`], so each baseline only
/// has to describe *what* it trains, not how the accounting works.
#[allow(clippy::too_many_arguments)]
pub fn baseline_client_round(
    env: &FlEnv,
    client: usize,
    device: &DeviceProfile,
    params: &mut [f32],
    mask: Option<&UnitMask>,
    prox: Option<(f32, &[f32])>,
    frozen: Option<&[f32]>,
    sparse_ratio: f64,
    rng: &mut StdRng,
) -> (ClientReport, LocalTrainSummary) {
    let pmask = mask.map(|m| m.param_mask(env.arch.unit_layout()));
    let options = LocalTrainOptions {
        iterations: env.config.local_iterations,
        batch_size: env.config.batch_size,
        sgd: env.config.sgd,
        param_mask: pmask.as_deref(),
        prox,
        frozen,
    };
    let summary = local_sgd(&*env.arch, params, env.train_data(client), &options, rng);
    let uploaded = match mask {
        Some(m) => m.retained_params(env.arch.unit_layout()),
        None => env.arch.param_count(),
    };
    let accounting = account_round(
        &*env.arch,
        &env.cost,
        device,
        mask,
        env.config.local_iterations,
        env.config.batch_size,
        uploaded,
        env.arch.param_count(),
    );
    let report = ClientReport {
        client_id: client,
        flops: accounting.flops,
        upload_bytes: accounting.upload_bytes,
        download_bytes: accounting.download_bytes,
        local_cost: accounting.local_cost,
        train_accuracy: summary.mean_accuracy,
        train_loss: summary.mean_loss,
        sparse_ratio,
        selection_utility: 0.0,
        participations: 0,
        mask_cache_hits: 0,
        mask_cache_misses: 0,
    };
    (report, summary)
}

/// A 0/1 vector marking the classifier ("head") parameters of the
/// architecture — used by FedPer / FedRep / FedP3 to keep heads personal.
pub fn head_indicator(env: &FlEnv) -> Vec<f32> {
    let mut head = vec![0.0f32; env.arch.param_count()];
    for i in env.arch.classifier_params() {
        head[i] = 1.0;
    }
    head
}

/// The complement of [`head_indicator`]: 1 on body parameters.
pub fn body_indicator(env: &FlEnv) -> Vec<f32> {
    head_indicator(env).iter().map(|h| 1.0 - h).collect()
}

/// Overwrites the head coordinates of `target` with those of `source`.
pub fn copy_head(env: &FlEnv, target: &mut [f32], source: &[f32]) {
    for i in env.arch.classifier_params() {
        target[i] = source[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;

    fn env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        )
    }

    #[test]
    fn coverage_aggregate_reduces_to_fedavg_for_dense_inputs() {
        let mut global = vec![0.0f32; 3];
        let contributions = vec![
            Contribution {
                client_id: 0,
                weight: 1.0,
                params: vec![1.0, 1.0, 1.0],
                param_mask: None,
            },
            Contribution {
                client_id: 1,
                weight: 3.0,
                params: vec![5.0, 5.0, 5.0],
                param_mask: None,
            },
        ];
        coverage_aggregate(&mut global, &contributions);
        for v in global {
            assert!((v - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn coverage_aggregate_respects_masks() {
        let mut global = vec![10.0f32, 10.0, 10.0];
        let contributions = vec![
            Contribution {
                client_id: 0,
                weight: 1.0,
                params: vec![2.0, 2.0, 2.0],
                param_mask: Some(vec![1.0, 0.0, 0.0]),
            },
            Contribution {
                client_id: 1,
                weight: 1.0,
                params: vec![4.0, 4.0, 4.0],
                param_mask: Some(vec![1.0, 1.0, 0.0]),
            },
        ];
        coverage_aggregate(&mut global, &contributions);
        assert!((global[0] - 3.0).abs() < 1e-6, "covered by both");
        assert!((global[1] - 4.0).abs() < 1e-6, "covered by client 1 only");
        assert_eq!(global[2], 10.0, "uncovered keeps the old global value");
    }

    #[test]
    fn empty_contributions_are_a_noop() {
        let mut global = vec![1.0f32, 2.0];
        coverage_aggregate(&mut global, &[]);
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn head_and_body_indicators_partition_the_parameters() {
        let env = env();
        let head = head_indicator(&env);
        let body = body_indicator(&env);
        let head_count = head.iter().filter(|&&v| v != 0.0).count();
        assert!(head_count > 0, "MLP classifier head must be non-empty");
        assert!(head_count < env.arch.param_count());
        for (h, b) in head.iter().zip(body.iter()) {
            assert_eq!(h + b, 1.0);
        }
    }

    #[test]
    fn copy_head_only_touches_head_coordinates() {
        let env = env();
        let n = env.arch.param_count();
        let mut target = vec![0.0f32; n];
        let source = vec![7.0f32; n];
        copy_head(&env, &mut target, &source);
        let head = head_indicator(&env);
        for i in 0..n {
            if head[i] != 0.0 {
                assert_eq!(target[i], 7.0);
            } else {
                assert_eq!(target[i], 0.0);
            }
        }
    }

    #[test]
    fn baseline_round_produces_consistent_report() {
        let env = env();
        let mut rng = fedlps_tensor::rng_from_seed(1);
        let mut params = env.initial_params();
        let device = env.fleet.static_profile(0);
        let (report, summary) = baseline_client_round(
            &env,
            0,
            &device,
            &mut params,
            None,
            None,
            None,
            1.0,
            &mut rng,
        );
        assert_eq!(report.client_id, 0);
        assert!(report.flops > 0.0);
        assert!(report.local_cost.total() > 0.0);
        assert_eq!(summary.iterations, env.config.local_iterations);
    }
}
