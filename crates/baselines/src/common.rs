//! Helpers shared across the baseline families.

use std::sync::Arc;

use fedlps_device::DeviceProfile;
use fedlps_nn::unit::UnitLayout;
use fedlps_sim::algorithm::ClientReport;
use fedlps_sim::env::FlEnv;
use fedlps_sim::train::{
    account_round, compile_packed, local_sgd, local_sgd_packed, local_sgd_packed_values,
    LocalTrainOptions, LocalTrainSummary,
};
use fedlps_sparse::mask::UnitMask;
use rand::rngs::StdRng;

/// The trained parameters a client hands back for aggregation.
///
/// `Dense` carries the full local vector (plus, for sparse methods, the
/// parameter mask naming the coordinates the client actually trained).
/// `Packed` is what a physically packed client uploads: the trained values of
/// its kept coordinates, the `Arc`-shared immutable global snapshot it
/// started from — no per-task full-model clone — and its unit mask. The two
/// forms aggregate bit-identically: every mask-covered coordinate outside the
/// packed set is frozen at the base value during packed training.
#[derive(Debug)]
pub enum ContribParams {
    Dense {
        params: Vec<f32>,
        param_mask: Option<Vec<f32>>,
    },
    Packed {
        base: Arc<Vec<f32>>,
        mask: UnitMask,
        coords: Arc<Vec<u32>>,
        values: Vec<f32>,
    },
}

/// A staged contribution from one client: its aggregation weight and its
/// trained parameters (dense or packed).
#[derive(Debug)]
pub struct Contribution {
    pub client_id: usize,
    pub weight: f64,
    pub update: ContribParams,
}

/// Coverage-aware weighted aggregation: every parameter is averaged over the
/// clients whose mask covered it; uncovered parameters keep their previous
/// global value. With dense contributions this reduces to FedAvg.
///
/// This is the aggregation rule of HeteroFL / Fjord / FedRolex / Hermes: each
/// submodel only updates the slice of the global model it trained. Packed
/// contributions are walked in the same coordinate order with the same
/// `weight × value` arithmetic — the value comes from the packed delta where
/// the submodel trained and from the shared base snapshot on the frozen
/// remainder of the mask — so dense and packed uploads aggregate
/// bit-identically.
pub fn coverage_aggregate(global: &mut [f32], contributions: &[Contribution], layout: &UnitLayout) {
    if contributions.is_empty() {
        return;
    }
    let dim = global.len();
    let mut num = vec![0.0f64; dim];
    let mut den = vec![0.0f64; dim];
    for c in contributions {
        match &c.update {
            ContribParams::Dense {
                params,
                param_mask: None,
            } => {
                assert_eq!(params.len(), dim);
                for i in 0..dim {
                    num[i] += c.weight * params[i] as f64;
                    den[i] += c.weight;
                }
            }
            ContribParams::Dense {
                params,
                param_mask: Some(mask),
            } => {
                assert_eq!(params.len(), dim);
                assert_eq!(mask.len(), dim);
                for i in 0..dim {
                    if mask[i] != 0.0 {
                        num[i] += c.weight * params[i] as f64;
                        den[i] += c.weight;
                    }
                }
            }
            ContribParams::Packed {
                base,
                mask,
                coords,
                values,
            } => {
                assert_eq!(base.len(), dim);
                // Expanding the unit mask is O(dim) *serial server work* per
                // contribution — the same cost the dense path paid inside the
                // parallel client task.
                let pmask = mask.param_mask(layout);
                let mut sparse = coords.iter().zip(values.iter()).peekable();
                for i in 0..dim {
                    let v = match sparse.peek() {
                        Some(&(&ci, &pv)) if ci as usize == i => {
                            sparse.next();
                            pv
                        }
                        _ => base[i],
                    };
                    if pmask[i] != 0.0 {
                        num[i] += c.weight * v as f64;
                        den[i] += c.weight;
                    }
                }
            }
        }
    }
    for i in 0..dim {
        if den[i] > 0.0 {
            global[i] = (num[i] / den[i]) as f32;
        }
    }
}

/// Runs a plain (optionally masked / proximal) local training pass for a
/// baseline client and assembles its [`ClientReport`], so each baseline only
/// has to describe *what* it trains, not how the accounting works.
///
/// When the federation runs packed execution and the mask/options qualify,
/// the pass trains the physically packed submodel and scatters the result
/// back into `params` — bit-identical to the masked-dense pass, minus the
/// dense wall-clock.
#[allow(clippy::too_many_arguments)]
pub fn baseline_client_round(
    env: &FlEnv,
    client: usize,
    device: &DeviceProfile,
    params: &mut [f32],
    mask: Option<&UnitMask>,
    prox: Option<(f32, &[f32])>,
    frozen: Option<&[f32]>,
    sparse_ratio: f64,
    rng: &mut StdRng,
) -> (ClientReport, LocalTrainSummary) {
    let pmask = mask.map(|m| m.param_mask(env.arch.unit_layout()));
    let options = LocalTrainOptions {
        iterations: env.config.local_iterations,
        batch_size: env.config.batch_size,
        sgd: env.config.sgd,
        param_mask: pmask.as_deref(),
        prox,
        frozen,
    };
    let packed =
        mask.and_then(|m| compile_packed(&*env.arch, m, &options, env.config.packed_execution));
    let summary = match packed {
        Some(p) => local_sgd_packed(&p, params, env.train_data(client), &options, rng),
        None => local_sgd(&*env.arch, params, env.train_data(client), &options, rng),
    };
    let report = masked_report(env, client, device, mask, sparse_ratio, &summary);
    (report, summary)
}

/// A width-scaling client round that shares the immutable global snapshot
/// across backend tasks through an `Arc` instead of cloning the full model
/// per task: the packed path gathers the kept values straight out of the
/// shared snapshot, trains the compact submodel and returns them as a
/// [`ContribParams::Packed`] upload. Falls back to the dense path (one full
/// clone, masked training) when the mask is not packable or packing is off —
/// either way the result aggregates bit-identically.
pub fn baseline_client_round_shared(
    env: &FlEnv,
    client: usize,
    device: &DeviceProfile,
    global: &Arc<Vec<f32>>,
    mask: UnitMask,
    sparse_ratio: f64,
    rng: &mut StdRng,
) -> (ClientReport, LocalTrainSummary, ContribParams) {
    let options = LocalTrainOptions {
        iterations: env.config.local_iterations,
        batch_size: env.config.batch_size,
        sgd: env.config.sgd,
        param_mask: None,
        prox: None,
        frozen: None,
    };
    if let Some(packed) = compile_packed(&*env.arch, &mask, &options, env.config.packed_execution) {
        // One exact-size flat allocation; it escapes into the upload, so it
        // cannot come from the scratch pool, but the slice-based gather keeps
        // the hot path free of push-per-element growth.
        let mut values = vec![0.0f32; packed.packed_len()];
        packed.gather_params_into(global, &mut values);
        let summary =
            local_sgd_packed_values(&packed, &mut values, env.train_data(client), &options, rng);
        let report = masked_report(env, client, device, Some(&mask), sparse_ratio, &summary);
        let update = ContribParams::Packed {
            base: Arc::clone(global),
            coords: packed.gather_arc(),
            values,
            mask,
        };
        return (report, summary, update);
    }
    let mut params = (**global).clone();
    let (report, summary) = baseline_client_round(
        env,
        client,
        device,
        &mut params,
        Some(&mask),
        None,
        None,
        sparse_ratio,
        rng,
    );
    let param_mask = mask.param_mask(env.arch.unit_layout());
    (
        report,
        summary,
        ContribParams::Dense {
            params,
            param_mask: Some(param_mask),
        },
    )
}

/// Assembles the [`ClientReport`] of one (optionally masked) baseline round.
fn masked_report(
    env: &FlEnv,
    client: usize,
    device: &DeviceProfile,
    mask: Option<&UnitMask>,
    sparse_ratio: f64,
    summary: &LocalTrainSummary,
) -> ClientReport {
    let uploaded = match mask {
        Some(m) => m.retained_params(env.arch.unit_layout()),
        None => env.arch.param_count(),
    };
    let accounting = account_round(
        &*env.arch,
        &env.cost,
        device,
        mask,
        env.config.local_iterations,
        env.config.batch_size,
        uploaded,
        env.arch.param_count(),
    );
    ClientReport {
        client_id: client,
        flops: accounting.flops,
        upload_bytes: accounting.upload_bytes,
        download_bytes: accounting.download_bytes,
        local_cost: accounting.local_cost,
        train_accuracy: summary.mean_accuracy,
        train_loss: summary.mean_loss,
        sparse_ratio,
        selection_utility: 0.0,
        participations: 0,
        mask_cache_hits: 0,
        mask_cache_misses: 0,
    }
}

/// A 0/1 vector marking the classifier ("head") parameters of the
/// architecture — used by FedPer / FedRep / FedP3 to keep heads personal.
pub fn head_indicator(env: &FlEnv) -> Vec<f32> {
    let mut head = vec![0.0f32; env.arch.param_count()];
    for i in env.arch.classifier_params() {
        head[i] = 1.0;
    }
    head
}

/// The complement of [`head_indicator`]: 1 on body parameters.
pub fn body_indicator(env: &FlEnv) -> Vec<f32> {
    head_indicator(env).iter().map(|h| 1.0 - h).collect()
}

/// Overwrites the head coordinates of `target` with those of `source`.
pub fn copy_head(env: &FlEnv, target: &mut [f32], source: &[f32]) {
    for i in env.arch.classifier_params() {
        target[i] = source[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;

    fn env() -> FlEnv {
        FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        )
    }

    /// A layout with no sparsifiable layers — enough for dense-contribution
    /// aggregation tests, which never consult it.
    fn trivial_layout(total: usize) -> UnitLayout {
        UnitLayout::new(Vec::new(), total)
    }

    fn dense(
        client_id: usize,
        weight: f64,
        params: Vec<f32>,
        mask: Option<Vec<f32>>,
    ) -> Contribution {
        Contribution {
            client_id,
            weight,
            update: ContribParams::Dense {
                params,
                param_mask: mask,
            },
        }
    }

    #[test]
    fn coverage_aggregate_reduces_to_fedavg_for_dense_inputs() {
        let mut global = vec![0.0f32; 3];
        let contributions = vec![
            dense(0, 1.0, vec![1.0, 1.0, 1.0], None),
            dense(1, 3.0, vec![5.0, 5.0, 5.0], None),
        ];
        coverage_aggregate(&mut global, &contributions, &trivial_layout(3));
        for v in global {
            assert!((v - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn coverage_aggregate_respects_masks() {
        let mut global = vec![10.0f32, 10.0, 10.0];
        let contributions = vec![
            dense(0, 1.0, vec![2.0, 2.0, 2.0], Some(vec![1.0, 0.0, 0.0])),
            dense(1, 1.0, vec![4.0, 4.0, 4.0], Some(vec![1.0, 1.0, 0.0])),
        ];
        coverage_aggregate(&mut global, &contributions, &trivial_layout(3));
        assert!((global[0] - 3.0).abs() < 1e-6, "covered by both");
        assert!((global[1] - 4.0).abs() < 1e-6, "covered by client 1 only");
        assert_eq!(global[2], 10.0, "uncovered keeps the old global value");
    }

    #[test]
    fn empty_contributions_are_a_noop() {
        let mut global = vec![1.0f32, 2.0];
        coverage_aggregate(&mut global, &[], &trivial_layout(2));
        assert_eq!(global, vec![1.0, 2.0]);
    }

    #[test]
    fn packed_contributions_aggregate_bit_identically_to_dense_scatter() {
        // Build a real packed submodel so the coords/mask pair is authentic,
        // then check the packed upload aggregates exactly like its dense
        // scatter-back expansion would.
        use fedlps_sparse::plan::SubmodelPlan;
        let env = env();
        let layout = env.arch.unit_layout();
        let global0 = Arc::new(env.initial_params());
        let mut keep = vec![false; layout.total_units()];
        for (i, k) in keep.iter_mut().enumerate() {
            *k = i % 3 != 1;
        }
        let mask = UnitMask::from_keep(keep);
        let packed = SubmodelPlan::from_mask(layout, &mask)
            .compile(&*env.arch)
            .expect("packable");
        let mut values = Vec::new();
        packed.gather_params(&global0, &mut values);
        for (i, v) in values.iter_mut().enumerate() {
            *v += (i as f32 * 0.37).sin() * 0.1; // pretend training moved them
        }
        // Dense expansion: scatter trained values over the base snapshot,
        // then mask-restrict — exactly what the dense path stages.
        let mut dense_params = (*global0).clone();
        packed.scatter_params(&values, &mut dense_params);
        let dense_contrib = dense(0, 2.0, dense_params, Some(mask.param_mask(layout)));
        let packed_contrib = Contribution {
            client_id: 0,
            weight: 2.0,
            update: ContribParams::Packed {
                base: Arc::clone(&global0),
                mask: mask.clone(),
                coords: packed.gather_arc(),
                values,
            },
        };
        let other = || dense(1, 1.0, vec![0.25; layout.total_params()], None);

        let mut via_dense = (*global0).clone();
        coverage_aggregate(&mut via_dense, &[dense_contrib, other()], layout);
        let mut via_packed = (*global0).clone();
        coverage_aggregate(&mut via_packed, &[packed_contrib, other()], layout);
        for (i, (a, b)) in via_dense.iter().zip(via_packed.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "aggregate diverges at {i}");
        }
        assert_ne!(via_packed, *global0, "the update moved the model");
    }

    #[test]
    fn head_and_body_indicators_partition_the_parameters() {
        let env = env();
        let head = head_indicator(&env);
        let body = body_indicator(&env);
        let head_count = head.iter().filter(|&&v| v != 0.0).count();
        assert!(head_count > 0, "MLP classifier head must be non-empty");
        assert!(head_count < env.arch.param_count());
        for (h, b) in head.iter().zip(body.iter()) {
            assert_eq!(h + b, 1.0);
        }
    }

    #[test]
    fn copy_head_only_touches_head_coordinates() {
        let env = env();
        let n = env.arch.param_count();
        let mut target = vec![0.0f32; n];
        let source = vec![7.0f32; n];
        copy_head(&env, &mut target, &source);
        let head = head_indicator(&env);
        for i in 0..n {
            if head[i] != 0.0 {
                assert_eq!(target[i], 7.0);
            } else {
                assert_eq!(target[i], 0.0);
            }
        }
    }

    #[test]
    fn baseline_round_produces_consistent_report() {
        let env = env();
        let mut rng = fedlps_tensor::rng_from_seed(1);
        let mut params = env.initial_params();
        let device = env.fleet.static_profile(0);
        let (report, summary) = baseline_client_round(
            &env,
            0,
            &device,
            &mut params,
            None,
            None,
            None,
            1.0,
            &mut rng,
        );
        assert_eq!(report.client_id, 0);
        assert!(report.flops > 0.0);
        assert!(report.local_cost.total() > 0.0);
        assert_eq!(summary.iterations, env.config.local_iterations);
    }
}
