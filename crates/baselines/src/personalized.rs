//! Personalized dense-FL baselines: Ditto, FedPer, FedRep and Per-FedAvg.
//!
//! These methods keep the full dense model but personalize *what* each client
//! deploys:
//!
//! * **Ditto** — alongside the FedAvg global model, every client maintains a
//!   personal model trained with a proximal pull towards the global one.
//! * **FedPer** — the classifier head stays local; only the body is averaged.
//! * **FedRep** — like FedPer, but each round first fits the local head with
//!   the body frozen, then updates the body with the head frozen.
//! * **Per-FedAvg** — trains like FedAvg but deploys the global model after a
//!   few steps of local adaptation (the first-order MAML view).

use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sim::train::{local_sgd, LocalTrainOptions};
use fedlps_tensor::split_seed;
use rand::rngs::StdRng;

use crate::common::{
    baseline_client_round, body_indicator, copy_head, coverage_aggregate, head_indicator,
    ContribParams, Contribution,
};

/// Payload of one personalized client step: the shared contribution plus the
/// client's new personal state (Ditto's personal model, FedPer/FedRep's
/// personal head; `None` for Per-FedAvg, which personalizes at deployment).
struct PersonalizedUpdate {
    contribution: Contribution,
    personal: Option<Vec<f32>>,
}

/// Which personalized dense baseline to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PersonalizedVariant {
    /// Ditto with personal-model proximal weight `lambda`.
    Ditto { lambda: f32 },
    /// FedPer: personal classifier head, shared body.
    FedPer,
    /// FedRep: alternating head / body optimisation, personal head.
    FedRep,
    /// Per-FedAvg with the given number of local adaptation steps at
    /// deployment time.
    PerFedAvg { adaptation_steps: usize },
}

impl PersonalizedVariant {
    fn label(&self) -> &'static str {
        match self {
            PersonalizedVariant::Ditto { .. } => "Ditto",
            PersonalizedVariant::FedPer => "FedPer",
            PersonalizedVariant::FedRep => "FedRep",
            PersonalizedVariant::PerFedAvg { .. } => "Per-FedAvg",
        }
    }
}

/// Driver for the personalized dense family.
#[derive(Debug)]
pub struct PersonalizedFl {
    variant: PersonalizedVariant,
    global: Vec<f32>,
    /// Per-client personal state: Ditto's personal model or FedPer/FedRep's
    /// personal head (stored as a full vector whose head block is meaningful).
    personal: Vec<Option<Vec<f32>>>,
    staged: Vec<Contribution>,
}

impl PersonalizedFl {
    /// Creates a driver for the given variant.
    pub fn new(variant: PersonalizedVariant) -> Self {
        Self {
            variant,
            global: Vec::new(),
            personal: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// Ditto with the commonly used `λ = 1`.
    pub fn ditto() -> Self {
        Self::new(PersonalizedVariant::Ditto { lambda: 1.0 })
    }

    /// Per-FedAvg with one adaptation step, matching the first-order variant.
    pub fn per_fedavg() -> Self {
        Self::new(PersonalizedVariant::PerFedAvg {
            adaptation_steps: 1,
        })
    }
}

impl FlAlgorithm for PersonalizedFl {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        self.personal = vec![None; env.num_clients()];
        self.staged.clear();
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let device = env.fleet.available_profile(client, round);
        let global_snapshot = &self.global;
        let weight = env.train_size(client).max(1.0);

        match self.variant {
            PersonalizedVariant::Ditto { lambda } => {
                // Shared-model update (plain FedAvg step).
                let mut shared = global_snapshot.clone();
                let (report, _) = baseline_client_round(
                    env,
                    client,
                    &device,
                    &mut shared,
                    None,
                    None,
                    None,
                    1.0,
                    rng,
                );
                // Personal model trained with a pull towards the global model.
                let mut personal = self.personal[client]
                    .clone()
                    .unwrap_or_else(|| global_snapshot.clone());
                let options = LocalTrainOptions {
                    iterations: env.config.local_iterations,
                    batch_size: env.config.batch_size,
                    sgd: env.config.sgd,
                    param_mask: None,
                    prox: Some((lambda, global_snapshot.as_slice())),
                    frozen: None,
                };
                local_sgd(
                    &*env.arch,
                    &mut personal,
                    env.train_data(client),
                    &options,
                    rng,
                );
                // Ditto's extra personal pass doubles the local compute, which
                // is exactly why the paper reports it as the most expensive
                // personalized baseline.
                let mut doubled = report;
                doubled.flops *= 2.0;
                doubled.local_cost.compute_seconds *= 2.0;
                ClientOutcome::new(
                    doubled,
                    PersonalizedUpdate {
                        contribution: Contribution {
                            client_id: client,
                            weight,
                            update: ContribParams::Dense {
                                params: shared,
                                param_mask: None,
                            },
                        },
                        personal: Some(personal),
                    },
                )
            }
            PersonalizedVariant::FedPer | PersonalizedVariant::FedRep => {
                let head = head_indicator(env);
                let body = body_indicator(env);
                let mut params = global_snapshot.clone();
                // Restore the client's personal head if it has one.
                if let Some(stored) = &self.personal[client] {
                    copy_head(env, &mut params, stored);
                }
                if matches!(self.variant, PersonalizedVariant::FedRep) {
                    // Phase 1: fit the head with the body frozen.
                    let options = LocalTrainOptions {
                        iterations: env.config.local_iterations,
                        batch_size: env.config.batch_size,
                        sgd: env.config.sgd,
                        param_mask: None,
                        prox: None,
                        frozen: Some(&body),
                    };
                    local_sgd(
                        &*env.arch,
                        &mut params,
                        env.train_data(client),
                        &options,
                        rng,
                    );
                }
                // Main phase: FedPer trains everything jointly; FedRep freezes
                // the freshly fitted head while updating the body.
                let frozen = if matches!(self.variant, PersonalizedVariant::FedRep) {
                    Some(head.as_slice())
                } else {
                    None
                };
                let (report, _) = baseline_client_round(
                    env,
                    client,
                    &device,
                    &mut params,
                    None,
                    None,
                    frozen,
                    1.0,
                    rng,
                );
                // The head stays local; the body is shared.
                ClientOutcome::new(
                    report,
                    PersonalizedUpdate {
                        contribution: Contribution {
                            client_id: client,
                            weight,
                            update: ContribParams::Dense {
                                params: params.clone(),
                                param_mask: Some(body),
                            },
                        },
                        personal: Some(params),
                    },
                )
            }
            PersonalizedVariant::PerFedAvg { .. } => {
                let mut params = global_snapshot.clone();
                let (report, _) = baseline_client_round(
                    env,
                    client,
                    &device,
                    &mut params,
                    None,
                    None,
                    None,
                    1.0,
                    rng,
                );
                ClientOutcome::new(
                    report,
                    PersonalizedUpdate {
                        contribution: Contribution {
                            client_id: client,
                            weight,
                            update: ContribParams::Dense {
                                params,
                                param_mask: None,
                            },
                        },
                        personal: None,
                    },
                )
            }
        }
    }

    fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
        let update = *update
            .downcast::<PersonalizedUpdate>()
            .expect("personalized payload");
        if let Some(personal) = update.personal {
            self.personal[update.contribution.client_id] = Some(personal);
        }
        self.staged.push(update.contribution);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        // Async absorption: discount the shared contribution's aggregation
        // weight; the client's personal state is its own and stays undiluted.
        let mut update = *update
            .downcast::<PersonalizedUpdate>()
            .expect("personalized payload");
        update.contribution.weight *= weight;
        self.absorb_update(env, round, Box::new(update));
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        coverage_aggregate(&mut self.global, &self.staged, env.arch.unit_layout());
        self.staged.clear();
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        match self.variant {
            PersonalizedVariant::Ditto { .. } => match &self.personal[client] {
                Some(personal) => env.arch.evaluate(personal, env.test_data(client)),
                None => env.arch.evaluate(&self.global, env.test_data(client)),
            },
            PersonalizedVariant::FedPer | PersonalizedVariant::FedRep => {
                let mut deployed = self.global.clone();
                if let Some(stored) = &self.personal[client] {
                    copy_head(env, &mut deployed, stored);
                }
                env.arch.evaluate(&deployed, env.test_data(client))
            }
            PersonalizedVariant::PerFedAvg { adaptation_steps } => {
                // Deploy the meta-model after a brief local adaptation on the
                // client's training data (first-order Per-FedAvg).
                let mut adapted = self.global.clone();
                let mut rng = fedlps_tensor::rng_from_seed(split_seed(
                    env.config.seed,
                    0xADA7 ^ client as u64,
                ));
                let options = LocalTrainOptions {
                    iterations: adaptation_steps,
                    batch_size: env.config.batch_size,
                    sgd: env.config.sgd,
                    param_mask: None,
                    prox: None,
                    frozen: None,
                };
                local_sgd(
                    &*env.arch,
                    &mut adapted,
                    env.train_data(client),
                    &options,
                    &mut rng,
                );
                env.arch.evaluate(&adapted, env.test_data(client))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn sim() -> Simulator {
        Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        ))
    }

    #[test]
    fn all_variants_run() {
        for variant in [
            PersonalizedVariant::Ditto { lambda: 1.0 },
            PersonalizedVariant::FedPer,
            PersonalizedVariant::FedRep,
            PersonalizedVariant::PerFedAvg {
                adaptation_steps: 1,
            },
        ] {
            let s = sim();
            let mut algo = PersonalizedFl::new(variant);
            let result = s.run(&mut algo);
            assert_eq!(
                result.rounds.len(),
                FlConfig::tiny().rounds,
                "{}",
                algo.name()
            );
            assert!(result.final_accuracy >= 0.0 && result.final_accuracy <= 1.0);
        }
    }

    #[test]
    fn ditto_costs_more_flops_than_fedavg() {
        let s = sim();
        let ditto_result = s.run(&mut PersonalizedFl::ditto());
        let s2 = sim();
        let fedavg_result = s2.run(&mut crate::dense::DenseFl::new(
            crate::dense::DenseVariant::FedAvg,
        ));
        assert!(ditto_result.total_flops > fedavg_result.total_flops * 1.5);
    }

    #[test]
    fn fedper_keeps_personal_heads_per_client() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::Low,
            FlConfig::tiny(),
        );
        let sim = Simulator::new(env);
        let mut algo = PersonalizedFl::new(PersonalizedVariant::FedPer);
        let _ = sim.run(&mut algo);
        // At least two clients trained; their stored heads differ because
        // their local data differ (pathological non-IID).
        let stored: Vec<&Vec<f32>> = algo.personal.iter().flatten().collect();
        assert!(stored.len() >= 2);
        let env = sim.env();
        let head_range = env.arch.classifier_params();
        let h0 = &stored[0][head_range.clone()];
        let h1 = &stored[1][head_range];
        assert_ne!(h0, h1);
    }
}
