//! Conventional dense FL baselines: FedAvg, FedProx, Oort and REFL.
//!
//! All four train the full dense model on every selected client and aggregate
//! with the data-size-weighted mean; they differ in the local objective
//! (FedProx's proximal term) and in how clients are selected (Oort's
//! utility-guided selection, REFL's resource-aware staleness-conscious
//! selection). They deploy the single shared global model on every client.

use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_tensor::rng::{sample_weighted, sample_without_replacement};
use rand::rngs::StdRng;

use crate::common::{baseline_client_round, coverage_aggregate, ContribParams, Contribution};

/// Payload of one dense client step: the staged contribution plus the Oort
/// utility observed during training.
struct DenseUpdate {
    contribution: Contribution,
    utility: f64,
}

/// Which conventional baseline to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DenseVariant {
    /// Plain FedAvg (McMahan et al.).
    FedAvg,
    /// FedProx with proximal weight `mu`.
    FedProx { mu: f32 },
    /// Oort: utility-guided client selection (statistical utility × speed).
    Oort,
    /// REFL: resource-efficient FL — prefers fresh, capable clients and decays
    /// the contribution of clients whose last participation is stale.
    Refl,
}

impl DenseVariant {
    fn label(&self) -> &'static str {
        match self {
            DenseVariant::FedAvg => "FedAvg",
            DenseVariant::FedProx { .. } => "FedProx",
            DenseVariant::Oort => "Oort",
            DenseVariant::Refl => "REFL",
        }
    }
}

/// Driver for the conventional dense-FL family.
#[derive(Debug)]
pub struct DenseFl {
    variant: DenseVariant,
    global: Vec<f32>,
    staged: Vec<Contribution>,
    /// Oort utility per client (statistical utility × system speed).
    utilities: Vec<f64>,
    /// Round at which each client last participated (REFL freshness).
    last_selected: Vec<Option<usize>>,
}

impl DenseFl {
    /// Creates a driver for the given variant.
    pub fn new(variant: DenseVariant) -> Self {
        Self {
            variant,
            global: Vec::new(),
            staged: Vec::new(),
            utilities: Vec::new(),
            last_selected: Vec::new(),
        }
    }
}

impl FlAlgorithm for DenseFl {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        self.staged.clear();
        // Optimistic initial utility so every client gets explored.
        self.utilities = vec![f64::MAX / 1e6; env.num_clients()];
        self.last_selected = vec![None; env.num_clients()];
    }

    /// Oort and REFL carry their own selection rule (it *is* the method);
    /// FedAvg and FedProx defer to the run-level `SelectionPolicy`, whose
    /// uniform default reproduces their historical sampling bit for bit.
    fn select_clients(
        &mut self,
        env: &FlEnv,
        round: usize,
        rng: &mut StdRng,
    ) -> Option<Vec<usize>> {
        let c = env.config.clients_per_round.min(env.num_clients()).max(1);
        match self.variant {
            DenseVariant::FedAvg | DenseVariant::FedProx { .. } => None,
            DenseVariant::Oort => {
                // Sample proportionally to utility (loss-based utility divided
                // by expected round time), which is Oort's exploit phase with
                // softened exploration through the proportional sampling.
                let mut chosen = Vec::with_capacity(c);
                let mut weights: Vec<f64> = self
                    .utilities
                    .iter()
                    .enumerate()
                    .map(|(k, u)| u / (1.0 + 1.0 / env.capability(k)))
                    .collect();
                for _ in 0..c {
                    let pick = sample_weighted(&weights, rng);
                    chosen.push(pick);
                    weights[pick] = 0.0;
                }
                chosen.sort_unstable();
                chosen.dedup();
                while chosen.len() < c {
                    let extra = sample_without_replacement(env.num_clients(), c, rng);
                    for e in extra {
                        if !chosen.contains(&e) {
                            chosen.push(e);
                            if chosen.len() == c {
                                break;
                            }
                        }
                    }
                }
                Some(chosen)
            }
            DenseVariant::Refl => {
                // Resource-aware + staleness-aware: rank by capability and how
                // long ago the client last contributed, with random
                // tie-breaking supplied by a small noise term.
                let mut scored: Vec<(usize, f64)> = (0..env.num_clients())
                    .map(|k| {
                        let staleness = match self.last_selected[k] {
                            None => round as f64 + 1.0,
                            Some(r) => (round - r) as f64,
                        };
                        let noise = fedlps_tensor::rng::sample_normal(rng) as f64 * 0.01;
                        (k, env.capability(k) + 0.1 * staleness + noise)
                    })
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                Some(scored.into_iter().take(c).map(|(k, _)| k).collect())
            }
        }
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let device = env.fleet.available_profile(client, round);
        let mut params = self.global.clone();
        let prox = match self.variant {
            DenseVariant::FedProx { mu } => Some((mu, self.global.as_slice())),
            _ => None,
        };
        let (report, summary) = baseline_client_round(
            env,
            client,
            &device,
            &mut params,
            None,
            prox,
            None,
            1.0,
            rng,
        );

        // REFL decays stale contributions in aggregation; here staleness is
        // zero for the clients that just trained, so the weight is their data
        // size (kept for clarity and future asynchronous extensions).
        ClientOutcome::new(
            report,
            DenseUpdate {
                contribution: Contribution {
                    client_id: client,
                    weight: env.train_size(client).max(1.0),
                    update: ContribParams::Dense {
                        params,
                        param_mask: None,
                    },
                },
                // Oort statistical utility: |D_k| * sqrt(mean loss).
                utility: env.train_size(client) * summary.mean_loss.max(1e-6).sqrt(),
            },
        )
    }

    fn absorb_update(&mut self, _env: &FlEnv, round: usize, update: ClientUpdate) {
        let update = *update.downcast::<DenseUpdate>().expect("dense payload");
        let client = update.contribution.client_id;
        self.utilities[client] = update.utility;
        self.last_selected[client] = Some(round);
        self.staged.push(update.contribution);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        // Async absorption: the data-size aggregation weight is discounted by
        // the server's staleness factor before staging.
        let mut update = *update.downcast::<DenseUpdate>().expect("dense payload");
        update.contribution.weight *= weight;
        self.absorb_update(env, round, Box::new(update));
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        coverage_aggregate(&mut self.global, &self.staged, env.arch.unit_layout());
        self.staged.clear();
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        env.arch.evaluate(&self.global, env.test_data(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn sim() -> Simulator {
        Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        ))
    }

    #[test]
    fn all_variants_run() {
        for variant in [
            DenseVariant::FedAvg,
            DenseVariant::FedProx { mu: 0.1 },
            DenseVariant::Oort,
            DenseVariant::Refl,
        ] {
            let s = sim();
            let mut algo = DenseFl::new(variant);
            let result = s.run(&mut algo);
            assert_eq!(
                result.rounds.len(),
                FlConfig::tiny().rounds,
                "{}",
                algo.name()
            );
            assert!(result.final_accuracy >= 0.0);
            // Dense baselines always report ratio 1.
            assert!(result.mean_sparse_ratio() > 0.999);
        }
    }

    #[test]
    fn fedavg_runs_under_async_rounds_with_staleness_discounts() {
        use fedlps_sim::config::RoundMode;
        let s = Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny().with_round_mode(RoundMode::asynchronous(3, 0.5)),
        ));
        let mut algo = DenseFl::new(DenseVariant::FedAvg);
        let result = s.run(&mut algo);
        assert_eq!(result.rounds.len(), FlConfig::tiny().rounds);
        assert!(
            result.staleness_histogram().iter().sum::<u64>() > 0,
            "the async pipeline must absorb discounted dense updates"
        );
        assert!((0.0..=1.0).contains(&result.final_accuracy));
    }

    #[test]
    fn refl_prefers_capable_or_stale_clients() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        );
        let mut algo = DenseFl::new(DenseVariant::Refl);
        algo.setup(&env);
        let mut rng = fedlps_tensor::rng_from_seed(1);
        let selected = algo
            .select_clients(&env, 0, &mut rng)
            .expect("REFL carries its own selection rule");
        assert_eq!(selected.len(), env.config.clients_per_round);
        // All selected indices are valid and distinct.
        let mut sorted = selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), selected.len());
    }

    #[test]
    fn oort_selection_returns_requested_count() {
        let env = FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        );
        let mut algo = DenseFl::new(DenseVariant::Oort);
        algo.setup(&env);
        let mut rng = fedlps_tensor::rng_from_seed(2);
        for round in 0..3 {
            let selected = algo
                .select_clients(&env, round, &mut rng)
                .expect("Oort carries its own selection rule");
            assert_eq!(selected.len(), env.config.clients_per_round);
        }
    }
}
