//! The FL frameworks FedLPS is evaluated against (Table I of the paper).
//!
//! The nineteen baselines fall into five families, each implemented as one
//! configurable driver so that their shared mechanics (local SGD, masking,
//! cost accounting, aggregation) are written — and tested — once:
//!
//! | Family | Module | Methods |
//! |---|---|---|
//! | Conventional dense FL | [`dense`] | FedAvg, FedProx, Oort, REFL |
//! | Globally sparse FL | [`global_sparse`] | PruneFL, CS |
//! | Heterogeneous width/depth scaling | [`width`] | Fjord, HeteroFL, FedRolex, FedMP, DepthFL |
//! | Personalized dense FL | [`personalized`] | Ditto, FedPer, FedRep, Per-FedAvg |
//! | Personalized sparse FL | [`sparse_personalized`] | LotteryFL, Hermes, FedSpa, FedP3 |
//!
//! [`registry`] exposes them all by the names used in the paper's tables so
//! the benchmark harness can sweep the full comparison.

pub mod common;
pub mod dense;
pub mod global_sparse;
pub mod personalized;
pub mod registry;
pub mod sparse_personalized;
pub mod width;

pub use registry::{baseline_by_name, baseline_names};
