//! Globally sparse FL baselines: PruneFL and Complement Sparsification (CS).
//!
//! Both keep a *single shared* sparse pattern for the whole federation (every
//! client trains the same submodel size), in contrast to the heterogeneous and
//! personalized families:
//!
//! * **PruneFL** — a powerful client prunes the initial dense model by
//!   magnitude; the resulting mask is redistributed and periodically
//!   re-selected from the aggregated global model as training progresses.
//! * **CS** — complement sparsification prunes updates at a fixed ratio. The
//!   original method is unstructured; since this reproduction's substrate is
//!   structured (unit-level), CS is modelled as a unit-level magnitude mask
//!   recomputed every round (the substitution is documented in `DESIGN.md §1`).

use fedlps_nn::model::EvalStats;
use fedlps_sim::algorithm::{ClientOutcome, ClientReport, ClientUpdate, FlAlgorithm};
use fedlps_sim::env::FlEnv;
use fedlps_sparse::mask::UnitMask;
use fedlps_sparse::pattern::PatternStrategy;
use rand::rngs::StdRng;

use crate::common::{baseline_client_round, coverage_aggregate, ContribParams, Contribution};

/// Which globally sparse baseline to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalSparseVariant {
    /// PruneFL with the given shared sparse ratio and re-pruning period.
    PruneFl { ratio: f64, reprune_every: usize },
    /// Complement sparsification with the given shared ratio.
    Cs { ratio: f64 },
}

impl GlobalSparseVariant {
    fn label(&self) -> &'static str {
        match self {
            GlobalSparseVariant::PruneFl { .. } => "PruneFL",
            GlobalSparseVariant::Cs { .. } => "CS",
        }
    }

    fn ratio(&self) -> f64 {
        match self {
            GlobalSparseVariant::PruneFl { ratio, .. } | GlobalSparseVariant::Cs { ratio } => {
                *ratio
            }
        }
    }
}

/// Driver for the globally sparse family.
#[derive(Debug)]
pub struct GlobalSparse {
    variant: GlobalSparseVariant,
    global: Vec<f32>,
    mask: Option<UnitMask>,
    staged: Vec<Contribution>,
}

impl GlobalSparse {
    /// Creates a driver for the given variant.
    pub fn new(variant: GlobalSparseVariant) -> Self {
        Self {
            variant,
            global: Vec::new(),
            mask: None,
            staged: Vec::new(),
        }
    }

    /// PruneFL with the paper-style defaults (shared ratio 0.5, re-prune every
    /// 5 rounds).
    pub fn prunefl() -> Self {
        Self::new(GlobalSparseVariant::PruneFl {
            ratio: 0.5,
            reprune_every: 5,
        })
    }

    /// CS with the shared ratio 0.5 the paper uses in its comparison.
    pub fn cs() -> Self {
        Self::new(GlobalSparseVariant::Cs { ratio: 0.5 })
    }

    fn recompute_mask(&mut self, env: &FlEnv, rng: &mut StdRng) {
        let mask = PatternStrategy::Magnitude.build_mask(
            env.arch.unit_layout(),
            &self.global,
            None,
            self.variant.ratio(),
            0,
            rng,
        );
        self.mask = Some(mask);
    }
}

impl FlAlgorithm for GlobalSparse {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn setup(&mut self, env: &FlEnv) {
        self.global = env.initial_params();
        // The "powerful client" performs the initial magnitude pruning.
        let mut rng = fedlps_tensor::rng_from_seed(env.config.seed ^ 0x9121);
        self.recompute_mask(env, &mut rng);
        self.staged.clear();
    }

    fn begin_round(&mut self, env: &FlEnv, round: usize, _selected: &[usize], rng: &mut StdRng) {
        // CS refreshes its mask every round; PruneFL re-prunes periodically.
        // Round-level shared state belongs here, not in the (parallel,
        // immutable) client steps.
        match self.variant {
            GlobalSparseVariant::Cs { .. } => self.recompute_mask(env, rng),
            GlobalSparseVariant::PruneFl { reprune_every, .. } => {
                if reprune_every > 0 && round % reprune_every == 0 {
                    self.recompute_mask(env, rng);
                }
            }
        }
    }

    fn client_step(
        &self,
        env: &FlEnv,
        round: usize,
        client: usize,
        rng: &mut StdRng,
    ) -> ClientOutcome {
        let mask = self.mask.clone().expect("setup() not called");
        let device = env.fleet.available_profile(client, round);
        let mut params = self.global.clone();
        let (report, _summary) = baseline_client_round(
            env,
            client,
            &device,
            &mut params,
            Some(&mask),
            None,
            None,
            self.variant.ratio(),
            rng,
        );
        let contribution = Contribution {
            client_id: client,
            weight: env.train_size(client).max(1.0),
            update: ContribParams::Dense {
                params,
                param_mask: Some(mask.param_mask(env.arch.unit_layout())),
            },
        };
        ClientOutcome::new(report, contribution)
    }

    fn absorb_update(&mut self, _env: &FlEnv, _round: usize, update: ClientUpdate) {
        let contribution = *update
            .downcast::<Contribution>()
            .expect("global-sparse payload");
        self.staged.push(contribution);
    }

    fn absorb_update_stale(
        &mut self,
        env: &FlEnv,
        round: usize,
        update: ClientUpdate,
        _staleness: u32,
        weight: f64,
    ) {
        // Async absorption: discount the coverage-aggregation weight by the
        // server's staleness factor, then stage through the one absorb path.
        let mut contribution = *update
            .downcast::<Contribution>()
            .expect("global-sparse payload");
        contribution.weight *= weight;
        self.absorb_update(env, round, Box::new(contribution));
    }

    fn aggregate(&mut self, env: &FlEnv, _round: usize, _reports: &[ClientReport]) {
        coverage_aggregate(&mut self.global, &self.staged, env.arch.unit_layout());
        self.staged.clear();
    }

    fn evaluate_client(&self, env: &FlEnv, client: usize) -> EvalStats {
        // The deployed model is the shared sparse global model.
        match &self.mask {
            Some(mask) => {
                let sparse = mask.apply(env.arch.unit_layout(), &self.global);
                env.arch.evaluate(&sparse, env.test_data(client))
            }
            None => env.arch.evaluate(&self.global, env.test_data(client)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_data::scenario::{DatasetKind, ScenarioConfig};
    use fedlps_device::HeterogeneityLevel;
    use fedlps_sim::config::FlConfig;
    use fedlps_sim::runner::Simulator;

    fn sim() -> Simulator {
        Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::tiny(DatasetKind::MnistLike),
            HeterogeneityLevel::High,
            FlConfig::tiny(),
        ))
    }

    #[test]
    fn both_variants_run_at_half_ratio() {
        for mk in [GlobalSparse::prunefl, GlobalSparse::cs] {
            let s = sim();
            let mut algo = mk();
            let result = s.run(&mut algo);
            assert!(result.rounds.len() == FlConfig::tiny().rounds);
            assert!(
                (result.mean_sparse_ratio() - 0.5).abs() < 1e-9,
                "{}",
                algo.name()
            );
        }
    }

    #[test]
    fn shared_mask_is_used_for_every_client() {
        let s = sim();
        let mut algo = GlobalSparse::prunefl();
        algo.setup(s.env());
        let mask = algo.mask.clone().unwrap();
        assert!(mask.retained_units() < s.env().arch.unit_layout().total_units());
        // Evaluation applies the shared mask, so accuracy is well-defined.
        let stats = algo.evaluate_client(s.env(), 0);
        assert!(stats.samples > 0);
    }

    #[test]
    fn sparse_flops_are_cheaper_than_fedavg() {
        let s = sim();
        let mut sparse = GlobalSparse::cs();
        let sparse_result = s.run(&mut sparse);
        let s2 = sim();
        let mut dense = crate::dense::DenseFl::new(crate::dense::DenseVariant::FedAvg);
        let dense_result = s2.run(&mut dense);
        assert!(sparse_result.total_flops < dense_result.total_flops);
    }
}
