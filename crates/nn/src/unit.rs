//! The sparsifiable-unit abstraction.
//!
//! A *unit* is the paper's "network topology element at the sparse
//! granularity level": a hidden neuron, a convolution output channel or an
//! LSTM hidden cell. Each unit owns a set of parameter index ranges in the
//! flat parameter vector — typically its outgoing weight row, its bias and
//! the incoming columns of the next layer. Masking a unit zeroes all of those
//! parameters.
//!
//! [`UnitLayout`] is produced once per architecture and consumed by
//! `fedlps-sparse` (to expand unit masks into parameter masks and to compute
//! per-unit magnitude sums `|ω|_J`) and by the FLOP model (retained units per
//! layer determine the analytic cost).

use serde::{Deserialize, Serialize};

/// A contiguous `[start, start + len)` range of parameter indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamRange {
    pub start: usize,
    pub len: usize,
}

impl ParamRange {
    /// Creates a range covering `len` parameters starting at `start`.
    pub fn new(start: usize, len: usize) -> Self {
        Self { start, len }
    }

    /// End index (exclusive).
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// The parameter ranges owned by one sparsifiable unit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UnitParams {
    pub ranges: Vec<ParamRange>,
}

impl UnitParams {
    /// Total number of parameters owned by the unit.
    pub fn param_count(&self) -> usize {
        self.ranges.iter().map(|r| r.len).sum()
    }

    /// Sum of `|params[i]|` over the unit's parameters.
    pub fn magnitude_sum(&self, params: &[f32]) -> f32 {
        self.ranges
            .iter()
            .map(|r| {
                params[r.start..r.end()]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f32>()
            })
            .sum()
    }
}

/// All sparsifiable units of one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerUnits {
    /// Human-readable layer name (e.g. `"hidden0"`, `"conv2"`, `"lstm"`).
    pub name: String,
    /// One entry per unit in this layer.
    pub units: Vec<UnitParams>,
}

impl LayerUnits {
    /// Number of units in the layer.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the layer has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

/// The full unit layout of a model: its sparsifiable layers plus the total
/// parameter count (covering also non-sparsifiable parameters such as
/// embeddings and the output layer, which are always retained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitLayout {
    layers: Vec<LayerUnits>,
    total_params: usize,
}

impl UnitLayout {
    /// Builds a layout, checking that all ranges stay inside the parameter
    /// vector.
    pub fn new(layers: Vec<LayerUnits>, total_params: usize) -> Self {
        for layer in &layers {
            for unit in &layer.units {
                for r in &unit.ranges {
                    assert!(
                        r.end() <= total_params,
                        "unit range {:?} exceeds parameter count {}",
                        r,
                        total_params
                    );
                }
            }
        }
        Self {
            layers,
            total_params,
        }
    }

    /// Sparsifiable layers in network order.
    pub fn layers(&self) -> &[LayerUnits] {
        &self.layers
    }

    /// Total parameters of the model (sparsifiable or not).
    pub fn total_params(&self) -> usize {
        self.total_params
    }

    /// Total number of sparsifiable units `J` across all layers.
    pub fn total_units(&self) -> usize {
        self.layers.iter().map(|l| l.len()).sum()
    }

    /// Units per layer, in layer order.
    pub fn units_per_layer(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.len()).collect()
    }

    /// Maps a global unit index `j ∈ 0..J` to `(layer_index, unit_index)`.
    pub fn locate(&self, mut j: usize) -> (usize, usize) {
        for (li, layer) in self.layers.iter().enumerate() {
            if j < layer.len() {
                return (li, j);
            }
            j -= layer.len();
        }
        panic!("unit index out of range");
    }

    /// The parameter ranges of global unit `j`.
    pub fn unit(&self, j: usize) -> &UnitParams {
        let (li, ui) = self.locate(j);
        &self.layers[li].units[ui]
    }

    /// Iterates over `(global_unit_index, layer_index, &UnitParams)`.
    pub fn iter_units(&self) -> impl Iterator<Item = (usize, usize, &UnitParams)> {
        let mut global = 0;
        self.layers
            .iter()
            .enumerate()
            .flat_map(move |(li, layer)| layer.units.iter().map(move |u| (li, u)))
            .map(move |(li, u)| {
                let idx = global;
                global += 1;
                (idx, li, u)
            })
    }

    /// Per-unit magnitude sums `|ω|_J` (Eq. 8 of the paper): the j-th entry is
    /// the sum of absolute parameter values owned by unit j.
    pub fn magnitude_sums(&self, params: &[f32]) -> Vec<f32> {
        assert_eq!(params.len(), self.total_params, "parameter length mismatch");
        let mut out = Vec::with_capacity(self.total_units());
        for layer in &self.layers {
            for unit in &layer.units {
                out.push(unit.magnitude_sum(params));
            }
        }
        out
    }

    /// Expands a unit-level keep mask (length `J`, layer-major order) into a
    /// parameter-level multiplicative mask (length `total_params`).
    ///
    /// Parameters not owned by any unit (embeddings, classifier biases, …) are
    /// always kept.
    pub fn expand_mask(&self, unit_keep: &[bool]) -> Vec<f32> {
        assert_eq!(
            unit_keep.len(),
            self.total_units(),
            "unit mask length mismatch"
        );
        let mut mask = vec![1.0f32; self.total_params];
        let mut j = 0;
        for layer in &self.layers {
            for unit in &layer.units {
                if !unit_keep[j] {
                    for r in &unit.ranges {
                        for m in &mut mask[r.start..r.end()] {
                            *m = 0.0;
                        }
                    }
                }
                j += 1;
            }
        }
        mask
    }

    /// Number of retained units in every layer for a given unit-level mask.
    pub fn retained_per_layer(&self, unit_keep: &[bool]) -> Vec<usize> {
        assert_eq!(unit_keep.len(), self.total_units());
        let mut out = Vec::with_capacity(self.layers.len());
        let mut j = 0;
        for layer in &self.layers {
            let mut count = 0;
            for _ in 0..layer.len() {
                if unit_keep[j] {
                    count += 1;
                }
                j += 1;
            }
            out.push(count);
        }
        out
    }

    /// Number of *parameters* kept by a unit-level mask (counting always-kept
    /// non-unit parameters too). This is the quantity behind the paper's
    /// communication-volume accounting.
    pub fn retained_params(&self, unit_keep: &[bool]) -> usize {
        let mask = self.expand_mask(unit_keep);
        mask.iter().filter(|&&m| m != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_layout() -> UnitLayout {
        // 2 layers, 2 + 3 units, 20 total params; unit params do not overlap.
        let l0 = LayerUnits {
            name: "hidden0".into(),
            units: vec![
                UnitParams {
                    ranges: vec![ParamRange::new(0, 2), ParamRange::new(10, 1)],
                },
                UnitParams {
                    ranges: vec![ParamRange::new(2, 2), ParamRange::new(11, 1)],
                },
            ],
        };
        let l1 = LayerUnits {
            name: "hidden1".into(),
            units: vec![
                UnitParams {
                    ranges: vec![ParamRange::new(4, 2)],
                },
                UnitParams {
                    ranges: vec![ParamRange::new(6, 2)],
                },
                UnitParams {
                    ranges: vec![ParamRange::new(8, 2)],
                },
            ],
        };
        UnitLayout::new(vec![l0, l1], 20)
    }

    #[test]
    fn totals_and_locate() {
        let layout = toy_layout();
        assert_eq!(layout.total_units(), 5);
        assert_eq!(layout.units_per_layer(), vec![2, 3]);
        assert_eq!(layout.locate(0), (0, 0));
        assert_eq!(layout.locate(1), (0, 1));
        assert_eq!(layout.locate(2), (1, 0));
        assert_eq!(layout.locate(4), (1, 2));
    }

    #[test]
    #[should_panic]
    fn locate_out_of_range_panics() {
        toy_layout().locate(5);
    }

    #[test]
    fn expand_mask_zeroes_only_masked_units() {
        let layout = toy_layout();
        let mask = layout.expand_mask(&[true, false, true, true, false]);
        // Unit 1 owns params 2,3,11; unit 4 owns params 8,9.
        for i in [2usize, 3, 11, 8, 9] {
            assert_eq!(mask[i], 0.0, "param {i}");
        }
        // Everything else (including non-unit params 12..20) stays 1.
        for i in [0usize, 1, 4, 5, 6, 7, 10, 12, 19] {
            assert_eq!(mask[i], 1.0, "param {i}");
        }
    }

    #[test]
    fn retained_counts() {
        let layout = toy_layout();
        let keep = [true, false, true, true, false];
        assert_eq!(layout.retained_per_layer(&keep), vec![1, 2]);
        // 20 total - 3 (unit1) - 2 (unit4) = 15.
        assert_eq!(layout.retained_params(&keep), 15);
    }

    #[test]
    fn magnitude_sums_per_unit() {
        let layout = toy_layout();
        let mut params = vec![0.0f32; 20];
        params[0] = 1.0;
        params[1] = -2.0;
        params[10] = 0.5;
        params[8] = 3.0;
        let sums = layout.magnitude_sums(&params);
        assert_eq!(sums.len(), 5);
        assert!((sums[0] - 3.5).abs() < 1e-6);
        assert!((sums[4] - 3.0).abs() < 1e-6);
        assert_eq!(sums[1], 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_range_rejected() {
        let l = LayerUnits {
            name: "bad".into(),
            units: vec![UnitParams {
                ranges: vec![ParamRange::new(18, 5)],
            }],
        };
        UnitLayout::new(vec![l], 20);
    }

    #[test]
    fn full_keep_mask_retains_everything() {
        let layout = toy_layout();
        let keep = vec![true; layout.total_units()];
        assert_eq!(layout.retained_params(&keep), 20);
        assert!(layout.expand_mask(&keep).iter().all(|&m| m == 1.0));
    }
}
