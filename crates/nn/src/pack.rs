//! Physically packed submodels.
//!
//! Masked-dense training simulates a sparse client by zeroing dropped units
//! and running the **full** model, so a 25%-ratio client burns nearly the
//! wall-clock of a dense one while the FLOP model credits it with a fraction.
//! A [`PackedModel`] closes that gap: it is a *smaller instance of the same
//! architecture* retaining only the kept units, plus the index map that
//! gathers the kept parameters out of the full vector and scatters packed
//! gradients/deltas back into full coordinates.
//!
//! Because every architecture's forward/backward accumulates only nonzero
//! terms in ascending index order (the matmul variants skip `a == 0.0`
//! operands, ReLU's subgradient at 0 is 0, and dropped units own their
//! outgoing connections where the recurrence demands it), the packed model
//! reproduces the masked-dense computation **bit for bit**: it visits exactly
//! the surviving nonzero terms in exactly the same order. The property tests
//! in `fedlps-sim`/`fedlps-core` pin this equivalence per architecture.

use std::sync::Arc;

use crate::model::ModelArch;

/// Kept-unit index lists for every sparsifiable layer, stored flat: one
/// backing vector plus per-layer offsets, instead of one `Vec` per layer.
///
/// This is the currency between the mask-compilation side (`fedlps_sparse`'s
/// `SubmodelPlan`) and [`ModelArch::pack`]: plans are built per client per
/// round, so the flat layout keeps plan construction to two allocations
/// regardless of depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeptUnits {
    units: Vec<usize>,
    /// `offsets[i]..offsets[i + 1]` spans layer `i`; `len == layers + 1`.
    offsets: Vec<usize>,
}

impl Default for KeptUnits {
    fn default() -> Self {
        Self::with_capacity(0, 0)
    }
}

impl KeptUnits {
    /// An empty selection with room for `layers` layers of `units` total
    /// kept units.
    pub fn with_capacity(layers: usize, units: usize) -> Self {
        let mut offsets = Vec::with_capacity(layers + 1);
        offsets.push(0);
        Self {
            units: Vec::with_capacity(units),
            offsets,
        }
    }

    /// Appends the next layer's ascending kept-unit indices.
    pub fn push_layer(&mut self, kept: impl IntoIterator<Item = usize>) {
        self.units.extend(kept);
        self.offsets.push(self.units.len());
    }

    /// Builds from per-layer lists (test/call-site convenience).
    pub fn from_nested(layers: &[Vec<usize>]) -> Self {
        let mut kept = Self::with_capacity(layers.len(), layers.iter().map(Vec::len).sum());
        for layer in layers {
            kept.push_layer(layer.iter().copied());
        }
        kept
    }

    /// Number of layers recorded.
    pub fn num_layers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ascending kept-unit indices of layer `i`.
    pub fn layer(&self, i: usize) -> &[usize] {
        &self.units[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates the per-layer index lists in layer order.
    pub fn layers(&self) -> impl Iterator<Item = &[usize]> + '_ {
        (0..self.num_layers()).map(move |i| self.layer(i))
    }

    /// Layer `i`'s list when it exists, else the full `0..all` range —
    /// how `pack` implementations address layers the mask never drops
    /// (e.g. the classifier) without materializing `(0..all).collect()`.
    pub fn layer_or_all(&self, i: usize, all: usize) -> KeptRange<'_> {
        if i < self.num_layers() {
            KeptRange::Listed(self.layer(i))
        } else {
            KeptRange::All(all)
        }
    }

    /// Number of retained units per layer.
    pub fn retained_per_layer(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Whether every layer keeps at least one unit — the structural
    /// condition for a packed submodel to be a connected network.
    pub fn is_executable(&self) -> bool {
        self.offsets.windows(2).all(|w| w[1] > w[0])
    }
}

/// One layer's kept units: an explicit ascending list, or the whole
/// `0..len` range, iterated in place.
#[derive(Debug, Clone, Copy)]
pub enum KeptRange<'a> {
    /// Explicit ascending kept-unit indices.
    Listed(&'a [usize]),
    /// All units of a layer of the given width.
    All(usize),
}

impl KeptRange<'_> {
    /// Number of selected units.
    pub fn len(&self) -> usize {
        match self {
            KeptRange::Listed(s) => s.len(),
            KeptRange::All(n) => *n,
        }
    }

    /// Whether the selection is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th selected unit.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            KeptRange::Listed(s) => s[i],
            KeptRange::All(_) => i,
        }
    }

    /// Iterates the selected units in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let this = *self;
        (0..this.len()).map(move |i| this.get(i))
    }
}

/// A compiled packed submodel: the physically small architecture and the
/// strictly ascending map from packed parameter indices to full ones.
///
/// The gather map is `Arc`-shared so sparse uploads can reference the
/// coordinates of their delta without copying the index list per round.
pub struct PackedModel {
    arch: Box<dyn ModelArch>,
    gather: Arc<Vec<u32>>,
    full_len: usize,
}

impl std::fmt::Debug for PackedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedModel")
            .field("arch", &self.arch.name())
            .field("packed_len", &self.gather.len())
            .field("full_len", &self.full_len)
            .finish()
    }
}

impl PackedModel {
    /// Wraps a packed architecture and its gather map.
    ///
    /// # Panics
    /// Panics if the map's length disagrees with the packed architecture's
    /// parameter count, if it is not strictly ascending, or if it addresses
    /// outside the full vector. Ascending order is load-bearing: reductions
    /// over the packed vector (gradient-norm clipping, residual staging)
    /// must visit coordinates in the same order as full-vector loops do.
    pub fn new(arch: Box<dyn ModelArch>, gather: Vec<u32>, full_len: usize) -> Self {
        assert_eq!(
            gather.len(),
            arch.param_count(),
            "gather map must cover every packed parameter"
        );
        for w in gather.windows(2) {
            assert!(w[0] < w[1], "gather map must be strictly ascending");
        }
        if let Some(&last) = gather.last() {
            assert!((last as usize) < full_len, "gather map exceeds full model");
        }
        Self {
            arch,
            gather: Arc::new(gather),
            full_len,
        }
    }

    /// The physically small architecture.
    pub fn arch(&self) -> &dyn ModelArch {
        &*self.arch
    }

    /// Number of packed parameters.
    pub fn packed_len(&self) -> usize {
        self.gather.len()
    }

    /// Number of parameters of the full model this submodel was packed from.
    pub fn full_len(&self) -> usize {
        self.full_len
    }

    /// The strictly ascending packed-index → full-index map.
    pub fn gather_map(&self) -> &[u32] {
        &self.gather
    }

    /// A shared handle to the gather map — the coordinate list a sparse
    /// upload travels with.
    pub fn gather_arc(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.gather)
    }

    /// Gathers the kept parameters of `full` into `out` (overwritten).
    pub fn gather_params(&self, full: &[f32], out: &mut Vec<f32>) {
        assert_eq!(full.len(), self.full_len, "full parameter length mismatch");
        out.clear();
        out.extend(self.gather.iter().map(|&i| full[i as usize]));
    }

    /// [`gather_params`](Self::gather_params) into a caller-provided slice of
    /// exactly [`packed_len`](Self::packed_len) elements — the arena-backed
    /// variant the packed client step uses so gathering never allocates.
    pub fn gather_params_into(&self, full: &[f32], out: &mut [f32]) {
        assert_eq!(full.len(), self.full_len, "full parameter length mismatch");
        assert_eq!(out.len(), self.gather.len(), "packed slice length mismatch");
        for (o, &i) in out.iter_mut().zip(self.gather.iter()) {
            *o = full[i as usize];
        }
    }

    /// Writes packed values back into their full coordinates (assignment).
    pub fn scatter_params(&self, packed: &[f32], full: &mut [f32]) {
        assert_eq!(packed.len(), self.gather.len());
        assert_eq!(full.len(), self.full_len);
        for (&i, &v) in self.gather.iter().zip(packed.iter()) {
            full[i as usize] = v;
        }
    }

    /// Accumulates a packed gradient into the full gradient buffer.
    ///
    /// Coordinates outside the packed set are untouched — the masked-dense
    /// backward pass produces exact zeros there, so scattering into a zeroed
    /// buffer reproduces it bitwise.
    pub fn scatter_add(&self, packed: &[f32], full: &mut [f32]) {
        assert_eq!(packed.len(), self.gather.len());
        assert_eq!(full.len(), self.full_len);
        for (&i, &v) in self.gather.iter().zip(packed.iter()) {
            full[i as usize] += v;
        }
    }
}

/// Builder used by the architectures' `pack` implementations: collects full
/// parameter indices section by section and checks the ascending invariant
/// once at the end.
#[derive(Debug, Default)]
pub(crate) struct GatherMap {
    indices: Vec<u32>,
}

impl GatherMap {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Self {
            indices: Vec::with_capacity(n),
        }
    }

    /// Appends one full-model parameter index.
    #[inline]
    pub(crate) fn push(&mut self, full_index: usize) {
        self.indices.push(full_index as u32);
    }

    /// Appends a contiguous run `[start, start + len)`.
    pub(crate) fn push_range(&mut self, start: usize, len: usize) {
        for i in start..start + len {
            self.push(i);
        }
    }

    pub(crate) fn into_vec(self) -> Vec<u32> {
        self.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::{Mlp, MlpConfig};

    fn arch() -> Box<dyn ModelArch> {
        Box::new(Mlp::new(MlpConfig {
            input_dim: 2,
            hidden: vec![2],
            num_classes: 2,
        }))
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let arch = arch();
        let n = arch.param_count(); // 2*2 + 2 + 2*2 + 2 = 12
        let gather: Vec<u32> = (0..n as u32).collect();
        let packed = PackedModel::new(arch, gather, 20);
        let full: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let mut p = Vec::new();
        packed.gather_params(&full, &mut p);
        assert_eq!(p.len(), n);
        let mut back = vec![0.0f32; 20];
        packed.scatter_params(&p, &mut back);
        assert_eq!(&back[..n], &full[..n]);
        assert!(back[n..].iter().all(|&v| v == 0.0));
        packed.scatter_add(&p, &mut back);
        assert_eq!(back[1], 2.0, "scatter_add accumulates");
    }

    #[test]
    #[should_panic]
    fn non_ascending_map_rejected() {
        let arch = arch();
        let n = arch.param_count();
        let mut gather: Vec<u32> = (0..n as u32).collect();
        gather.swap(0, 1);
        let _ = PackedModel::new(arch, gather, 40);
    }

    #[test]
    #[should_panic]
    fn out_of_range_map_rejected() {
        let arch = arch();
        let n = arch.param_count();
        let gather: Vec<u32> = (0..n as u32).collect();
        let _ = PackedModel::new(arch, gather, n - 1);
    }
}
