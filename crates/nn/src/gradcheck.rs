//! Finite-difference gradient checking.
//!
//! Every architecture's hand-written backward pass is validated against a
//! central-difference approximation of the loss. The checker is exported (not
//! test-only) so downstream crates can verify custom loss compositions — the
//! FedLPS importance-associated loss in `fedlps-core` reuses it.

use fedlps_data::dataset::Dataset;
use rand::Rng;

use crate::model::ModelArch;

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Maximum relative error observed across the checked coordinates.
    pub max_rel_error: f64,
    /// Number of coordinates checked.
    pub checked: usize,
}

/// Compares the analytic gradient of `arch` on a minibatch against central
/// finite differences at `num_coords` randomly chosen coordinates.
///
/// Returns the worst relative error `|analytic - numeric| / max(1, |analytic|,
/// |numeric|)`.
pub fn check_gradients(
    arch: &dyn ModelArch,
    params: &[f32],
    data: &Dataset,
    indices: &[usize],
    num_coords: usize,
    rng: &mut impl Rng,
) -> GradCheckReport {
    let mut grad = vec![0.0f32; params.len()];
    arch.loss_and_grad(params, data, indices, &mut grad);

    let eps = 1e-3f32;
    let mut max_rel_error: f64 = 0.0;
    let mut checked = 0;
    let mut perturbed = params.to_vec();
    for _ in 0..num_coords {
        let i = rng.gen_range(0..params.len());
        perturbed[i] = params[i] + eps;
        let mut scratch = vec![0.0f32; params.len()];
        let plus = arch
            .loss_and_grad(&perturbed, data, indices, &mut scratch)
            .loss;
        perturbed[i] = params[i] - eps;
        scratch.fill(0.0);
        let minus = arch
            .loss_and_grad(&perturbed, data, indices, &mut scratch)
            .loss;
        perturbed[i] = params[i];

        let numeric = (plus - minus) / (2.0 * eps as f64);
        let analytic = grad[i] as f64;
        let denom = analytic.abs().max(numeric.abs()).max(1.0);
        let rel = (analytic - numeric).abs() / denom;
        if rel > max_rel_error {
            max_rel_error = rel;
        }
        checked += 1;
    }
    GradCheckReport {
        max_rel_error,
        checked,
    }
}

/// Convenience wrapper asserting that the analytic gradients match finite
/// differences to within `tol`.
pub fn assert_gradients_close(
    arch: &dyn ModelArch,
    params: &[f32],
    data: &Dataset,
    indices: &[usize],
    num_coords: usize,
    tol: f64,
    rng: &mut impl Rng,
) {
    let report = check_gradients(arch, params, data, indices, num_coords, rng);
    assert!(
        report.max_rel_error < tol,
        "gradient check failed for {}: max relative error {} over {} coordinates",
        arch.name(),
        report.max_rel_error,
        report.checked
    );
}
