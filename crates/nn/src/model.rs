//! The [`ModelArch`] trait: an architecture is a pure function of a flat
//! parameter vector.
//!
//! Federated-learning algorithms own parameters as `Vec<f32>` and hand them to
//! the architecture for loss/gradient evaluation. Keeping parameters outside
//! the architecture makes aggregation (weighted means of vectors), masking
//! (element-wise products) and personalization (one vector per client) trivial
//! and uniform across every algorithm in the workspace.

use fedlps_data::dataset::{Dataset, InputKind};
use fedlps_data::scenario::DatasetKind;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::convnet::{ConvNet, ConvNetConfig};
use crate::lstm::{LstmLm, LstmLmConfig};
use crate::mlp::{Mlp, MlpConfig};
use crate::unit::UnitLayout;

/// Loss/accuracy statistics of a forward pass over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl EvalStats {
    /// Evaluation of an empty dataset.
    pub fn empty() -> Self {
        Self {
            loss: 0.0,
            accuracy: 0.0,
            samples: 0,
        }
    }

    /// Sample-weighted combination of two evaluations.
    pub fn merge(self, other: EvalStats) -> EvalStats {
        let n = self.samples + other.samples;
        if n == 0 {
            return EvalStats::empty();
        }
        let w1 = self.samples as f64;
        let w2 = other.samples as f64;
        EvalStats {
            loss: (self.loss * w1 + other.loss * w2) / (w1 + w2),
            accuracy: (self.accuracy * w1 + other.accuracy * w2) / (w1 + w2),
            samples: n,
        }
    }
}

/// Loss/accuracy statistics of one training minibatch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean cross-entropy loss over the minibatch.
    pub loss: f64,
    /// Top-1 training accuracy over the minibatch.
    pub accuracy: f64,
}

/// A differentiable model architecture over a flat parameter vector.
pub trait ModelArch: Send + Sync {
    /// Architecture name used in logs (e.g. `"mlp[64,64]"`).
    fn name(&self) -> String;

    /// Number of parameters in the flat vector.
    fn param_count(&self) -> usize;

    /// Which parameter ranges belong to which sparsifiable unit.
    fn unit_layout(&self) -> &UnitLayout;

    /// Draws an initial parameter vector.
    fn init_params(&self, rng: &mut StdRng) -> Vec<f32>;

    /// Computes the mean minibatch loss and *accumulates* `d loss / d params`
    /// into `grad` (averaged over the minibatch).
    ///
    /// `indices` selects the minibatch rows from `data`.
    fn loss_and_grad(
        &self,
        params: &[f32],
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> TrainStats;

    /// Forward-only evaluation over a whole dataset.
    fn evaluate(&self, params: &[f32], data: &Dataset) -> EvalStats;

    /// Analytic FLOPs of one *training* sample (forward + backward) when the
    /// given number of units is retained in each sparsifiable layer.
    fn train_flops_per_sample(&self, retained_per_layer: &[usize]) -> f64;

    /// Analytic FLOPs of one *inference* sample; by convention a third of the
    /// training cost (forward only), matching the accounting in \[45\].
    fn inference_flops_per_sample(&self, retained_per_layer: &[usize]) -> f64 {
        self.train_flops_per_sample(retained_per_layer) / 3.0
    }

    /// Dense-model training FLOPs per sample (all units retained).
    fn dense_train_flops_per_sample(&self) -> f64 {
        let all = self.unit_layout().units_per_layer();
        self.train_flops_per_sample(&all)
    }

    /// The parameter index range of the output/classifier layer.
    ///
    /// Personalization baselines (FedPer, FedRep, FedP3) keep this "head"
    /// local to each client while sharing the rest of the model. The default
    /// is an empty range at the end of the vector; each architecture overrides
    /// it with its real classifier block.
    fn classifier_params(&self) -> std::ops::Range<usize> {
        self.param_count()..self.param_count()
    }

    /// Compiles a physically packed submodel retaining only the listed units
    /// (one ascending index list per sparsifiable layer, matching
    /// [`unit_layout`](Self::unit_layout), in the flat
    /// [`KeptUnits`](crate::pack::KeptUnits) layout).
    ///
    /// Returns `None` when the architecture does not support packing or the
    /// kept set is not executable (e.g. an empty layer would disconnect the
    /// network); callers then fall back to masked-dense execution. Packed
    /// training is bit-identical to masked-dense training — see
    /// [`pack`](crate::pack) for why.
    fn pack(&self, kept: &crate::pack::KeptUnits) -> Option<crate::pack::PackedModel> {
        let _ = kept;
        None
    }
}

/// Selectable model families, mirroring the paper's per-dataset backbones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Multi-layer perceptron with the given hidden widths.
    Mlp { hidden: Vec<usize> },
    /// Convolutional network with the given channel widths (one conv block per
    /// entry; a 2x2 average pool follows every second block).
    ConvNet { channels: Vec<usize>, hidden: usize },
    /// LSTM language model with the given embedding and hidden sizes.
    LstmLm { embed: usize, hidden: usize },
}

impl ModelKind {
    /// The backbone the reproduction uses for each dataset scenario, mirroring
    /// the paper's choices (CNN for MNIST, VGG-style stacks of increasing depth
    /// for CIFAR-10/100 and Tiny-ImageNet, an LSTM for Reddit) at reduced width.
    pub fn for_dataset(kind: DatasetKind) -> ModelKind {
        match kind {
            DatasetKind::MnistLike => ModelKind::Mlp {
                hidden: vec![128, 64],
            },
            DatasetKind::Cifar10Like => ModelKind::ConvNet {
                channels: vec![12, 16],
                hidden: 48,
            },
            DatasetKind::Cifar100Like => ModelKind::ConvNet {
                channels: vec![12, 16, 16],
                hidden: 64,
            },
            DatasetKind::TinyImagenetLike => ModelKind::ConvNet {
                channels: vec![12, 16, 16, 24],
                hidden: 80,
            },
            DatasetKind::RedditLike => ModelKind::LstmLm {
                embed: 16,
                hidden: 32,
            },
        }
    }

    /// Builds the architecture for a dataset with the given input shape and
    /// class count.
    pub fn build(&self, input: InputKind, num_classes: usize) -> Box<dyn ModelArch> {
        match self {
            ModelKind::Mlp { hidden } => Box::new(Mlp::new(MlpConfig {
                input_dim: input.feature_dim(),
                hidden: hidden.clone(),
                num_classes,
            })),
            ModelKind::ConvNet { channels, hidden } => {
                let (c, h, w) = match input {
                    InputKind::Image {
                        channels,
                        height,
                        width,
                    } => (channels, height, width),
                    // Fall back to a 1-channel square-ish layout for vector inputs.
                    other => {
                        let dim = other.feature_dim();
                        let side = (dim as f64).sqrt().floor() as usize;
                        (1, side.max(1), dim / side.max(1))
                    }
                };
                Box::new(ConvNet::new(ConvNetConfig {
                    in_channels: c,
                    height: h,
                    width: w,
                    channels: channels.clone(),
                    hidden: *hidden,
                    num_classes,
                }))
            }
            ModelKind::LstmLm { embed, hidden } => {
                let (len, vocab) = match input {
                    InputKind::Sequence { len, vocab } => (len, vocab),
                    other => (other.feature_dim(), num_classes),
                };
                Box::new(LstmLm::new(LstmLmConfig {
                    vocab,
                    seq_len: len,
                    embed: *embed,
                    hidden: *hidden,
                    num_classes,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_stats_merge_weights_by_samples() {
        let a = EvalStats {
            loss: 1.0,
            accuracy: 1.0,
            samples: 1,
        };
        let b = EvalStats {
            loss: 3.0,
            accuracy: 0.0,
            samples: 3,
        };
        let m = a.merge(b);
        assert!((m.loss - 2.5).abs() < 1e-9);
        assert!((m.accuracy - 0.25).abs() < 1e-9);
        assert_eq!(m.samples, 4);
        assert_eq!(EvalStats::empty().merge(EvalStats::empty()).samples, 0);
    }

    #[test]
    fn model_kind_per_dataset() {
        assert!(matches!(
            ModelKind::for_dataset(DatasetKind::MnistLike),
            ModelKind::Mlp { .. }
        ));
        assert!(matches!(
            ModelKind::for_dataset(DatasetKind::TinyImagenetLike),
            ModelKind::ConvNet { .. }
        ));
        assert!(matches!(
            ModelKind::for_dataset(DatasetKind::RedditLike),
            ModelKind::LstmLm { .. }
        ));
    }

    #[test]
    fn build_all_kinds() {
        let mlp = ModelKind::Mlp { hidden: vec![8] }.build(InputKind::Vector { dim: 12 }, 4);
        assert!(mlp.param_count() > 0);
        let cnn = ModelKind::ConvNet {
            channels: vec![4],
            hidden: 8,
        }
        .build(
            InputKind::Image {
                channels: 1,
                height: 6,
                width: 6,
            },
            4,
        );
        assert!(cnn.param_count() > 0);
        let lm = ModelKind::LstmLm {
            embed: 4,
            hidden: 6,
        }
        .build(InputKind::Sequence { len: 5, vocab: 11 }, 11);
        assert!(lm.param_count() > 0);
    }
}
