//! From-scratch neural networks with *unit-level* structured sparsity support.
//!
//! The FedLPS paper sparsifies models at the granularity of "structurally
//! indivisible elements" — neurons of fully-connected layers, output channels
//! of convolutions, hidden units of recurrent cells. This crate provides:
//!
//! * three model families matching the paper's backbones at laptop scale —
//!   [`mlp::Mlp`] (the MNIST CNN/MLP analogue), [`convnet::ConvNet`] (the
//!   VGG11/13/16 analogue with configurable depth) and [`lstm::LstmLm`] (the
//!   Reddit 2-layer-LSTM analogue);
//! * a uniform [`model::ModelArch`] interface: parameters live in a flat
//!   `Vec<f32>` owned by the federated-learning algorithms, and the
//!   architecture is a pure function computing losses, gradients and
//!   predictions from that vector — which makes aggregation, masking and
//!   personalization trivial to express;
//! * a [`unit::UnitLayout`] describing which parameter ranges belong to which
//!   sparsifiable unit, used by `fedlps-sparse` to expand unit masks into
//!   parameter masks;
//! * analytic FLOP counting (`flops`) parameterised by the number of retained
//!   units per layer — the same accounting the paper uses for its cost model.
//!
//! Gradients are implemented manually per architecture and validated against
//! finite differences in [`gradcheck`].

pub mod activation;
pub mod convnet;
pub mod flops;
pub mod gradcheck;
pub mod lstm;
pub mod mlp;
pub mod model;
pub mod pack;
pub mod sgd;
pub mod unit;

pub use model::{EvalStats, ModelArch, ModelKind, TrainStats};
pub use pack::PackedModel;
pub use sgd::SgdConfig;
pub use unit::{LayerUnits, UnitLayout};
