//! Scalar activation functions and their derivatives.

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of ReLU with respect to its input, expressed in terms of the
/// *pre-activation* value.
#[inline]
pub fn relu_grad(pre: f32) -> f32 {
    if pre > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its *output* value.
#[inline]
pub fn sigmoid_grad_from_output(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Hyperbolic tangent.
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its *output* value.
#[inline]
pub fn tanh_grad_from_output(y: f32) -> f32 {
    1.0 - y * y
}

/// Applies softmax followed by cross-entropy against an integer label.
///
/// Returns `(loss, probs)`; the gradient with respect to the logits is
/// `probs - one_hot(label)`, which callers compute in place.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let mut probs = vec![0.0; logits.len()];
    fedlps_tensor::ops::softmax_into(&mut probs, logits);
    let p = probs[label].max(1e-12);
    (-p.ln(), probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_tensor::approx_eq;

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu_grad(3.0), 1.0);
        assert_eq!(relu_grad(-3.0), 0.0);
    }

    #[test]
    fn sigmoid_symmetry_and_grad() {
        assert!(approx_eq(sigmoid(0.0), 0.5, 1e-6));
        assert!(approx_eq(sigmoid(2.0) + sigmoid(-2.0), 1.0, 1e-6));
        let y = sigmoid(0.7);
        // Finite-difference check of the derivative.
        let eps = 1e-3;
        let num = (sigmoid(0.7 + eps) - sigmoid(0.7 - eps)) / (2.0 * eps);
        assert!(approx_eq(sigmoid_grad_from_output(y), num, 1e-3));
    }

    #[test]
    fn tanh_grad_matches_finite_difference() {
        let x = -0.4f32;
        let y = tanh(x);
        let eps = 1e-3;
        let num = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
        assert!(approx_eq(tanh_grad_from_output(y), num, 1e-3));
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss, probs) = softmax_cross_entropy(&[10.0, -10.0, -10.0], 0);
        assert!(loss < 1e-3);
        assert!(approx_eq(probs.iter().sum::<f32>(), 1.0, 1e-5));
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, -10.0, -10.0], 1);
        assert!(loss_wrong > 5.0);
    }
}
