//! Convolutional network with channel-level sparsifiable units.
//!
//! This is the VGG11/13/16 analogue of the reproduction: a configurable stack
//! of 3x3 convolution blocks (ReLU, 2x2 average pooling while the spatial
//! resolution allows it), global average pooling, one hidden dense layer and a
//! dense classifier. The sparsifiable units are the *output channels* of each
//! convolution and the neurons of the hidden dense layer — exactly the width
//! scaling granularity used by HeteroFL / Fjord / FedRolex and by FedLPS
//! itself.

use fedlps_data::dataset::Dataset;
use fedlps_tensor::Initializer;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{relu, relu_grad, softmax_cross_entropy};
use crate::flops::{conv_layer_flops, dense_layer_flops, TRAIN_FLOPS_MULTIPLIER};
use crate::model::{EvalStats, ModelArch, TrainStats};
use crate::pack::{GatherMap, KeptUnits, PackedModel};
use crate::unit::{LayerUnits, ParamRange, UnitLayout, UnitParams};

const KERNEL: usize = 3;

/// Configuration of the convolutional backbone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvNetConfig {
    /// Input channels (1 for the MNIST-like scenario, 3 for CIFAR-like).
    pub in_channels: usize,
    /// Input spatial height.
    pub height: usize,
    /// Input spatial width.
    pub width: usize,
    /// Output channels of each conv block (the block count sets the depth —
    /// the VGG13/16 analogues simply use more entries).
    pub channels: Vec<usize>,
    /// Width of the hidden dense layer before the classifier.
    pub hidden: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

#[derive(Debug, Clone, Copy)]
struct ConvLayerMeta {
    w_start: usize,
    b_start: usize,
    in_channels: usize,
    out_channels: usize,
    in_h: usize,
    in_w: usize,
    /// Spatial size after the (optional) pooling of this block.
    out_h: usize,
    out_w: usize,
    pooled: bool,
}

#[derive(Debug, Clone, Copy)]
struct DenseMeta {
    w_start: usize,
    b_start: usize,
    in_dim: usize,
    out_dim: usize,
}

/// Convolutional network.
#[derive(Debug, Clone)]
pub struct ConvNet {
    config: ConvNetConfig,
    convs: Vec<ConvLayerMeta>,
    dense_hidden: DenseMeta,
    dense_out: DenseMeta,
    layout: UnitLayout,
    param_count: usize,
}

impl ConvNet {
    /// Builds the architecture, computing spatial sizes and parameter offsets.
    pub fn new(config: ConvNetConfig) -> Self {
        assert!(
            !config.channels.is_empty(),
            "at least one conv block required"
        );
        assert!(
            config.height >= KERNEL && config.width >= KERNEL,
            "input too small"
        );
        let mut convs = Vec::new();
        let mut offset = 0;
        let mut in_c = config.in_channels;
        let mut h = config.height;
        let mut w = config.width;
        for &out_c in &config.channels {
            let w_len = out_c * in_c * KERNEL * KERNEL;
            // Pool while the spatial size still allows it, halving resolution.
            let pooled = h >= 4 && w >= 4;
            let (out_h, out_w) = if pooled { (h / 2, w / 2) } else { (h, w) };
            convs.push(ConvLayerMeta {
                w_start: offset,
                b_start: offset + w_len,
                in_channels: in_c,
                out_channels: out_c,
                in_h: h,
                in_w: w,
                out_h,
                out_w,
                pooled,
            });
            offset += w_len + out_c;
            in_c = out_c;
            h = out_h;
            w = out_w;
        }
        let last_c = in_c;
        let dense_hidden = DenseMeta {
            w_start: offset,
            b_start: offset + config.hidden * last_c,
            in_dim: last_c,
            out_dim: config.hidden,
        };
        offset += config.hidden * last_c + config.hidden;
        let dense_out = DenseMeta {
            w_start: offset,
            b_start: offset + config.num_classes * config.hidden,
            in_dim: config.hidden,
            out_dim: config.num_classes,
        };
        offset += config.num_classes * config.hidden + config.num_classes;
        let param_count = offset;

        // Unit layout: conv output channels + hidden dense neurons.
        let mut unit_layers = Vec::new();
        for (li, conv) in convs.iter().enumerate() {
            let per_channel = conv.in_channels * KERNEL * KERNEL;
            let units = (0..conv.out_channels)
                .map(|oc| UnitParams {
                    ranges: vec![
                        ParamRange::new(conv.w_start + oc * per_channel, per_channel),
                        ParamRange::new(conv.b_start + oc, 1),
                    ],
                })
                .collect();
            unit_layers.push(LayerUnits {
                name: format!("conv{li}"),
                units,
            });
        }
        let units = (0..dense_hidden.out_dim)
            .map(|j| UnitParams {
                ranges: vec![
                    ParamRange::new(
                        dense_hidden.w_start + j * dense_hidden.in_dim,
                        dense_hidden.in_dim,
                    ),
                    ParamRange::new(dense_hidden.b_start + j, 1),
                ],
            })
            .collect();
        unit_layers.push(LayerUnits {
            name: "dense_hidden".into(),
            units,
        });
        let layout = UnitLayout::new(unit_layers, param_count);

        Self {
            config,
            convs,
            dense_hidden,
            dense_out,
            layout,
            param_count,
        }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &ConvNetConfig {
        &self.config
    }

    /// Forward pass for one sample. Returns the per-layer caches needed by the
    /// backward pass: the input of each conv block, the pre-activation of each
    /// conv block, the GAP feature vector, the hidden pre-activation and the
    /// logits.
    fn forward_sample(&self, params: &[f32], x: &[f32]) -> SampleCache {
        let mut inputs: Vec<Vec<f32>> = vec![x.to_vec()];
        let mut pres: Vec<Vec<f32>> = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            let input = inputs.last().unwrap();
            let pre = conv_forward(params, conv, input);
            // ReLU then optional pooling.
            let mut act: Vec<f32> = pre.iter().map(|&v| relu(v)).collect();
            if conv.pooled {
                act = avg_pool(&act, conv.out_channels, conv.in_h, conv.in_w);
            }
            pres.push(pre);
            inputs.push(act);
        }
        let last_conv = self.convs.last().unwrap();
        let spatial = last_conv.out_h * last_conv.out_w;
        let final_act = inputs.last().unwrap();
        let mut feat = vec![0.0f32; last_conv.out_channels];
        for (c, f) in feat.iter_mut().enumerate() {
            let mut acc = 0.0;
            for s in 0..spatial {
                acc += final_act[c * spatial + s];
            }
            *f = acc / spatial as f32;
        }
        let hidden_pre = dense_forward(params, &self.dense_hidden, &feat);
        let hidden_act: Vec<f32> = hidden_pre.iter().map(|&v| relu(v)).collect();
        let logits = dense_forward(params, &self.dense_out, &hidden_act);
        SampleCache {
            inputs,
            pres,
            feat,
            hidden_pre,
            hidden_act,
            logits,
        }
    }

    fn backward_sample(
        &self,
        params: &[f32],
        cache: &SampleCache,
        label: usize,
        scale: f32,
        grad: &mut [f32],
    ) -> (f32, bool) {
        let (loss, probs) = softmax_cross_entropy(&cache.logits, label);
        let correct = fedlps_tensor::ops::argmax(&cache.logits) == label;

        // d loss / d logits.
        let mut d_logits: Vec<f32> = probs;
        d_logits[label] -= 1.0;
        for v in &mut d_logits {
            *v *= scale;
        }

        // Output dense layer.
        let d_hidden_act =
            dense_backward(params, &self.dense_out, &cache.hidden_act, &d_logits, grad);
        // Hidden dense layer (through ReLU).
        let mut d_hidden_pre = d_hidden_act;
        for (d, &pre) in d_hidden_pre.iter_mut().zip(cache.hidden_pre.iter()) {
            *d *= relu_grad(pre);
        }
        let d_feat = dense_backward(params, &self.dense_hidden, &cache.feat, &d_hidden_pre, grad);

        // Global average pooling backward.
        let last_conv = self.convs.last().unwrap();
        let spatial = last_conv.out_h * last_conv.out_w;
        let mut d_act = vec![0.0f32; last_conv.out_channels * spatial];
        for c in 0..last_conv.out_channels {
            let g = d_feat[c] / spatial as f32;
            for s in 0..spatial {
                d_act[c * spatial + s] = g;
            }
        }

        // Conv blocks in reverse.
        for (li, conv) in self.convs.iter().enumerate().rev() {
            // Un-pool if this block pooled.
            let mut d_prepool = if conv.pooled {
                avg_pool_backward(&d_act, conv.out_channels, conv.in_h, conv.in_w)
            } else {
                d_act.clone()
            };
            // Through the ReLU.
            for (d, &pre) in d_prepool.iter_mut().zip(cache.pres[li].iter()) {
                *d *= relu_grad(pre);
            }
            let d_input = conv_backward(params, conv, &cache.inputs[li], &d_prepool, grad, li > 0);
            d_act = d_input;
        }
        (loss, correct)
    }
}

struct SampleCache {
    inputs: Vec<Vec<f32>>,
    pres: Vec<Vec<f32>>,
    feat: Vec<f32>,
    hidden_pre: Vec<f32>,
    hidden_act: Vec<f32>,
    logits: Vec<f32>,
}

/// 3x3 same-padding convolution forward for one sample.
fn conv_forward(params: &[f32], conv: &ConvLayerMeta, input: &[f32]) -> Vec<f32> {
    let (h, w) = (conv.in_h, conv.in_w);
    let mut out = vec![0.0f32; conv.out_channels * h * w];
    let per_channel = conv.in_channels * KERNEL * KERNEL;
    for oc in 0..conv.out_channels {
        let w_base = conv.w_start + oc * per_channel;
        let bias = params[conv.b_start + oc];
        for y in 0..h {
            for x in 0..w {
                let mut acc = bias;
                for ic in 0..conv.in_channels {
                    let in_base = ic * h * w;
                    let k_base = w_base + ic * KERNEL * KERNEL;
                    for ky in 0..KERNEL {
                        let iy = y as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..KERNEL {
                            let ix = x as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += params[k_base + ky * KERNEL + kx]
                                * input[in_base + iy as usize * w + ix as usize];
                        }
                    }
                }
                out[oc * h * w + y * w + x] = acc;
            }
        }
    }
    out
}

/// Backward of the 3x3 same-padding convolution: accumulates weight/bias
/// gradients and (optionally) returns the gradient w.r.t. the input.
fn conv_backward(
    params: &[f32],
    conv: &ConvLayerMeta,
    input: &[f32],
    d_out: &[f32],
    grad: &mut [f32],
    need_d_input: bool,
) -> Vec<f32> {
    let (h, w) = (conv.in_h, conv.in_w);
    let per_channel = conv.in_channels * KERNEL * KERNEL;
    let mut d_input = vec![
        0.0f32;
        if need_d_input {
            conv.in_channels * h * w
        } else {
            0
        }
    ];
    for oc in 0..conv.out_channels {
        let w_base = conv.w_start + oc * per_channel;
        let mut d_bias = 0.0f32;
        for y in 0..h {
            for x in 0..w {
                let g = d_out[oc * h * w + y * w + x];
                if g == 0.0 {
                    continue;
                }
                d_bias += g;
                for ic in 0..conv.in_channels {
                    let in_base = ic * h * w;
                    let k_base = w_base + ic * KERNEL * KERNEL;
                    for ky in 0..KERNEL {
                        let iy = y as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..KERNEL {
                            let ix = x as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let in_idx = in_base + iy as usize * w + ix as usize;
                            grad[k_base + ky * KERNEL + kx] += g * input[in_idx];
                            if need_d_input {
                                d_input[in_idx] += g * params[k_base + ky * KERNEL + kx];
                            }
                        }
                    }
                }
            }
        }
        grad[conv.b_start + oc] += d_bias;
    }
    d_input
}

/// 2x2 average pooling (stride 2, floor semantics).
fn avg_pool(input: &[f32], channels: usize, h: usize, w: usize) -> Vec<f32> {
    let oh = h / 2;
    let ow = w / 2;
    let mut out = vec![0.0f32; channels * oh * ow];
    for c in 0..channels {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        acc += input[c * h * w + (2 * y + dy) * w + (2 * x + dx)];
                    }
                }
                out[c * oh * ow + y * ow + x] = acc / 4.0;
            }
        }
    }
    out
}

/// Backward of 2x2 average pooling.
fn avg_pool_backward(d_out: &[f32], channels: usize, h: usize, w: usize) -> Vec<f32> {
    let oh = h / 2;
    let ow = w / 2;
    let mut d_in = vec![0.0f32; channels * h * w];
    for c in 0..channels {
        for y in 0..oh {
            for x in 0..ow {
                let g = d_out[c * oh * ow + y * ow + x] / 4.0;
                for dy in 0..2 {
                    for dx in 0..2 {
                        d_in[c * h * w + (2 * y + dy) * w + (2 * x + dx)] = g;
                    }
                }
            }
        }
    }
    d_in
}

/// Dense forward `y = W x + b` for one sample.
fn dense_forward(params: &[f32], meta: &DenseMeta, input: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; meta.out_dim];
    for (j, o) in out.iter_mut().enumerate() {
        let row = &params[meta.w_start + j * meta.in_dim..meta.w_start + (j + 1) * meta.in_dim];
        let mut acc = params[meta.b_start + j];
        for (&w, &x) in row.iter().zip(input.iter()) {
            acc += w * x;
        }
        *o = acc;
    }
    out
}

/// Dense backward: accumulates weight/bias gradients and returns `d input`.
fn dense_backward(
    params: &[f32],
    meta: &DenseMeta,
    input: &[f32],
    d_out: &[f32],
    grad: &mut [f32],
) -> Vec<f32> {
    let mut d_in = vec![0.0f32; meta.in_dim];
    for (j, &g) in d_out.iter().enumerate() {
        grad[meta.b_start + j] += g;
        let w_row = meta.w_start + j * meta.in_dim;
        for i in 0..meta.in_dim {
            grad[w_row + i] += g * input[i];
            d_in[i] += g * params[w_row + i];
        }
    }
    d_in
}

impl ModelArch for ConvNet {
    fn name(&self) -> String {
        format!("convnet{:?}+fc{}", self.config.channels, self.config.hidden)
    }

    fn param_count(&self) -> usize {
        self.param_count
    }

    fn unit_layout(&self) -> &UnitLayout {
        &self.layout
    }

    fn init_params(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_count];
        for conv in &self.convs {
            let w_len = conv.out_channels * conv.in_channels * KERNEL * KERNEL;
            Initializer::He.fill(
                &mut params[conv.w_start..conv.w_start + w_len],
                conv.in_channels * KERNEL * KERNEL,
                conv.out_channels,
                rng,
            );
        }
        for dense in [self.dense_hidden, self.dense_out] {
            Initializer::He.fill(
                &mut params[dense.w_start..dense.w_start + dense.in_dim * dense.out_dim],
                dense.in_dim,
                dense.out_dim,
                rng,
            );
        }
        params
    }

    fn loss_and_grad(
        &self,
        params: &[f32],
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> TrainStats {
        assert!(!indices.is_empty(), "empty minibatch");
        let scale = 1.0 / indices.len() as f32;
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for &idx in indices {
            let (x, label) = data.sample(idx);
            let cache = self.forward_sample(params, x);
            let (sample_loss, ok) = self.backward_sample(params, &cache, label, scale, grad);
            loss += sample_loss as f64;
            if ok {
                correct += 1;
            }
        }
        TrainStats {
            loss: loss / indices.len() as f64,
            accuracy: correct as f64 / indices.len() as f64,
        }
    }

    fn evaluate(&self, params: &[f32], data: &Dataset) -> EvalStats {
        if data.is_empty() {
            return EvalStats::empty();
        }
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (x, label) = data.sample(i);
            let cache = self.forward_sample(params, x);
            let (sample_loss, _) = softmax_cross_entropy(&cache.logits, label);
            loss += sample_loss as f64;
            if fedlps_tensor::ops::argmax(&cache.logits) == label {
                correct += 1;
            }
        }
        EvalStats {
            loss: loss / data.len() as f64,
            accuracy: correct as f64 / data.len() as f64,
            samples: data.len(),
        }
    }

    fn classifier_params(&self) -> std::ops::Range<usize> {
        self.dense_out.w_start..self.param_count
    }

    fn train_flops_per_sample(&self, retained_per_layer: &[usize]) -> f64 {
        assert_eq!(retained_per_layer.len(), self.convs.len() + 1);
        let mut forward = 0.0;
        let mut in_c = self.config.in_channels;
        for (conv, &retained) in self.convs.iter().zip(retained_per_layer.iter()) {
            forward += conv_layer_flops(in_c, retained, KERNEL, conv.in_h, conv.in_w);
            in_c = retained;
        }
        let hidden_retained = retained_per_layer[self.convs.len()];
        forward += dense_layer_flops(in_c, hidden_retained);
        forward += dense_layer_flops(hidden_retained, self.config.num_classes);
        forward * TRAIN_FLOPS_MULTIPLIER
    }

    fn pack(&self, kept: &KeptUnits) -> Option<PackedModel> {
        assert_eq!(
            kept.num_layers(),
            self.convs.len() + 1,
            "one kept list per conv block plus the hidden dense layer"
        );
        if !kept.is_executable() {
            return None; // an empty block would disconnect the network
        }
        let packed = ConvNet::new(ConvNetConfig {
            in_channels: self.config.in_channels,
            height: self.config.height,
            width: self.config.width,
            channels: kept
                .layers()
                .take(self.convs.len())
                .map(<[usize]>::len)
                .collect(),
            hidden: kept.layer(self.convs.len()).len(),
            num_classes: self.config.num_classes,
        });
        // Pooling decisions depend only on the spatial sizes, so the packed
        // network visits the same pixels with fewer channels.
        let mut map = GatherMap::with_capacity(packed.param_count());
        for (li, conv) in self.convs.iter().enumerate() {
            let per_channel = conv.in_channels * KERNEL * KERNEL;
            let in_kept = li.checked_sub(1).map(|p| kept.layer(p));
            for &oc in kept.layer(li) {
                assert!(oc < conv.out_channels, "kept channel {oc} out of range");
                let oc_start = conv.w_start + oc * per_channel;
                match in_kept {
                    None => map.push_range(oc_start, per_channel),
                    Some(cols) => {
                        for &ic in cols {
                            map.push_range(oc_start + ic * KERNEL * KERNEL, KERNEL * KERNEL);
                        }
                    }
                }
            }
            for &oc in kept.layer(li) {
                map.push(conv.b_start + oc);
            }
        }
        let hidden_kept = kept.layer(self.convs.len());
        let feat_kept = kept.layer(self.convs.len() - 1);
        for &j in hidden_kept {
            assert!(
                j < self.dense_hidden.out_dim,
                "kept neuron {j} out of range"
            );
            let row = self.dense_hidden.w_start + j * self.dense_hidden.in_dim;
            for &c in feat_kept {
                map.push(row + c);
            }
        }
        for &j in hidden_kept {
            map.push(self.dense_hidden.b_start + j);
        }
        for cls in 0..self.dense_out.out_dim {
            let row = self.dense_out.w_start + cls * self.dense_out.in_dim;
            for &j in hidden_kept {
                map.push(row + j);
            }
        }
        map.push_range(self.dense_out.b_start, self.dense_out.out_dim);
        Some(PackedModel::new(
            Box::new(packed),
            map.into_vec(),
            self.param_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use fedlps_data::dataset::InputKind;
    use fedlps_tensor::{rng_from_seed, Matrix};

    fn toy_convnet() -> ConvNet {
        ConvNet::new(ConvNetConfig {
            in_channels: 2,
            height: 6,
            width: 6,
            channels: vec![4, 6],
            hidden: 8,
            num_classes: 3,
        })
    }

    fn toy_image_dataset(n: usize) -> Dataset {
        let mut rng = rng_from_seed(9);
        let dim = 2 * 6 * 6;
        let features = Matrix::random_normal(n, dim, 1.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(
            features,
            labels,
            3,
            InputKind::Image {
                channels: 2,
                height: 6,
                width: 6,
            },
        )
    }

    #[test]
    fn param_count_and_units() {
        let net = toy_convnet();
        // conv0: 4*2*9 + 4 = 76; conv1: 6*4*9 + 6 = 222;
        // hidden: 8*6 + 8 = 56; out: 3*8 + 3 = 27.
        assert_eq!(net.param_count(), 76 + 222 + 56 + 27);
        assert_eq!(net.unit_layout().units_per_layer(), vec![4, 6, 8]);
    }

    #[test]
    fn spatial_dims_halve_with_pooling() {
        let net = toy_convnet();
        assert!(net.convs[0].pooled);
        assert_eq!((net.convs[0].out_h, net.convs[0].out_w), (3, 3));
        // 3x3 is too small to pool again.
        assert!(!net.convs[1].pooled);
        assert_eq!((net.convs[1].out_h, net.convs[1].out_w), (3, 3));
    }

    #[test]
    fn gradients_match_finite_differences() {
        let net = toy_convnet();
        let data = toy_image_dataset(6);
        let mut rng = rng_from_seed(21);
        let params = net.init_params(&mut rng);
        let indices: Vec<usize> = (0..4).collect();
        assert_gradients_close(&net, &params, &data, &indices, 40, 2e-2, &mut rng);
    }

    #[test]
    fn training_reduces_loss() {
        let net = toy_convnet();
        let data = toy_image_dataset(18);
        let mut rng = rng_from_seed(2);
        let mut params = net.init_params(&mut rng);
        let indices: Vec<usize> = (0..data.len()).collect();
        let before = net.evaluate(&params, &data);
        for _ in 0..40 {
            let mut grad = vec![0.0; params.len()];
            net.loss_and_grad(&params, &data, &indices, &mut grad);
            fedlps_tensor::ops::axpy(&mut params, -0.3, &grad);
        }
        let after = net.evaluate(&params, &data);
        assert!(
            after.loss < before.loss,
            "loss {} -> {}",
            before.loss,
            after.loss
        );
    }

    #[test]
    fn masked_channel_is_inert() {
        let net = toy_convnet();
        let data = toy_image_dataset(5);
        let mut rng = rng_from_seed(3);
        let params = net.init_params(&mut rng);
        let mut keep = vec![true; net.unit_layout().total_units()];
        keep[1] = false; // mask the second channel of conv0
        let mask = net.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, m)| p * m).collect();
        let base = net.evaluate(&masked, &data);
        // Changing nothing else, the masked channel's (zeroed) kernel is what
        // makes its activation exactly zero, so the bias of downstream layers
        // fully determines the output — evaluate twice to confirm determinism.
        let again = net.evaluate(&masked, &data);
        assert_eq!(base.loss, again.loss);
    }

    #[test]
    fn packed_submodel_matches_masked_dense_bitwise() {
        let net = toy_convnet(); // channels [4, 6], hidden 8
        let data = toy_image_dataset(8);
        let mut rng = rng_from_seed(11);
        let params = net.init_params(&mut rng);
        let kept = vec![
            vec![0usize, 2, 3],
            vec![1usize, 2, 5],
            vec![0usize, 3, 4, 6],
        ];
        let mut keep = vec![false; net.unit_layout().total_units()];
        let mut offset = 0;
        for (layer, k) in net.unit_layout().units_per_layer().iter().zip(&kept) {
            for &j in k {
                keep[offset + j] = true;
            }
            offset += layer;
        }
        let mask = net.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, m)| p * m).collect();
        let packed = net.pack(&KeptUnits::from_nested(&kept)).expect("packable");

        let indices: Vec<usize> = (0..6).collect();
        let mut dense_grad = vec![0.0f32; net.param_count()];
        let dense_stats = net.loss_and_grad(&masked, &data, &indices, &mut dense_grad);

        let mut pp = Vec::new();
        packed.gather_params(&masked, &mut pp);
        let mut pgrad = vec![0.0f32; packed.packed_len()];
        let packed_stats = packed
            .arch()
            .loss_and_grad(&pp, &data, &indices, &mut pgrad);
        let mut scattered = vec![0.0f32; net.param_count()];
        packed.scatter_add(&pgrad, &mut scattered);

        assert_eq!(dense_stats.loss.to_bits(), packed_stats.loss.to_bits());
        assert_eq!(dense_stats.accuracy, packed_stats.accuracy);
        for (i, (d, p)) in dense_grad.iter().zip(scattered.iter()).enumerate() {
            assert_eq!(d.to_bits(), p.to_bits(), "grad diverges at parameter {i}");
        }
        let dense_eval = net.evaluate(&masked, &data);
        let packed_eval = packed.arch().evaluate(&pp, &data);
        assert_eq!(dense_eval.loss.to_bits(), packed_eval.loss.to_bits());
    }

    #[test]
    fn flops_monotone_in_width() {
        let net = toy_convnet();
        let dense = net.dense_train_flops_per_sample();
        let thin = net.train_flops_per_sample(&[2, 3, 4]);
        assert!(thin < dense);
        assert!(thin > 0.0);
    }

    #[test]
    fn avg_pool_roundtrip_shapes() {
        let input: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let pooled = avg_pool(&input, 1, 4, 4);
        assert_eq!(pooled.len(), 4);
        assert!((pooled[0] - (0.0 + 1.0 + 4.0 + 5.0) / 4.0).abs() < 1e-6);
        let back = avg_pool_backward(&pooled, 1, 4, 4);
        assert_eq!(back.len(), 16);
        assert!((back[0] - pooled[0] / 4.0).abs() < 1e-6);
    }
}
