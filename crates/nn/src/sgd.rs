//! Plain stochastic gradient descent with optional gradient clipping, weight
//! decay and parameter-mask support.
//!
//! The paper trains every model with SGD (learning rate 0.1 for the vision
//! tasks, 8 with gradient clipping for the LSTM); local sparse training only
//! updates the parameters retained by the client's mask, which is expressed
//! here by passing the expanded parameter mask to [`SgdConfig::step_masked`].

use serde::{Deserialize, Serialize};

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate `η`.
    pub lr: f32,
    /// L2 weight decay coefficient (0 disables it).
    pub weight_decay: f32,
    /// Optional gradient-norm clipping threshold.
    pub clip_norm: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 0.1,
            weight_decay: 0.0,
            clip_norm: None,
        }
    }
}

impl SgdConfig {
    /// SGD configuration matching the paper's image-classification setup.
    pub fn vision() -> Self {
        Self {
            lr: 0.1,
            weight_decay: 0.0,
            clip_norm: None,
        }
    }

    /// SGD configuration matching the paper's next-word-prediction setup
    /// (large learning rate plus gradient clipping, following LEAF).
    pub fn text() -> Self {
        Self {
            lr: 1.0,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
        }
    }

    /// Applies one dense SGD step: `params -= lr * (grad + wd * params)`.
    pub fn step(&self, params: &mut [f32], grad: &mut [f32]) {
        assert_eq!(params.len(), grad.len());
        if let Some(max_norm) = self.clip_norm {
            fedlps_tensor::ops::clip_norm(grad, max_norm);
        }
        for (p, g) in params.iter_mut().zip(grad.iter()) {
            let update = g + self.weight_decay * *p;
            *p -= self.lr * update;
        }
    }

    /// Applies a masked SGD step: only parameters with `mask[i] != 0` move,
    /// and they are kept exactly at zero if they start at zero under the mask
    /// (the sparse-training semantics of Eq. 10 in the paper).
    pub fn step_masked(&self, params: &mut [f32], grad: &mut [f32], mask: &[f32]) {
        assert_eq!(params.len(), grad.len());
        assert_eq!(params.len(), mask.len());
        if let Some(max_norm) = self.clip_norm {
            fedlps_tensor::ops::clip_norm(grad, max_norm);
        }
        for ((p, g), m) in params.iter_mut().zip(grad.iter()).zip(mask.iter()) {
            if *m != 0.0 {
                let update = g + self.weight_decay * *p;
                *p -= self.lr * update;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_moves_against_gradient() {
        let cfg = SgdConfig {
            lr: 0.5,
            weight_decay: 0.0,
            clip_norm: None,
        };
        let mut p = vec![1.0, -1.0];
        let mut g = vec![2.0, -2.0];
        cfg.step(&mut p, &mut g);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let cfg = SgdConfig {
            lr: 0.1,
            weight_decay: 1.0,
            clip_norm: None,
        };
        let mut p = vec![1.0];
        let mut g = vec![0.0];
        cfg.step(&mut p, &mut g);
        assert!((p[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn clipping_limits_step_size() {
        let cfg = SgdConfig {
            lr: 1.0,
            weight_decay: 0.0,
            clip_norm: Some(1.0),
        };
        let mut p = vec![0.0, 0.0];
        let mut g = vec![30.0, 40.0];
        cfg.step(&mut p, &mut g);
        let moved = (p[0] * p[0] + p[1] * p[1]).sqrt();
        assert!((moved - 1.0).abs() < 1e-5);
    }

    #[test]
    fn masked_step_freezes_masked_params() {
        let cfg = SgdConfig {
            lr: 0.1,
            weight_decay: 0.0,
            clip_norm: None,
        };
        let mut p = vec![1.0, 1.0];
        let mut g = vec![1.0, 1.0];
        cfg.step_masked(&mut p, &mut g, &[1.0, 0.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn presets_differ() {
        assert!(SgdConfig::text().clip_norm.is_some());
        assert!(SgdConfig::vision().clip_norm.is_none());
        assert!(SgdConfig::text().lr > SgdConfig::vision().lr);
    }
}
