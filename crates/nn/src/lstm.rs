//! LSTM language model with hidden-unit-level sparsifiable units.
//!
//! This is the Reddit/LEAF analogue: token embeddings, a single LSTM cell
//! unrolled over the context window and a dense softmax classifier predicting
//! the next token. The sparsifiable units are the LSTM hidden cells; masking a
//! cell zeroes all four of its gate rows (input-to-hidden and hidden-to-hidden)
//! and biases, which makes the cell's output exactly zero for every time step.
//!
//! A masked cell also owns its *outgoing* connections — its column in every
//! other cell's recurrent rows and in the classifier. Unlike ReLU networks
//! (where `relu'(0) = 0` already severs a dropped neuron), an LSTM cell with
//! zeroed incoming rows still has half-open gates (`σ(0) = ½`), so gradients
//! would keep flowing into its candidate-gate weights through the unmasked
//! fan-out. Masking the fan-out makes the masked network a true width-scaled
//! submodel — the HeteroFL/FjORD convention — which is exactly what lets the
//! packed execution path reproduce masked-dense training bit for bit.

use fedlps_data::dataset::Dataset;
use fedlps_tensor::Initializer;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{sigmoid, softmax_cross_entropy, tanh};
use crate::flops::{dense_layer_flops, lstm_step_flops, TRAIN_FLOPS_MULTIPLIER};
use crate::model::{EvalStats, ModelArch, TrainStats};
use crate::pack::{GatherMap, KeptUnits, PackedModel};
use crate::unit::{LayerUnits, ParamRange, UnitLayout, UnitParams};

/// Configuration of the LSTM language model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LstmLmConfig {
    /// Vocabulary size (input tokens).
    pub vocab: usize,
    /// Context window length.
    pub seq_len: usize,
    /// Embedding dimensionality.
    pub embed: usize,
    /// Number of LSTM hidden cells (the sparsifiable units).
    pub hidden: usize,
    /// Number of output classes (== vocab for next-token prediction).
    pub num_classes: usize,
}

/// LSTM language model.
#[derive(Debug, Clone)]
pub struct LstmLm {
    config: LstmLmConfig,
    embed_start: usize,
    w_ih_start: usize,
    w_hh_start: usize,
    b_start: usize,
    w_out_start: usize,
    b_out_start: usize,
    layout: UnitLayout,
    param_count: usize,
}

impl LstmLm {
    /// Builds the architecture and its unit layout.
    pub fn new(config: LstmLmConfig) -> Self {
        let (v, e, h, c) = (
            config.vocab,
            config.embed,
            config.hidden,
            config.num_classes,
        );
        assert!(v > 0 && e > 0 && h > 0 && c > 0 && config.seq_len > 0);
        let embed_start = 0;
        let w_ih_start = embed_start + v * e;
        let w_hh_start = w_ih_start + 4 * h * e;
        let b_start = w_hh_start + 4 * h * h;
        let w_out_start = b_start + 4 * h;
        let b_out_start = w_out_start + c * h;
        let param_count = b_out_start + c;

        let units = (0..h)
            .map(|j| {
                let mut ranges = Vec::with_capacity(12 + 4 * h.saturating_sub(1) + c);
                for gate in 0..4 {
                    ranges.push(ParamRange::new(w_ih_start + (gate * h + j) * e, e));
                    ranges.push(ParamRange::new(w_hh_start + (gate * h + j) * h, h));
                    ranges.push(ParamRange::new(b_start + gate * h + j, 1));
                }
                // Outgoing recurrent connections: column j of every *other*
                // cell's gate rows (own rows already cover their full width).
                for gate in 0..4 {
                    for jj in 0..h {
                        if jj == j {
                            continue;
                        }
                        ranges.push(ParamRange::new(w_hh_start + (gate * h + jj) * h + j, 1));
                    }
                }
                // Outgoing classifier connections: column j of every output row.
                for cls in 0..c {
                    ranges.push(ParamRange::new(w_out_start + cls * h + j, 1));
                }
                UnitParams { ranges }
            })
            .collect();
        let layout = UnitLayout::new(
            vec![LayerUnits {
                name: "lstm".into(),
                units,
            }],
            param_count,
        );

        Self {
            config,
            embed_start,
            w_ih_start,
            w_hh_start,
            b_start,
            w_out_start,
            b_out_start,
            layout,
            param_count,
        }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &LstmLmConfig {
        &self.config
    }

    fn forward_sample(&self, params: &[f32], tokens: &[f32]) -> LstmCache {
        let (e, h) = (self.config.embed, self.config.hidden);
        let steps = tokens.len();
        let mut cache = LstmCache {
            token_ids: Vec::with_capacity(steps),
            xs: Vec::with_capacity(steps),
            gates: Vec::with_capacity(steps),
            cs: Vec::with_capacity(steps),
            hs: Vec::with_capacity(steps),
            logits: Vec::new(),
        };
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        for &tok in tokens {
            let token = (tok as usize).min(self.config.vocab - 1);
            let x =
                params[self.embed_start + token * e..self.embed_start + (token + 1) * e].to_vec();
            // Gate pre-activations z[gate * h + j].
            let mut z = vec![0.0f32; 4 * h];
            for (row, zv) in z.iter_mut().enumerate() {
                let mut acc = params[self.b_start + row];
                let w_ih = &params[self.w_ih_start + row * e..self.w_ih_start + (row + 1) * e];
                for (&wv, &xv) in w_ih.iter().zip(x.iter()) {
                    acc += wv * xv;
                }
                let w_hh = &params[self.w_hh_start + row * h..self.w_hh_start + (row + 1) * h];
                for (&wv, &hv) in w_hh.iter().zip(h_prev.iter()) {
                    acc += wv * hv;
                }
                *zv = acc;
            }
            // Gate activations: i, f, g, o.
            let mut gates = vec![0.0f32; 4 * h];
            for j in 0..h {
                gates[j] = sigmoid(z[j]);
                gates[h + j] = sigmoid(z[h + j]);
                gates[2 * h + j] = tanh(z[2 * h + j]);
                gates[3 * h + j] = sigmoid(z[3 * h + j]);
            }
            let mut c_new = vec![0.0f32; h];
            let mut h_new = vec![0.0f32; h];
            for j in 0..h {
                c_new[j] = gates[h + j] * c_prev[j] + gates[j] * gates[2 * h + j];
                h_new[j] = gates[3 * h + j] * tanh(c_new[j]);
            }
            cache.token_ids.push(token);
            cache.xs.push(x);
            cache.gates.push(gates);
            cache.cs.push(c_new.clone());
            cache.hs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c_new;
        }
        // Output logits from the last hidden state.
        let last_h = cache.hs.last().unwrap();
        let mut logits = vec![0.0f32; self.config.num_classes];
        for (cls, logit) in logits.iter_mut().enumerate() {
            let row = &params[self.w_out_start + cls * h..self.w_out_start + (cls + 1) * h];
            let mut acc = params[self.b_out_start + cls];
            for (&wv, &hv) in row.iter().zip(last_h.iter()) {
                acc += wv * hv;
            }
            *logit = acc;
        }
        cache.logits = logits;
        cache
    }

    #[allow(clippy::too_many_lines)]
    fn backward_sample(
        &self,
        params: &[f32],
        cache: &LstmCache,
        label: usize,
        scale: f32,
        grad: &mut [f32],
    ) -> (f32, bool) {
        let (e, h) = (self.config.embed, self.config.hidden);
        let steps = cache.hs.len();
        let (loss, probs) = softmax_cross_entropy(&cache.logits, label);
        let correct = fedlps_tensor::ops::argmax(&cache.logits) == label;

        // Output layer backward.
        let last_h = &cache.hs[steps - 1];
        let mut dh = vec![0.0f32; h];
        for cls in 0..self.config.num_classes {
            let mut d_logit = probs[cls];
            if cls == label {
                d_logit -= 1.0;
            }
            d_logit *= scale;
            grad[self.b_out_start + cls] += d_logit;
            let w_row = self.w_out_start + cls * h;
            for j in 0..h {
                grad[w_row + j] += d_logit * last_h[j];
                dh[j] += d_logit * params[w_row + j];
            }
        }

        // Backpropagation through time.
        let mut dc = vec![0.0f32; h];
        for t in (0..steps).rev() {
            let gates = &cache.gates[t];
            let c_t = &cache.cs[t];
            let c_prev: Vec<f32> = if t == 0 {
                vec![0.0; h]
            } else {
                cache.cs[t - 1].clone()
            };
            let h_prev: Vec<f32> = if t == 0 {
                vec![0.0; h]
            } else {
                cache.hs[t - 1].clone()
            };
            let x = &cache.xs[t];

            let mut dz = vec![0.0f32; 4 * h];
            let mut dc_prev = vec![0.0f32; h];
            for j in 0..h {
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tanh_c = tanh(c_t[j]);
                let d_o = dh[j] * tanh_c;
                let d_c = dh[j] * o_g * (1.0 - tanh_c * tanh_c) + dc[j];
                let d_i = d_c * g_g;
                let d_f = d_c * c_prev[j];
                let d_g = d_c * i_g;
                dc_prev[j] = d_c * f_g;
                dz[j] = d_i * i_g * (1.0 - i_g);
                dz[h + j] = d_f * f_g * (1.0 - f_g);
                dz[2 * h + j] = d_g * (1.0 - g_g * g_g);
                dz[3 * h + j] = d_o * o_g * (1.0 - o_g);
            }

            // Parameter gradients and the gradients flowing to h_{t-1} / x_t.
            let mut dh_prev = vec![0.0f32; h];
            let mut dx = vec![0.0f32; e];
            for (row, &dzv) in dz.iter().enumerate() {
                if dzv == 0.0 {
                    continue;
                }
                grad[self.b_start + row] += dzv;
                let w_ih_row = self.w_ih_start + row * e;
                for i in 0..e {
                    grad[w_ih_row + i] += dzv * x[i];
                    dx[i] += dzv * params[w_ih_row + i];
                }
                let w_hh_row = self.w_hh_start + row * h;
                for j in 0..h {
                    grad[w_hh_row + j] += dzv * h_prev[j];
                    dh_prev[j] += dzv * params[w_hh_row + j];
                }
            }
            // Embedding gradient for the token used at this step.
            let token = cache.token_ids[t];
            let emb_row = self.embed_start + token * e;
            for i in 0..e {
                grad[emb_row + i] += dx[i];
            }

            dh = dh_prev;
            dc = dc_prev;
        }
        (loss, correct)
    }
}

struct LstmCache {
    token_ids: Vec<usize>,
    xs: Vec<Vec<f32>>,
    gates: Vec<Vec<f32>>,
    cs: Vec<Vec<f32>>,
    hs: Vec<Vec<f32>>,
    logits: Vec<f32>,
}

impl ModelArch for LstmLm {
    fn name(&self) -> String {
        format!("lstm(e{},h{})", self.config.embed, self.config.hidden)
    }

    fn param_count(&self) -> usize {
        self.param_count
    }

    fn unit_layout(&self) -> &UnitLayout {
        &self.layout
    }

    fn init_params(&self, rng: &mut StdRng) -> Vec<f32> {
        let (v, e, h, c) = (
            self.config.vocab,
            self.config.embed,
            self.config.hidden,
            self.config.num_classes,
        );
        let mut params = vec![0.0f32; self.param_count];
        Initializer::Xavier.fill(
            &mut params[self.embed_start..self.embed_start + v * e],
            v,
            e,
            rng,
        );
        Initializer::Xavier.fill(
            &mut params[self.w_ih_start..self.w_ih_start + 4 * h * e],
            e,
            h,
            rng,
        );
        Initializer::Xavier.fill(
            &mut params[self.w_hh_start..self.w_hh_start + 4 * h * h],
            h,
            h,
            rng,
        );
        Initializer::Xavier.fill(
            &mut params[self.w_out_start..self.w_out_start + c * h],
            h,
            c,
            rng,
        );
        // Forget-gate biases start at 1.0 (standard practice for trainability).
        for j in 0..h {
            params[self.b_start + h + j] = 1.0;
        }
        params
    }

    fn loss_and_grad(
        &self,
        params: &[f32],
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> TrainStats {
        assert!(!indices.is_empty(), "empty minibatch");
        let scale = 1.0 / indices.len() as f32;
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for &idx in indices {
            let (tokens, label) = data.sample(idx);
            let cache = self.forward_sample(params, tokens);
            let (sample_loss, ok) = self.backward_sample(params, &cache, label, scale, grad);
            loss += sample_loss as f64;
            if ok {
                correct += 1;
            }
        }
        TrainStats {
            loss: loss / indices.len() as f64,
            accuracy: correct as f64 / indices.len() as f64,
        }
    }

    fn evaluate(&self, params: &[f32], data: &Dataset) -> EvalStats {
        if data.is_empty() {
            return EvalStats::empty();
        }
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for i in 0..data.len() {
            let (tokens, label) = data.sample(i);
            let cache = self.forward_sample(params, tokens);
            let (sample_loss, _) = softmax_cross_entropy(&cache.logits, label);
            loss += sample_loss as f64;
            if fedlps_tensor::ops::argmax(&cache.logits) == label {
                correct += 1;
            }
        }
        EvalStats {
            loss: loss / data.len() as f64,
            accuracy: correct as f64 / data.len() as f64,
            samples: data.len(),
        }
    }

    fn classifier_params(&self) -> std::ops::Range<usize> {
        self.w_out_start..self.param_count
    }

    fn train_flops_per_sample(&self, retained_per_layer: &[usize]) -> f64 {
        assert_eq!(retained_per_layer.len(), 1);
        let retained_h = retained_per_layer[0];
        let per_step = lstm_step_flops(self.config.embed, retained_h);
        let output = dense_layer_flops(retained_h, self.config.num_classes);
        (per_step * self.config.seq_len as f64 + output) * TRAIN_FLOPS_MULTIPLIER
    }

    fn pack(&self, kept_units: &KeptUnits) -> Option<PackedModel> {
        assert_eq!(
            kept_units.num_layers(),
            1,
            "the LSTM has one sparsifiable layer"
        );
        let kept = kept_units.layer(0);
        if kept.is_empty() {
            return None;
        }
        let (v, e, h, c) = (
            self.config.vocab,
            self.config.embed,
            self.config.hidden,
            self.config.num_classes,
        );
        let packed = LstmLm::new(LstmLmConfig {
            vocab: v,
            seq_len: self.config.seq_len,
            embed: e,
            hidden: kept.len(),
            num_classes: c,
        });
        let mut map = GatherMap::with_capacity(packed.param_count());
        map.push_range(self.embed_start, v * e); // embeddings are never sparsified
        for gate in 0..4 {
            for &j in kept {
                assert!(j < h, "kept cell {j} out of range");
                map.push_range(self.w_ih_start + (gate * h + j) * e, e);
            }
        }
        for gate in 0..4 {
            for &j in kept {
                let row = self.w_hh_start + (gate * h + j) * h;
                for &jj in kept {
                    map.push(row + jj);
                }
            }
        }
        for gate in 0..4 {
            for &j in kept {
                map.push(self.b_start + gate * h + j);
            }
        }
        for cls in 0..c {
            let row = self.w_out_start + cls * h;
            for &j in kept {
                map.push(row + j);
            }
        }
        map.push_range(self.b_out_start, c);
        Some(PackedModel::new(
            Box::new(packed),
            map.into_vec(),
            self.param_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use fedlps_data::dataset::InputKind;
    use fedlps_tensor::{rng_from_seed, Matrix};
    use rand::Rng;

    fn toy_lstm() -> LstmLm {
        LstmLm::new(LstmLmConfig {
            vocab: 7,
            seq_len: 5,
            embed: 4,
            hidden: 6,
            num_classes: 7,
        })
    }

    fn toy_text_dataset(n: usize) -> Dataset {
        let mut rng = rng_from_seed(17);
        let mut features = Matrix::zeros(n, 5);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            for v in features.row_mut(i) {
                *v = rng.gen_range(0..7) as f32;
            }
            labels.push(rng.gen_range(0..7));
        }
        Dataset::new(
            features,
            labels,
            7,
            InputKind::Sequence { len: 5, vocab: 7 },
        )
    }

    #[test]
    fn param_count_formula() {
        let m = toy_lstm();
        let expected = 7 * 4 + 4 * 6 * 4 + 4 * 6 * 6 + 4 * 6 + 7 * 6 + 7;
        assert_eq!(m.param_count(), expected);
        assert_eq!(m.unit_layout().total_units(), 6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let m = toy_lstm();
        let data = toy_text_dataset(6);
        let mut rng = rng_from_seed(23);
        let params = m.init_params(&mut rng);
        let indices: Vec<usize> = (0..4).collect();
        assert_gradients_close(&m, &params, &data, &indices, 50, 3e-2, &mut rng);
    }

    #[test]
    fn training_reduces_loss_on_repetitive_sequence() {
        // A dataset where the label always equals the last token is learnable
        // by copying; the LSTM should make quick progress.
        let m = toy_lstm();
        let mut rng = rng_from_seed(5);
        let n = 40;
        let mut features = Matrix::zeros(n, 5);
        let mut labels = Vec::new();
        for i in 0..n {
            let row = features.row_mut(i);
            for v in row.iter_mut() {
                *v = rng.gen_range(0..7) as f32;
            }
            labels.push(row[4] as usize);
        }
        let data = Dataset::new(
            features,
            labels,
            7,
            InputKind::Sequence { len: 5, vocab: 7 },
        );
        let mut params = m.init_params(&mut rng);
        let indices: Vec<usize> = (0..n).collect();
        let before = m.evaluate(&params, &data);
        for _ in 0..80 {
            let mut grad = vec![0.0; params.len()];
            m.loss_and_grad(&params, &data, &indices, &mut grad);
            fedlps_tensor::ops::axpy(&mut params, -1.0, &grad);
        }
        let after = m.evaluate(&params, &data);
        assert!(
            after.loss < before.loss * 0.8,
            "loss {} -> {}",
            before.loss,
            after.loss
        );
    }

    #[test]
    fn masked_hidden_cell_outputs_zero() {
        let m = toy_lstm();
        let data = toy_text_dataset(3);
        let mut rng = rng_from_seed(7);
        let params = m.init_params(&mut rng);
        let mut keep = vec![true; 6];
        keep[2] = false;
        let mask = m.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, q)| p * q).collect();
        let (tokens, _) = data.sample(0);
        let cache = m.forward_sample(&masked, tokens);
        for hs in &cache.hs {
            assert!(
                hs[2].abs() < 1e-7,
                "masked cell leaked activation {}",
                hs[2]
            );
        }
    }

    #[test]
    fn masked_cell_owns_its_fan_out() {
        // Dropping a cell must zero its outgoing recurrent and classifier
        // columns too; otherwise the half-open gates (σ(0) = ½) leak task
        // gradient into the dropped candidate-gate rows, and the packed
        // submodel could not reproduce masked training exactly.
        let m = toy_lstm();
        let data = toy_text_dataset(4);
        let mut rng = rng_from_seed(13);
        let params = m.init_params(&mut rng);
        let mut keep = vec![true; 6];
        keep[2] = false;
        keep[5] = false;
        let mask = m.unit_layout().expand_mask(&keep);
        // Outgoing classifier column of cell 2 is masked.
        assert_eq!(mask[m.w_out_start + 2], 0.0);
        // Recurrent column 2 of (kept) cell 0's input-gate row is masked.
        assert_eq!(mask[m.w_hh_start + 2], 0.0);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, q)| p * q).collect();
        let indices: Vec<usize> = (0..3).collect();
        let mut grad = vec![0.0f32; m.param_count()];
        m.loss_and_grad(&masked, &data, &indices, &mut grad);
        for (i, (&g, &mv)) in grad.iter().zip(mask.iter()).enumerate() {
            if mv == 0.0 {
                assert_eq!(g, 0.0, "masked parameter {i} received task gradient {g}");
            }
        }
    }

    #[test]
    fn packed_submodel_matches_masked_dense_bitwise() {
        let m = toy_lstm(); // 6 hidden cells
        let data = toy_text_dataset(8);
        let mut rng = rng_from_seed(29);
        let params = m.init_params(&mut rng);
        let kept = KeptUnits::from_nested(&[vec![0usize, 1, 3, 4]]);
        let mut keep = vec![false; 6];
        for &j in kept.layer(0) {
            keep[j] = true;
        }
        let mask = m.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, q)| p * q).collect();
        let packed = m.pack(&kept).expect("packable");

        let indices: Vec<usize> = (0..5).collect();
        let mut dense_grad = vec![0.0f32; m.param_count()];
        let dense_stats = m.loss_and_grad(&masked, &data, &indices, &mut dense_grad);

        let mut pp = Vec::new();
        packed.gather_params(&masked, &mut pp);
        let mut pgrad = vec![0.0f32; packed.packed_len()];
        let packed_stats = packed
            .arch()
            .loss_and_grad(&pp, &data, &indices, &mut pgrad);
        let mut scattered = vec![0.0f32; m.param_count()];
        packed.scatter_add(&pgrad, &mut scattered);

        assert_eq!(dense_stats.loss.to_bits(), packed_stats.loss.to_bits());
        assert_eq!(dense_stats.accuracy, packed_stats.accuracy);
        for (i, (d, p)) in dense_grad.iter().zip(scattered.iter()).enumerate() {
            assert_eq!(d.to_bits(), p.to_bits(), "grad diverges at parameter {i}");
        }
        let dense_eval = m.evaluate(&masked, &data);
        let packed_eval = packed.arch().evaluate(&pp, &data);
        assert_eq!(dense_eval.loss.to_bits(), packed_eval.loss.to_bits());
    }

    #[test]
    fn flops_monotone_in_hidden_width() {
        let m = toy_lstm();
        assert!(m.train_flops_per_sample(&[6]) > m.train_flops_per_sample(&[3]));
        assert!(m.train_flops_per_sample(&[3]) > 0.0);
    }

    #[test]
    fn out_of_vocab_tokens_are_clamped() {
        let m = toy_lstm();
        let mut rng = rng_from_seed(9);
        let params = m.init_params(&mut rng);
        let features = Matrix::from_vec(1, 5, vec![100.0, 3.0, 2.0, 1.0, 0.0]);
        let data = Dataset::new(
            features,
            vec![0],
            7,
            InputKind::Sequence { len: 5, vocab: 7 },
        );
        let stats = m.evaluate(&params, &data);
        assert!(stats.loss.is_finite());
    }
}
