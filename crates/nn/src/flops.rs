//! Analytic FLOP formulas.
//!
//! The paper measures local computation cost in floating-point operations
//! (FLOPs), following the accounting of DisPFL \[45\]: a dense layer mapping
//! `in` to `out` features costs `2 * in * out` FLOPs per sample in the forward
//! pass (one multiply + one add per weight), and a training step costs about
//! three forward passes (forward + gradient w.r.t. weights + gradient w.r.t.
//! activations). Convolutions and recurrent cells follow the same
//! multiply-accumulate counting.

/// Forward FLOPs of a dense layer per sample.
pub fn dense_layer_flops(in_dim: usize, out_dim: usize) -> f64 {
    2.0 * in_dim as f64 * out_dim as f64
}

/// Forward FLOPs of a 2-D convolution per sample.
///
/// `k` is the (square) kernel size; `out_h`/`out_w` the output spatial size.
pub fn conv_layer_flops(
    in_channels: usize,
    out_channels: usize,
    k: usize,
    out_h: usize,
    out_w: usize,
) -> f64 {
    2.0 * (in_channels * out_channels * k * k * out_h * out_w) as f64
}

/// Forward FLOPs of one LSTM step per sample: the four gates each do an
/// `embed -> hidden` and a `hidden -> hidden` dense map plus element-wise
/// gate arithmetic.
pub fn lstm_step_flops(embed: usize, hidden: usize) -> f64 {
    let gates = 4.0 * (dense_layer_flops(embed, hidden) + dense_layer_flops(hidden, hidden));
    let pointwise = 10.0 * hidden as f64;
    gates + pointwise
}

/// Approximate multiplier converting forward FLOPs to training (forward +
/// backward) FLOPs.
pub const TRAIN_FLOPS_MULTIPLIER: f64 = 3.0;

/// Bytes transferred when uploading `param_count` f32 parameters.
pub fn params_to_bytes(param_count: usize) -> f64 {
    4.0 * param_count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_flops_formula() {
        assert_eq!(dense_layer_flops(10, 20), 400.0);
        assert_eq!(dense_layer_flops(0, 20), 0.0);
    }

    #[test]
    fn conv_flops_scale_with_channels() {
        let base = conv_layer_flops(3, 8, 3, 6, 6);
        let double = conv_layer_flops(3, 16, 3, 6, 6);
        assert!((double / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lstm_flops_positive_and_monotone() {
        assert!(lstm_step_flops(8, 16) > 0.0);
        assert!(lstm_step_flops(8, 32) > lstm_step_flops(8, 16));
    }

    #[test]
    fn bytes_conversion() {
        assert_eq!(params_to_bytes(1000), 4000.0);
    }

    #[test]
    fn paper_example_three_fc_layers() {
        // §IV.A of the paper: a model of three fully-connected layers with
        // 1024 neurons costs ~15.36e5 FLOPs per iteration under this
        // accounting (the paper counts ~2*1024*... per layer). We check the
        // same order of magnitude with a batch of one sample:
        // dense(1024,1024)*2 layers forward ≈ 4.2e6; the point of this test is
        // that the importance-indicator update (~#units) is negligible
        // relative to the model update, as the paper argues.
        let model_flops = 2.0 * dense_layer_flops(1024, 1024) * TRAIN_FLOPS_MULTIPLIER;
        let indicator_flops = 2.0 * 1024.0; // one pass over ~J importance scores
        assert!(indicator_flops / model_flops < 1e-3);
    }
}
