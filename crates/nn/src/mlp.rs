//! Multi-layer perceptron with ReLU hidden layers.
//!
//! This is the backbone used for the MNIST-like scenario (the paper uses a
//! small CNN there; an MLP of comparable capacity keeps the unit abstraction
//! identical — hidden *neurons* are the sparsifiable units). Each hidden
//! neuron owns its incoming weight row and bias; masking a neuron therefore
//! zeroes its pre-activation, which silences it for the rest of the network.

use fedlps_data::dataset::Dataset;
use fedlps_tensor::scratch::{with_pool, ScratchPool};
use fedlps_tensor::{Initializer, Matrix};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::{relu, relu_grad};
use crate::flops::dense_layer_flops;
use crate::model::{EvalStats, ModelArch, TrainStats};
use crate::pack::{GatherMap, KeptUnits, PackedModel};
use crate::unit::{LayerUnits, ParamRange, UnitLayout, UnitParams};

/// MLP configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input feature dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths (each hidden neuron is a sparsifiable unit).
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub num_classes: usize,
}

/// Offsets of one linear layer inside the flat parameter vector.
#[derive(Debug, Clone, Copy)]
struct LayerOffsets {
    w_start: usize,
    b_start: usize,
    in_dim: usize,
    out_dim: usize,
}

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    layers: Vec<LayerOffsets>,
    layout: UnitLayout,
    param_count: usize,
}

impl Mlp {
    /// Builds the architecture and its unit layout.
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.input_dim > 0 && config.num_classes > 0);
        let mut widths = vec![config.input_dim];
        widths.extend(&config.hidden);
        widths.push(config.num_classes);

        let mut layers = Vec::new();
        let mut offset = 0;
        for w in widths.windows(2) {
            let (in_dim, out_dim) = (w[0], w[1]);
            layers.push(LayerOffsets {
                w_start: offset,
                b_start: offset + in_dim * out_dim,
                in_dim,
                out_dim,
            });
            offset += in_dim * out_dim + out_dim;
        }
        let param_count = offset;

        // Hidden neurons are the sparsifiable units; the output layer is never
        // sparsified (as in the paper, the classifier stays dense).
        let mut unit_layers = Vec::new();
        for (li, layer) in layers.iter().enumerate().take(layers.len() - 1) {
            let units = (0..layer.out_dim)
                .map(|j| UnitParams {
                    ranges: vec![
                        ParamRange::new(layer.w_start + j * layer.in_dim, layer.in_dim),
                        ParamRange::new(layer.b_start + j, 1),
                    ],
                })
                .collect();
            unit_layers.push(LayerUnits {
                name: format!("hidden{li}"),
                units,
            });
        }
        let layout = UnitLayout::new(unit_layers, param_count);

        Self {
            config,
            layers,
            layout,
            param_count,
        }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Copies one layer's weight block into a pooled scratch matrix (recycle
    /// it when done; the per-batch hot loop must not allocate fresh buffers).
    fn weight_matrix(&self, params: &[f32], layer: usize, pool: &mut ScratchPool) -> Matrix {
        let l = self.layers[layer];
        let mut m = pool.take(l.out_dim, l.in_dim);
        m.as_mut_slice()
            .copy_from_slice(&params[l.w_start..l.w_start + l.in_dim * l.out_dim]);
        m
    }

    fn bias<'p>(&self, params: &'p [f32], layer: usize) -> &'p [f32] {
        let l = self.layers[layer];
        &params[l.b_start..l.b_start + l.out_dim]
    }

    /// Runs the forward pass and returns pre-activations of every layer plus
    /// the input batch, which the backward pass re-uses.
    fn forward(&self, params: &[f32], batch: &Matrix, pool: &mut ScratchPool) -> Vec<Matrix> {
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        let mut activ = batch.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let w = self.weight_matrix(params, li, pool);
            let mut z = pool.take(activ.rows(), layer.out_dim);
            activ.matmul_nt_into(&w, &mut z);
            pool.recycle(w);
            let b = self.bias(params, li);
            for r in 0..z.rows() {
                let row = z.row_mut(r);
                for (v, &bias) in row.iter_mut().zip(b.iter()) {
                    *v += bias;
                }
            }
            if li + 1 < self.layers.len() {
                let mut pre = pool.take(z.rows(), z.cols());
                pre.as_mut_slice().copy_from_slice(z.as_slice());
                pre_activations.push(pre);
                z.map_inplace(relu);
                pool.recycle(std::mem::replace(&mut activ, z));
            } else {
                pre_activations.push(z);
            }
        }
        pool.recycle(activ);
        pre_activations
    }

    fn batch_matrix(&self, data: &Dataset, indices: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(indices.len(), data.feature_dim());
        for (row, &idx) in indices.iter().enumerate() {
            m.row_mut(row).copy_from_slice(data.features.row(idx));
        }
        m
    }
}

impl ModelArch for Mlp {
    fn name(&self) -> String {
        format!("mlp{:?}", self.config.hidden)
    }

    fn param_count(&self) -> usize {
        self.param_count
    }

    fn unit_layout(&self) -> &UnitLayout {
        &self.layout
    }

    fn init_params(&self, rng: &mut StdRng) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_count];
        for layer in &self.layers {
            Initializer::He.fill(
                &mut params[layer.w_start..layer.w_start + layer.in_dim * layer.out_dim],
                layer.in_dim,
                layer.out_dim,
                rng,
            );
            // Biases start at zero.
        }
        params
    }

    fn loss_and_grad(
        &self,
        params: &[f32],
        data: &Dataset,
        indices: &[usize],
        grad: &mut [f32],
    ) -> TrainStats {
        assert_eq!(grad.len(), self.param_count);
        assert!(!indices.is_empty(), "empty minibatch");
        with_pool(|pool| {
            let batch = self.batch_matrix(data, indices);
            let n = indices.len();
            let pre = self.forward(params, &batch, pool);

            // Loss + gradient at the logits.
            let logits = &pre[pre.len() - 1];
            let mut d_logits = pool.take(n, self.config.num_classes);
            let mut loss = 0.0f64;
            let mut correct = 0usize;
            for (row, &idx) in indices.iter().enumerate() {
                let label = data.labels[idx];
                let (sample_loss, probs) =
                    crate::activation::softmax_cross_entropy(logits.row(row), label);
                loss += sample_loss as f64;
                if fedlps_tensor::ops::argmax(logits.row(row)) == label {
                    correct += 1;
                }
                let out = d_logits.row_mut(row);
                for (c, &p) in probs.iter().enumerate() {
                    out[c] = (p - if c == label { 1.0 } else { 0.0 }) / n as f32;
                }
            }

            // Backward pass through the layers.
            let mut delta = d_logits; // d loss / d pre-activation of current layer
            for li in (0..self.layers.len()).rev() {
                let layer = self.layers[li];
                // Activation feeding this layer.
                let input_act = if li == 0 {
                    batch.clone()
                } else {
                    let prev = &pre[li - 1];
                    let mut act = pool.take(prev.rows(), prev.cols());
                    for (a, &p) in act.as_mut_slice().iter_mut().zip(prev.as_slice()) {
                        *a = relu(p);
                    }
                    act
                };
                let mut dw = pool.take(layer.out_dim, layer.in_dim); // out x in
                delta.matmul_tn_into(&input_act, &mut dw);
                for (i, v) in dw.as_slice().iter().enumerate() {
                    grad[layer.w_start + i] += v;
                }
                pool.recycle(dw);
                pool.recycle(input_act);
                for r in 0..delta.rows() {
                    let row = delta.row(r);
                    for (j, &v) in row.iter().enumerate() {
                        grad[layer.b_start + j] += v;
                    }
                }
                if li > 0 {
                    let w = self.weight_matrix(params, li, pool);
                    let mut d_input = pool.take(delta.rows(), layer.in_dim); // n x in
                    delta.matmul_into(&w, &mut d_input);
                    pool.recycle(w);
                    // Chain through the ReLU of the previous layer.
                    let prev_pre = &pre[li - 1];
                    for r in 0..d_input.rows() {
                        let drow = d_input.row_mut(r);
                        let prow = prev_pre.row(r);
                        for (dv, &pv) in drow.iter_mut().zip(prow.iter()) {
                            *dv *= relu_grad(pv);
                        }
                    }
                    pool.recycle(std::mem::replace(&mut delta, d_input));
                }
            }
            pool.recycle(delta);
            for m in pre {
                pool.recycle(m);
            }

            TrainStats {
                loss: loss / n as f64,
                accuracy: correct as f64 / n as f64,
            }
        })
    }

    fn evaluate(&self, params: &[f32], data: &Dataset) -> EvalStats {
        if data.is_empty() {
            return EvalStats::empty();
        }
        let indices: Vec<usize> = (0..data.len()).collect();
        let batch = self.batch_matrix(data, &indices);
        with_pool(|pool| {
            let pre = self.forward(params, &batch, pool);
            let logits = &pre[pre.len() - 1];
            let mut loss = 0.0f64;
            let mut correct = 0usize;
            for (row, &label) in data.labels.iter().enumerate() {
                let (sample_loss, _) =
                    crate::activation::softmax_cross_entropy(logits.row(row), label);
                loss += sample_loss as f64;
                if fedlps_tensor::ops::argmax(logits.row(row)) == label {
                    correct += 1;
                }
            }
            for m in pre {
                pool.recycle(m);
            }
            EvalStats {
                loss: loss / data.len() as f64,
                accuracy: correct as f64 / data.len() as f64,
                samples: data.len(),
            }
        })
    }

    fn classifier_params(&self) -> std::ops::Range<usize> {
        let last = self.layers[self.layers.len() - 1];
        last.w_start..self.param_count
    }

    fn train_flops_per_sample(&self, retained_per_layer: &[usize]) -> f64 {
        assert_eq!(retained_per_layer.len(), self.layers.len() - 1);
        let mut widths = vec![self.config.input_dim];
        widths.extend(retained_per_layer);
        widths.push(self.config.num_classes);
        let forward: f64 = widths
            .windows(2)
            .map(|w| dense_layer_flops(w[0], w[1]))
            .sum();
        forward * 3.0
    }

    fn pack(&self, kept: &KeptUnits) -> Option<PackedModel> {
        assert_eq!(
            kept.num_layers(),
            self.layers.len() - 1,
            "one kept-unit list per hidden layer"
        );
        if !kept.is_executable() {
            return None; // an empty hidden layer would disconnect the network
        }
        let packed = Mlp::new(MlpConfig {
            input_dim: self.config.input_dim,
            hidden: kept.layers().map(<[usize]>::len).collect(),
            num_classes: self.config.num_classes,
        });
        // Gather map in the packed layout's order: per layer, the kept rows
        // restricted to the previous layer's kept columns, then the kept
        // biases. The output layer keeps every row; the input keeps every
        // column — both expressed as `KeptRange::All`, iterated in place.
        // Section starts ascend with the layer offsets and rows/cols ascend
        // within, so the whole map is strictly ascending (checked by
        // `PackedModel::new`).
        let mut map = GatherMap::with_capacity(packed.param_count());
        for (li, layer) in self.layers.iter().enumerate() {
            let rows = kept.layer_or_all(li, layer.out_dim);
            for r in rows.iter() {
                assert!(r < layer.out_dim, "kept unit {r} out of range");
                let row_start = layer.w_start + r * layer.in_dim;
                match li.checked_sub(1) {
                    None => map.push_range(row_start, layer.in_dim),
                    Some(p) => {
                        for &c in kept.layer(p) {
                            map.push(row_start + c);
                        }
                    }
                }
            }
            for r in rows.iter() {
                map.push(layer.b_start + r);
            }
        }
        Some(PackedModel::new(
            Box::new(packed),
            map.into_vec(),
            self.param_count,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::assert_gradients_close;
    use fedlps_data::dataset::InputKind;
    use fedlps_tensor::rng_from_seed;

    fn toy_dataset(n: usize, dim: usize, classes: usize) -> Dataset {
        let mut rng = rng_from_seed(3);
        let features = Matrix::random_normal(n, dim, 1.0, &mut rng);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(features, labels, classes, InputKind::Vector { dim })
    }

    fn toy_mlp() -> Mlp {
        Mlp::new(MlpConfig {
            input_dim: 6,
            hidden: vec![8, 5],
            num_classes: 3,
        })
    }

    #[test]
    fn param_count_matches_manual_formula() {
        let mlp = toy_mlp();
        let expected = 6 * 8 + 8 + 8 * 5 + 5 + 5 * 3 + 3;
        assert_eq!(mlp.param_count(), expected);
        assert_eq!(mlp.unit_layout().total_units(), 13);
        assert_eq!(mlp.unit_layout().units_per_layer(), vec![8, 5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mlp = toy_mlp();
        let data = toy_dataset(12, 6, 3);
        let mut rng = rng_from_seed(1);
        let params = mlp.init_params(&mut rng);
        let indices: Vec<usize> = (0..8).collect();
        assert_gradients_close(&mlp, &params, &data, &indices, 40, 2e-2, &mut rng);
    }

    #[test]
    fn training_reduces_loss_on_small_problem() {
        let mlp = toy_mlp();
        let data = toy_dataset(30, 6, 3);
        let mut rng = rng_from_seed(2);
        let mut params = mlp.init_params(&mut rng);
        let indices: Vec<usize> = (0..data.len()).collect();
        let before = mlp.evaluate(&params, &data);
        for _ in 0..60 {
            let mut grad = vec![0.0; params.len()];
            mlp.loss_and_grad(&params, &data, &indices, &mut grad);
            fedlps_tensor::ops::axpy(&mut params, -0.5, &grad);
        }
        let after = mlp.evaluate(&params, &data);
        assert!(
            after.loss < before.loss * 0.7,
            "loss {} -> {}",
            before.loss,
            after.loss
        );
        assert!(after.accuracy > before.accuracy);
    }

    #[test]
    fn masked_neuron_has_no_effect_on_outputs() {
        let mlp = toy_mlp();
        let data = toy_dataset(10, 6, 3);
        let mut rng = rng_from_seed(4);
        let params = mlp.init_params(&mut rng);
        // Zero the first hidden neuron's parameters.
        let mut keep = vec![true; mlp.unit_layout().total_units()];
        keep[0] = false;
        let mask = mlp.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, m)| p * m).collect();
        // The dropped neuron's pre-activation is exactly zero (weights and
        // bias are masked) and relu(0) = 0, so the *downstream* weights that
        // read its activation are multiplied by zero: perturbing them hugely
        // must not change predictions. (A previous version of this test set
        // the already-zeroed incoming weights to zero, which asserted
        // nothing.)
        let mut perturbed = masked.clone();
        let next = &mlp.layers[1];
        for j in 0..next.out_dim {
            perturbed[next.w_start + j * next.in_dim] = 1e6;
        }
        let a = mlp.evaluate(&masked, &data);
        let b = mlp.evaluate(&perturbed, &data);
        assert!((a.loss - b.loss).abs() < 1e-9);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn packed_submodel_matches_masked_dense_bitwise() {
        let mlp = toy_mlp();
        let data = toy_dataset(14, 6, 3);
        let mut rng = rng_from_seed(8);
        let params = mlp.init_params(&mut rng);
        // Drop units 1,4,6 of hidden0 and 0,3 of hidden1.
        let keep: Vec<bool> = (0..13).map(|j| ![1, 4, 6, 8, 11].contains(&j)).collect();
        let mask = mlp.unit_layout().expand_mask(&keep);
        let masked: Vec<f32> = params.iter().zip(mask.iter()).map(|(p, m)| p * m).collect();
        let kept = KeptUnits::from_nested(&[vec![0usize, 2, 3, 5, 7], vec![1usize, 2, 4]]);
        let packed = mlp.pack(&kept).expect("packable");
        assert_eq!(packed.arch().param_count(), packed.packed_len());

        let indices: Vec<usize> = (0..10).collect();
        let mut dense_grad = vec![0.0f32; mlp.param_count()];
        let dense_stats = mlp.loss_and_grad(&masked, &data, &indices, &mut dense_grad);

        let mut pp = Vec::new();
        packed.gather_params(&masked, &mut pp);
        let mut pgrad = vec![0.0f32; packed.packed_len()];
        let packed_stats = packed
            .arch()
            .loss_and_grad(&pp, &data, &indices, &mut pgrad);
        let mut scattered = vec![0.0f32; mlp.param_count()];
        packed.scatter_add(&pgrad, &mut scattered);

        assert_eq!(dense_stats.loss.to_bits(), packed_stats.loss.to_bits());
        assert_eq!(dense_stats.accuracy, packed_stats.accuracy);
        for (i, (d, p)) in dense_grad.iter().zip(scattered.iter()).enumerate() {
            assert_eq!(d.to_bits(), p.to_bits(), "grad diverges at parameter {i}");
        }
        // Packed evaluation agrees with the masked-dense model too.
        let dense_eval = mlp.evaluate(&masked, &data);
        let packed_eval = packed.arch().evaluate(&pp, &data);
        assert_eq!(dense_eval.loss.to_bits(), packed_eval.loss.to_bits());
        assert_eq!(dense_eval.accuracy, packed_eval.accuracy);
    }

    #[test]
    fn pack_rejects_empty_layers() {
        let mlp = toy_mlp();
        assert!(mlp
            .pack(&KeptUnits::from_nested(&[vec![], vec![0, 1]]))
            .is_none());
        assert!(mlp
            .pack(&KeptUnits::from_nested(&[
                (0..8).collect(),
                (0..5).collect()
            ]))
            .is_some());
    }

    #[test]
    fn flops_scale_with_retained_units() {
        let mlp = toy_mlp();
        let dense = mlp.dense_train_flops_per_sample();
        let half = mlp.train_flops_per_sample(&[4, 2]);
        assert!(half < dense);
        assert!(half > 0.0);
        let none = mlp.train_flops_per_sample(&[0, 0]);
        assert!(none < half);
    }

    #[test]
    fn evaluate_empty_dataset() {
        let mlp = toy_mlp();
        let mut rng = rng_from_seed(5);
        let params = mlp.init_params(&mut rng);
        let empty = Dataset::empty(3, InputKind::Vector { dim: 6 });
        assert_eq!(mlp.evaluate(&params, &empty).samples, 0);
    }
}
