//! The paper's analytic cost model.
//!
//! Eq. (14): `T_k^r = F̂_k^r / F_k^r + α · B̂_k^r / B_k^r` where `F̂` is the
//! round's training FLOPs, `F` the device's compute capacity, `B̂` the bytes
//! uploaded and `B` the uplink bandwidth. Eq. (18): the synchronous global
//! round cost is the maximum local cost over the selected clients.

use serde::{Deserialize, Serialize};

use crate::capability::DeviceProfile;

/// Breakdown of one client's local round cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LocalCost {
    /// Compute portion `F̂/F` in seconds.
    pub compute_seconds: f64,
    /// Communication portion `α · B̂/B` in seconds.
    pub comm_seconds: f64,
}

impl LocalCost {
    /// Total local cost in seconds.
    pub fn total(&self) -> f64 {
        self.compute_seconds + self.comm_seconds
    }
}

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Weight `α` of the communication term in Eq. (14).
    pub alpha: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { alpha: 1.0 }
    }
}

impl CostModel {
    /// Creates a cost model with the given communication weight.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0);
        Self { alpha }
    }

    /// Eq. (14): the local cost of a round that executes `flops` floating
    /// point operations and uploads `upload_bytes` on the given device.
    pub fn local_cost(&self, flops: f64, upload_bytes: f64, device: &DeviceProfile) -> LocalCost {
        assert!(flops >= 0.0 && upload_bytes >= 0.0);
        LocalCost {
            compute_seconds: flops / device.compute_flops_per_sec,
            comm_seconds: self.alpha * upload_bytes / device.bandwidth_bytes_per_sec,
        }
    }

    /// Eq. (18): the synchronous global round cost — the slowest selected
    /// client determines the round's wall-clock time.
    pub fn global_round_cost(local_costs: &[LocalCost]) -> f64 {
        local_costs.iter().map(|c| c.total()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::CapabilityTier;

    #[test]
    fn cost_formula_matches_manual_computation() {
        let device = DeviceProfile::from_tier(CapabilityTier::Half);
        let model = CostModel::new(2.0);
        let cost = model.local_cost(727.0e9, 5.0e6, &device);
        // compute: 727e9 / (727e9 * 0.5) = 2 s; comm: 2 * 5e6 / (10e6 * 0.5) = 2 s.
        assert!((cost.compute_seconds - 2.0).abs() < 1e-9);
        assert!((cost.comm_seconds - 2.0).abs() < 1e-9);
        assert!((cost.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weaker_devices_pay_more_for_the_same_work() {
        let model = CostModel::default();
        let strong = DeviceProfile::from_tier(CapabilityTier::Full);
        let weak = DeviceProfile::from_tier(CapabilityTier::Sixteenth);
        let c_strong = model.local_cost(1.0e12, 1.0e6, &strong).total();
        let c_weak = model.local_cost(1.0e12, 1.0e6, &weak).total();
        assert!((c_weak / c_strong - 16.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_work_is_cheaper() {
        let model = CostModel::default();
        let device = DeviceProfile::from_tier(CapabilityTier::Quarter);
        let dense = model.local_cost(4.0e12, 4.0e6, &device).total();
        let sparse = model.local_cost(1.0e12, 1.0e6, &device).total();
        assert!(sparse < dense / 3.0);
    }

    #[test]
    fn global_cost_is_the_straggler() {
        let costs = vec![
            LocalCost {
                compute_seconds: 1.0,
                comm_seconds: 0.5,
            },
            LocalCost {
                compute_seconds: 4.0,
                comm_seconds: 1.0,
            },
            LocalCost {
                compute_seconds: 0.2,
                comm_seconds: 0.1,
            },
        ];
        assert!((CostModel::global_round_cost(&costs) - 5.0).abs() < 1e-12);
        assert_eq!(CostModel::global_round_cost(&[]), 0.0);
    }

    #[test]
    fn zero_alpha_ignores_communication() {
        let device = DeviceProfile::from_tier(CapabilityTier::Full);
        let cost = CostModel::new(0.0).local_cost(1.0e9, 1.0e9, &device);
        assert_eq!(cost.comm_seconds, 0.0);
        assert!(cost.compute_seconds > 0.0);
    }
}
