//! Device capability tiers and per-device resource profiles.

use serde::{Deserialize, Serialize};

/// Peak compute of the paper's reference device (Adreno 630): 727 GFLOPS.
pub const REFERENCE_GFLOPS: f64 = 727.0e9;

/// Reference uplink bandwidth assumed for the top-tier device (bytes/second).
/// The paper does not pin a number; 10 MB/s is a typical LTE uplink and only
/// relative differences between tiers matter for the reported trends.
pub const REFERENCE_BANDWIDTH: f64 = 10.0e6;

/// The five capability tiers `z_k ∈ {1, 1/2, 1/4, 1/8, 1/16}` of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapabilityTier {
    Full,
    Half,
    Quarter,
    Eighth,
    Sixteenth,
}

impl CapabilityTier {
    /// All tiers from strongest to weakest.
    pub fn all() -> [CapabilityTier; 5] {
        [
            CapabilityTier::Full,
            CapabilityTier::Half,
            CapabilityTier::Quarter,
            CapabilityTier::Eighth,
            CapabilityTier::Sixteenth,
        ]
    }

    /// The capability fraction `z_k` of the tier.
    pub fn fraction(&self) -> f64 {
        match self {
            CapabilityTier::Full => 1.0,
            CapabilityTier::Half => 0.5,
            CapabilityTier::Quarter => 0.25,
            CapabilityTier::Eighth => 0.125,
            CapabilityTier::Sixteenth => 0.0625,
        }
    }

    /// Tier from a capability fraction (nearest match).
    pub fn from_fraction(z: f64) -> CapabilityTier {
        let mut best = CapabilityTier::Full;
        let mut best_err = f64::INFINITY;
        for tier in CapabilityTier::all() {
            let err = (tier.fraction() - z).abs();
            if err < best_err {
                best_err = err;
                best = tier;
            }
        }
        best
    }
}

/// One edge device's resource profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Capability fraction `z_k ∈ (0, 1]` relative to the reference device.
    pub capability: f64,
    /// Peak local compute `F_k` in FLOPs/second.
    pub compute_flops_per_sec: f64,
    /// Uplink bandwidth `B_k` in bytes/second.
    pub bandwidth_bytes_per_sec: f64,
}

impl DeviceProfile {
    /// Builds a profile from a capability tier, scaling both compute and
    /// bandwidth from the reference device (weaker devices are assumed to sit
    /// on proportionally weaker links, as in the paper's heterogeneity setup).
    pub fn from_tier(tier: CapabilityTier) -> Self {
        Self::from_fraction(tier.fraction())
    }

    /// Builds a profile from an arbitrary capability fraction.
    pub fn from_fraction(z: f64) -> Self {
        assert!(z > 0.0 && z <= 1.0, "capability fraction must be in (0, 1]");
        Self {
            capability: z,
            compute_flops_per_sec: REFERENCE_GFLOPS * z,
            bandwidth_bytes_per_sec: REFERENCE_BANDWIDTH * z,
        }
    }

    /// The uplink tier of a zone/edge aggregator in a two-tier topology:
    /// reference-class compute on a provisioned link `uplink` times the
    /// reference device uplink. The Eq. 14 cost model prices the combined
    /// zone → server upload against this profile's bandwidth.
    pub fn zone_aggregator(uplink: f64) -> Self {
        assert!(uplink > 0.0, "the zone uplink factor must be positive");
        Self {
            capability: 1.0,
            compute_flops_per_sec: REFERENCE_GFLOPS,
            bandwidth_bytes_per_sec: REFERENCE_BANDWIDTH * uplink,
        }
    }

    /// The maximum sparse ratio this device can afford: the paper caps the
    /// server-chosen ratio at the client capability (`s_k ≤ z_k`,
    /// "Client-side Update").
    pub fn max_sparse_ratio(&self) -> f64 {
        self.capability
    }

    /// Returns a copy scaled by a transient availability factor in `(0, 1]`,
    /// modelling other workloads competing for the device in a round.
    pub fn with_availability(&self, factor: f64) -> DeviceProfile {
        let f = factor.clamp(0.05, 1.0);
        DeviceProfile {
            capability: self.capability * f,
            compute_flops_per_sec: self.compute_flops_per_sec * f,
            bandwidth_bytes_per_sec: self.bandwidth_bytes_per_sec * f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_fractions_match_paper() {
        let fr: Vec<f64> = CapabilityTier::all().iter().map(|t| t.fraction()).collect();
        assert_eq!(fr, vec![1.0, 0.5, 0.25, 0.125, 0.0625]);
    }

    #[test]
    fn from_fraction_roundtrip() {
        for tier in CapabilityTier::all() {
            assert_eq!(CapabilityTier::from_fraction(tier.fraction()), tier);
        }
        assert_eq!(CapabilityTier::from_fraction(0.3), CapabilityTier::Quarter);
    }

    #[test]
    fn profile_scales_with_capability() {
        let full = DeviceProfile::from_tier(CapabilityTier::Full);
        let sixteenth = DeviceProfile::from_tier(CapabilityTier::Sixteenth);
        assert!((full.compute_flops_per_sec / sixteenth.compute_flops_per_sec - 16.0).abs() < 1e-9);
        assert_eq!(full.max_sparse_ratio(), 1.0);
        assert_eq!(sixteenth.max_sparse_ratio(), 0.0625);
    }

    #[test]
    fn availability_reduces_capacity_but_is_clamped() {
        let p = DeviceProfile::from_tier(CapabilityTier::Half);
        let busy = p.with_availability(0.5);
        assert!((busy.compute_flops_per_sec - p.compute_flops_per_sec * 0.5).abs() < 1.0);
        let floor = p.with_availability(0.0);
        assert!(floor.compute_flops_per_sec > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_capability_rejected() {
        DeviceProfile::from_fraction(0.0);
    }
}
